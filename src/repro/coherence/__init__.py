"""Token-coherence substrate: registry, request plans, protocol engine."""

from repro.coherence.plan import RequestPlan
from repro.coherence.protocol import ProtocolError, TokenProtocol, TransactionResult
from repro.coherence.registry import MEMORY, BlockState, TokenRegistry
from repro.coherence.stats import CoherenceStats

__all__ = [
    "MEMORY",
    "BlockState",
    "CoherenceStats",
    "ProtocolError",
    "RequestPlan",
    "TokenProtocol",
    "TokenRegistry",
    "TransactionResult",
]
