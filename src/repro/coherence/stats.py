"""Protocol-level statistics.

Counters accumulated by the protocol engine, keyed the way the paper
reports them: snoops (cache tag lookups caused by coherence requests),
transactions by request and page type, retry/persistent escalations,
data-source decomposition, and the data-holder decomposition of L2
misses on content-shared pages (Table VI).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict

from repro.mem.pagetype import PageType

# Fields holding PageType-keyed dicts; serialized by enum value so the
# JSON round trip is lossless and human-readable.
_PAGE_TYPE_KEYED = ("transactions_by_page_type", "snoops_by_page_type")


@dataclass(slots=True)
class CoherenceStats:
    """Cumulative protocol counters for one simulation."""

    snoops: int = 0
    transactions: int = 0
    gets_count: int = 0
    getm_count: int = 0
    retries: int = 0
    persistent_requests: int = 0
    cache_to_cache: int = 0
    memory_sourced: int = 0
    upgrades: int = 0
    invalidations: int = 0
    transactions_by_page_type: Dict[PageType, int] = field(
        default_factory=lambda: {t: 0 for t in PageType}
    )
    snoops_by_page_type: Dict[PageType, int] = field(
        default_factory=lambda: {t: 0 for t in PageType}
    )
    # Data-holder decomposition for content-shared misses (Table VI).
    ro_misses: int = 0
    ro_holder_any_cache: int = 0
    ro_holder_intra_vm: int = 0
    ro_holder_friend_vm: int = 0
    ro_holder_memory_only: int = 0
    # Actual source decomposition for content-shared misses.
    ro_served_by_cache: int = 0
    ro_served_by_memory: int = 0

    def record_transaction(self, page_type: PageType, is_write: bool) -> None:
        self.transactions += 1
        self.transactions_by_page_type[page_type] += 1
        if is_write:
            self.getm_count += 1
        else:
            self.gets_count += 1

    def record_snoops(self, count: int, page_type: PageType) -> None:
        self.snoops += count
        self.snoops_by_page_type[page_type] += count

    def to_dict(self) -> dict:
        """Every counter as JSON-serializable data (enum keys by value)."""
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name in _PAGE_TYPE_KEYED:
                out[f.name] = {t.value: count for t, count in value.items()}
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "CoherenceStats":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown CoherenceStats fields: {sorted(unknown)}")
        kwargs = dict(data)
        for name in _PAGE_TYPE_KEYED:
            if name in kwargs:
                kwargs[name] = {
                    PageType(key): count for key, count in kwargs[name].items()
                }
        return cls(**kwargs)

    def merge(self, other: "CoherenceStats") -> None:
        """Accumulate ``other`` into ``self`` (for multi-run aggregation)."""
        self.snoops += other.snoops
        self.transactions += other.transactions
        self.gets_count += other.gets_count
        self.getm_count += other.getm_count
        self.retries += other.retries
        self.persistent_requests += other.persistent_requests
        self.cache_to_cache += other.cache_to_cache
        self.memory_sourced += other.memory_sourced
        self.upgrades += other.upgrades
        self.invalidations += other.invalidations
        for page_type in PageType:
            self.transactions_by_page_type[page_type] += (
                other.transactions_by_page_type[page_type]
            )
            self.snoops_by_page_type[page_type] += other.snoops_by_page_type[page_type]
        self.ro_misses += other.ro_misses
        self.ro_holder_any_cache += other.ro_holder_any_cache
        self.ro_holder_intra_vm += other.ro_holder_intra_vm
        self.ro_holder_friend_vm += other.ro_holder_friend_vm
        self.ro_holder_memory_only += other.ro_holder_memory_only
        self.ro_served_by_cache += other.ro_served_by_cache
        self.ro_served_by_memory += other.ro_served_by_memory
