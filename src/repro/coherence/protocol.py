"""Token-coherence protocol engine (TokenB with filtered destination sets).

The engine executes one coherence transaction at a time, trace-driven:

1. For each transient attempt in the :class:`RequestPlan`, snoop the
   destination cores (counted as tag lookups), always informing the
   memory controller.
2. A GETS succeeds when the attempt reaches the owner token (a cache
   owner inside the destination set, or memory). A GETM succeeds when it
   reaches *every* token holder, i.e. all sharers are inside the set.
3. A failed attempt is retried with the next destination set; reaching
   the final attempt of a fallback-capable plan models TokenB's
   persistent-request escalation.

Content-shared (RO) reads are special-cased per Section VI: memory always
holds a clean copy, so they can never fail; data comes from a per-VM
provider copy when one is inside the destination set, else from memory.
"""

from __future__ import annotations

from typing import AbstractSet, Dict, Optional

from repro.cache.hierarchy import PrivateHierarchy
from repro.cache.line import CacheLine
from repro.coherence.plan import RequestPlan
from repro.coherence.registry import MEMORY, TokenRegistry
from repro.coherence.stats import CoherenceStats
from repro.interconnect.messages import MessageKind
from repro.interconnect.network import NetworkModel
from repro.mem.controller import MemoryController


class ProtocolError(RuntimeError):
    """A transaction exhausted all attempts — a filter correctness bug."""


class TransactionResult:
    """Outcome of one coherence transaction."""

    __slots__ = ("latency", "attempts_used", "source", "fill_dirty")

    SOURCE_CACHE = "cache"
    SOURCE_MEMORY = "memory"
    SOURCE_NONE = "none"  # upgrade: requester already held the data

    def __init__(self, latency: int, attempts_used: int, source: str, fill_dirty: bool) -> None:
        self.latency = latency
        self.attempts_used = attempts_used
        self.source = source
        self.fill_dirty = fill_dirty

    def __repr__(self) -> str:
        return (
            f"TransactionResult({self.latency}cyc, attempts={self.attempts_used}, "
            f"source={self.source})"
        )


class TokenProtocol:
    """Executes coherence transactions against the registry and network."""

    def __init__(
        self,
        registry: TokenRegistry,
        network: NetworkModel,
        memory: MemoryController,
        caches: Dict[int, PrivateHierarchy],
        stats: Optional[CoherenceStats] = None,
        snoop_lookup_latency: int = 10,
    ) -> None:
        self.registry = registry
        self.network = network
        self.memory = memory
        self.caches = caches
        self.stats = stats if stats is not None else CoherenceStats()
        self.snoop_lookup_latency = snoop_lookup_latency

    # ------------------------------------------------------------------
    # Latency helpers (no traffic recording).
    # ------------------------------------------------------------------

    def _path(self, src: int, dst: int) -> int:
        if src == dst:
            return 0
        network = self.network
        return (
            network.hops(src, dst) * network._per_hop
            + network.contention_delay()
        )

    def _memory_read_latency(self, core: int, cycle: int) -> int:
        """Request to the memory node, DRAM access, data back (with traffic).

        Fused equivalent of ``send(core, node, REQUEST)`` + DRAM read +
        ``send(node, core, DATA)``: XY hop counts are symmetric and the
        window can only roll over once per cycle value, so the two sends'
        traffic is charged in one batch with identical totals.
        """
        network = self.network
        if cycle - network._window_start >= network.window_cycles:
            network._advance_window(cycle)
        node = self.memory.node
        if core == node:
            return self.memory.read()
        hops = network._hops[core][node]
        flit_hops = (
            network._flits[MessageKind.REQUEST] + network._flits[MessageKind.DATA]
        ) * hops
        network.messages += 2
        network.flit_hops += flit_hops
        network.bytes_transferred += flit_hops * network.sizing.link_bytes
        network._window_flit_hops += flit_hops
        path = hops * network._per_hop + network.contention_delay()
        return path + self.memory.read() + path

    # ------------------------------------------------------------------
    # Transaction execution.
    # ------------------------------------------------------------------

    def execute(
        self,
        core: int,
        vm_id: int,
        block: int,
        is_write: bool,
        plan: RequestPlan,
        cycle: int = 0,
    ) -> TransactionResult:
        """Run one coherence transaction; returns its outcome.

        Raises :class:`ProtocolError` if every attempt fails — by
        construction that can only happen when a filter policy removed a
        core from a vCPU map while it still held data *and* supplied no
        broadcast fallback, which is a correctness bug worth failing
        loudly on.
        """
        # Inlined CoherenceStats.record_transaction / record_snoops: this
        # runs once per coherence transaction and the method-call overhead
        # shows up in profiles.
        stats = self.stats
        page_type = plan.page_type
        stats.transactions += 1
        stats.transactions_by_page_type[page_type] += 1
        if is_write:
            stats.getm_count += 1
        else:
            stats.gets_count += 1
        if plan.ro_shared and not is_write:
            self._record_ro_holders(core, block, plan)
        total_latency = 0
        attempts = plan.attempts
        last = len(attempts) - 1
        multicast = self.network.multicast
        for index, destinations in enumerate(attempts):
            snoops = len(destinations)
            stats.snoops += snoops
            stats.snoops_by_page_type[page_type] += snoops
            if index == last and index > 0 and plan.last_is_persistent:
                stats.persistent_requests += 1
            # The request multicast (cores) + the memory controller copy.
            attempt_latency = multicast(core, destinations, MessageKind.REQUEST, cycle)
            if is_write:
                outcome = self._try_getm(core, block, destinations, cycle)
            elif plan.ro_shared:
                outcome = self._try_ro_gets(core, vm_id, block, destinations, plan, cycle)
            else:
                outcome = self._try_gets(core, vm_id, block, destinations, cycle)
            if outcome is not None:
                completion, source, fill_dirty = outcome
                total_latency += max(attempt_latency, completion)
                return TransactionResult(total_latency, index + 1, source, fill_dirty)
            total_latency += max(
                attempt_latency, self.snoop_lookup_latency
            )
            stats.retries += 1
        raise ProtocolError(
            f"transaction for block {block:#x} (write={is_write}) failed all "
            f"{len(plan.attempts)} attempts — sharers "
            f"{sorted(self.registry.sharers_of(block))} never fully covered"
        )

    def _try_gets(self, core, vm_id, block, destinations, cycle):
        # Reads the registry record directly (state_of) instead of the
        # copying owner_of/sharers_of accessors — this path runs for every
        # read miss and the per-call set copies dominated it.
        state = self.registry.state_of(block)
        owner = state.owner if state is not None else MEMORY
        if owner == MEMORY:
            latency = self._memory_read_latency(core, cycle)
            self.stats.memory_sourced += 1
            if state is None or not state.sharers:
                # MOESI E state: the sole copy receives all tokens clean,
                # so a subsequent first store upgrades silently.
                self.registry.grant_exclusive(core, block, dirty=False)
            else:
                self.registry.grant_shared(core, block)
            return latency, TransactionResult.SOURCE_MEMORY, False
        if owner in destinations:
            latency = (
                self._path(core, owner)
                + self.snoop_lookup_latency
                + self.network.send(owner, core, MessageKind.DATA, cycle)
            )
            self.stats.cache_to_cache += 1
            self.registry.grant_shared(core, block)
            return latency, TransactionResult.SOURCE_CACHE, False
        return None

    def _try_ro_gets(self, core, vm_id, block, destinations, plan, cycle):
        # Content-shared reads never fail: memory is guaranteed clean.
        providers = []
        for provider_vm in plan.provider_vms:
            provider = self.registry.provider_for_vm(block, provider_vm)
            if provider is not None and provider in destinations and provider != core:
                providers.append(provider)
        if providers:
            # Every reachable provider responds (the friend-VM scheme can
            # deliver a duplicate copy — both are charged as traffic).
            latency = None
            for provider in providers:
                leg = (
                    self._path(core, provider)
                    + self.snoop_lookup_latency
                    + self.network.send(provider, core, MessageKind.DATA, cycle)
                )
                latency = leg if latency is None else min(latency, leg)
            self.stats.cache_to_cache += 1
            self.stats.ro_served_by_cache += 1
            self.registry.grant_shared(core, block, vm_id=vm_id)
            return latency, TransactionResult.SOURCE_CACHE, False
        latency = self._memory_read_latency(core, cycle)
        self.stats.memory_sourced += 1
        self.stats.ro_served_by_memory += 1
        self.registry.grant_shared(core, block, vm_id=vm_id)
        return latency, TransactionResult.SOURCE_MEMORY, False

    def _try_getm(self, core, block, destinations, cycle):
        state = self.registry.state_of(block)
        if state is None:
            sharers: AbstractSet[int] = frozenset()
            owner = MEMORY
        else:
            sharers = state.sharers
            owner = state.owner
        # Success requires every sharer besides the requester (and the
        # owner) to be inside the destination set; checked element-wise to
        # avoid building the `sharers - {core}` difference set per attempt.
        for sharer in sharers:
            if sharer != core and sharer not in destinations:
                return None
        if owner != MEMORY and owner != core and owner not in destinations:
            return None
        had_copy = core in sharers
        victims = self.registry.grant_exclusive(core, block)
        data_latency = 0
        source = TransactionResult.SOURCE_NONE
        if not had_copy:
            if owner == MEMORY:
                data_latency = self._memory_read_latency(core, cycle)
                self.stats.memory_sourced += 1
                source = TransactionResult.SOURCE_MEMORY
            else:
                data_latency = (
                    self._path(core, owner)
                    + self.snoop_lookup_latency
                    + self.network.send(owner, core, MessageKind.DATA, cycle)
                )
                self.stats.cache_to_cache += 1
                source = TransactionResult.SOURCE_CACHE
        else:
            self.stats.upgrades += 1
        ack_latency = 0
        # Sorted: the invalidations fire observer chains (residence
        # counters -> vCPU-map removals) whose event order is visible in
        # the removal log; iterating the set raw would tie that order to
        # the set's internal table history, which a warm-state restore
        # cannot reproduce. Contents-determined order keeps straight and
        # restored runs bit-identical.
        for victim in sorted(victims):
            hierarchy = self.caches.get(victim)
            if hierarchy is not None:
                hierarchy.invalidate(block)
            self.stats.invalidations += 1
            ack_latency = max(
                ack_latency,
                self._path(core, victim)
                + self.snoop_lookup_latency
                + self.network.send(victim, core, MessageKind.ACK, cycle),
            )
        return max(data_latency, ack_latency), source, True

    def _record_ro_holders(self, core: int, block: int, plan: RequestPlan) -> None:
        """Table VI bookkeeping: where *could* this RO miss have been served?

        Loops over the live sharer set instead of materialising the
        ``holders`` difference and the intersection sets per miss.
        """
        self.stats.ro_misses += 1
        state = self.registry.state_of(block)
        sharers = state.sharers if state is not None else ()
        if not sharers or (len(sharers) == 1 and core in sharers):
            self.stats.ro_holder_memory_only += 1
            return
        self.stats.ro_holder_any_cache += 1
        intra = plan.stats_intra_domain
        for sharer in sharers:
            if sharer != core and sharer in intra:
                self.stats.ro_holder_intra_vm += 1
                return
        friend = plan.stats_friend_domain
        for sharer in sharers:
            if sharer != core and sharer in friend:
                self.stats.ro_holder_friend_vm += 1
                return

    # ------------------------------------------------------------------
    # Evictions (replacement victims leaving an L2).
    # ------------------------------------------------------------------

    def handle_eviction(self, core: int, line: CacheLine, cycle: int = 0) -> None:
        """Return the victim's tokens (and dirty data) to memory."""
        outcome = self.registry.evicted(core, line.block, line.dirty)
        if outcome == "writeback":
            self.memory.writeback()
            self.network.send(core, self.memory.node, MessageKind.WRITEBACK, cycle)
        elif outcome == "token_return":
            self.memory.return_tokens()
            self.network.send(core, self.memory.node, MessageKind.TOKEN_RETURN, cycle)
