"""Global token-coherence state: who holds tokens, who owns, who provides.

Token Coherence (Martin et al., ISCA 2003) associates a fixed number of
tokens with every block; a cache may read a block while holding at least
one token and write it only while holding all tokens, one of which is the
*owner token* that obliges its holder to respond with data. This registry
keeps the abstract per-block state the evaluation needs:

* ``sharers`` — the set of cores whose (L2) cache holds a valid copy,
* ``owner`` — the core holding the owner token, or ``MEMORY`` when the
  owner token (and an up-to-date copy) resides at the memory controller,
* ``dirty`` — whether the memory copy is stale,
* ``providers`` — for content-shared (RO-shared) blocks, the per-VM
  provider designation of Section VI-B: the one copy per VM that answers
  intra-VM / friend-VM requests.

Exact integer token counts are not tracked: every protocol decision in
the paper's experiments depends only on the sets above (a GETS succeeds
iff it reaches the owner; a GETM succeeds iff it reaches every sharer),
so the sets are the faithful abstraction.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

MEMORY = -1
"""Pseudo-core id denoting the memory controller as token holder."""

GLOBAL_PROVIDER = -2
"""Pseudo-VM id keying the system-wide provider copy of an RO block.

Conventional snooping designates one provider copy per block in the whole
system; the per-VM designations of Section VI-B extend this. The global
designation is what a broadcast GETS on a content-shared page uses."""


class BlockState:
    """Registry record for one block that has ever been cached."""

    __slots__ = ("sharers", "owner", "dirty", "providers")

    def __init__(self) -> None:
        self.sharers: Set[int] = set()
        self.owner: int = MEMORY
        self.dirty: bool = False
        # vm_id -> core currently designated data provider for that VM
        # (populated only for content-shared blocks).
        self.providers: Dict[int, int] = {}

    def __repr__(self) -> str:
        return (
            f"BlockState(sharers={sorted(self.sharers)}, owner={self.owner}, "
            f"dirty={self.dirty})"
        )


class TokenRegistry:
    """Token-coherence state for all blocks, plus sync with cache contents.

    The registry is the single source of truth for protocol state. The
    simulation engine keeps it consistent with cache contents by calling
    :meth:`evicted` whenever an L2 line leaves a cache.
    """

    def __init__(self) -> None:
        self._blocks: Dict[int, BlockState] = {}

    def state_of(self, block: int) -> Optional[BlockState]:
        """The record for ``block``, or ``None`` if never cached / all evicted."""
        return self._blocks.get(block)

    def _get_or_create(self, block: int) -> BlockState:
        state = self._blocks.get(block)
        if state is None:
            state = BlockState()
            self._blocks[block] = state
        return state

    # ------------------------------------------------------------------
    # Queries used by the protocol to decide transaction outcomes.
    # ------------------------------------------------------------------

    def owner_of(self, block: int) -> int:
        state = self._blocks.get(block)
        return state.owner if state is not None else MEMORY

    def sharers_of(self, block: int) -> Set[int]:
        state = self._blocks.get(block)
        return set(state.sharers) if state is not None else set()

    def is_cached_anywhere(self, block: int) -> bool:
        state = self._blocks.get(block)
        return state is not None and bool(state.sharers)

    def has_exclusive(self, core: int, block: int) -> bool:
        """Whether ``core`` holds all tokens (may write without a transaction)."""
        state = self._blocks.get(block)
        return (
            state is not None
            and state.owner == core
            and len(state.sharers) == 1
            and core in state.sharers
        )

    def write_hit(self, core: int, block: int) -> bool:
        """Attempt a silent write: succeeds iff ``core`` holds all tokens.

        On success the block is marked dirty (E -> M and M -> M writes are
        silent in MOESI), so hypervisor-initiated flushes know memory is
        stale. Returns whether the write may proceed without a GETM.
        """
        # `len == 1 and core in` avoids building a one-element set per call
        # (this check runs for every simulated store that hits locally).
        state = self._blocks.get(block)
        if (
            state is not None
            and state.owner == core
            and len(state.sharers) == 1
            and core in state.sharers
        ):
            state.dirty = True
            return True
        return False

    def provider_for_vm(self, block: int, vm_id: int) -> Optional[int]:
        """The designated intra-VM provider core of ``block`` for ``vm_id``."""
        state = self._blocks.get(block)
        if state is None:
            return None
        return state.providers.get(vm_id)

    # ------------------------------------------------------------------
    # State transitions applied by the protocol engine.
    # ------------------------------------------------------------------

    def grant_shared(self, core: int, block: int, vm_id: Optional[int] = None) -> None:
        """Complete a successful GETS: ``core`` joins the sharers.

        If ``vm_id`` is given and the block has no provider for that VM
        yet, ``core`` becomes the VM's provider (first copy brought into
        the VM, Section VI-B).
        """
        state = self._get_or_create(block)
        state.sharers.add(core)
        if vm_id is not None:
            state.providers.setdefault(vm_id, core)
            state.providers.setdefault(GLOBAL_PROVIDER, core)

    def grant_exclusive(self, core: int, block: int, dirty: bool = True) -> Set[int]:
        """Grant ``core`` all tokens.

        ``dirty=True`` is a GETM (M state); ``dirty=False`` is the MOESI
        E state: a GETS that found no cached copy receives every token
        with clean data, so the first store needs no later upgrade.
        Returns the set of cores that must invalidate their copies (all
        previous sharers except the requester).
        """
        state = self._get_or_create(block)
        sharers = state.sharers
        # Fast path: no other sharer to invalidate (the overwhelmingly
        # common outcome — E-state grants and upgrades by the sole holder).
        if not sharers or (len(sharers) == 1 and core in sharers):
            invalidate: Set[int] = set()
        else:
            invalidate = {c for c in sharers if c != core}
        state.sharers = {core}
        state.owner = core
        state.dirty = dirty
        state.providers.clear()
        return invalidate

    def evicted(self, core: int, block: int, dirty: bool) -> str:
        """Record that ``core`` evicted ``block``.

        Returns what the eviction sends to memory: ``"writeback"`` when the
        owner token travels with dirty data, ``"token_return"`` when the
        owner token travels clean or a sharer returns plain tokens, or
        ``"none"`` when the core held no registry state (already
        invalidated).
        """
        state = self._blocks.get(block)
        if state is None or core not in state.sharers:
            return "none"
        state.sharers.discard(core)
        for vm_id, provider in list(state.providers.items()):
            if provider == core:
                # Pass the designation to another copy inside the same VM
                # if one exists, else drop it.
                del state.providers[vm_id]
        outcome = "token_return"
        if state.owner == core:
            state.owner = MEMORY
            if state.dirty or dirty:
                outcome = "writeback"
                state.dirty = False
        if not state.sharers:
            # All tokens back at memory: drop the record to bound memory use.
            if state.owner == MEMORY and not state.providers:
                del self._blocks[block]
        return outcome

    def invalidated(self, core: int, block: int) -> None:
        """Record a coherence invalidation of ``core``'s copy (tokens move
        to the GETM requester, handled by :meth:`grant_exclusive`)."""
        state = self._blocks.get(block)
        if state is not None:
            state.sharers.discard(core)

    def flush_block_to_memory(self, block: int) -> bool:
        """Force the owner token (and dirty data) back to memory.

        Used when the hypervisor marks a page content-shared: the paper
        flushes modified lines so memory holds a clean copy and can serve
        all RO-shared requests. Sharers keep their (now clean) copies.
        Returns ``True`` if a dirty copy was written back.
        """
        state = self._blocks.get(block)
        if state is None:
            return False
        was_dirty = state.dirty
        state.owner = MEMORY
        state.dirty = False
        return was_dirty

    def drop_block(self, block: int) -> Set[int]:
        """Forget a block entirely (hypervisor page-reassignment flush).

        Returns the sharers that held copies; the caller must invalidate
        their cache lines. Used when a host page is freed and may be
        recycled to another VM: stale copies would otherwise break the
        VM-private domain invariant.
        """
        state = self._blocks.pop(block, None)
        return set(state.sharers) if state is not None else set()

    def assign_provider(self, block: int, vm_id: int, core: int) -> None:
        """Explicitly designate ``core`` as the provider of ``block`` for VM."""
        self._get_or_create(block).providers[vm_id] = core

    def blocks_cached_by(self, core: int) -> Iterable[int]:
        """All blocks whose registry state includes ``core`` (slow; tests)."""
        return [b for b, s in self._blocks.items() if core in s.sharers]

    def __len__(self) -> int:
        return len(self._blocks)
