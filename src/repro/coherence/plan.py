"""Request plans: what a snoop-filter policy tells the protocol to do.

A :class:`RequestPlan` is produced by the virtual-snooping filter
(:mod:`repro.core.filter`) for one coherence transaction and consumed by
the protocol engine. It lists the destination set of each transient
attempt (Token Coherence allows safe retries), whether the transaction
targets a content-shared (RO) page, and which VMs' provider copies may
answer it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.mem.pagetype import PageType

EMPTY: FrozenSet[int] = frozenset()


@dataclass(frozen=True)
class RequestPlan:
    """Instructions for one coherence transaction.

    Attributes:
        attempts: destination core sets, one per transient attempt, in
            order. The requester core is included in its own destination
            set when its tag must be snooped (paper counts it). The final
            attempt of a fallback-capable policy is a broadcast.
        page_type: sharing type of the page being accessed.
        ro_shared: convenience flag, true iff ``page_type`` is RO_SHARED.
        provider_vms: VM ids whose designated provider copies may supply
            data for an RO-shared read (own VM first, then friend VM).
        last_is_persistent: whether reaching the final attempt counts as a
            persistent-request escalation (TokenB fallback).
        stats_intra_domain: requesting VM's snoop domain, carried for
            data-holder statistics (Table VI) regardless of policy.
        stats_friend_domain: friend VM's snoop domain, for the same stats.
    """

    attempts: Tuple[FrozenSet[int], ...]
    page_type: PageType = PageType.VM_PRIVATE
    provider_vms: Tuple[int, ...] = ()
    last_is_persistent: bool = False
    stats_intra_domain: FrozenSet[int] = EMPTY
    stats_friend_domain: FrozenSet[int] = EMPTY

    def __post_init__(self) -> None:
        if not self.attempts:
            raise ValueError("a RequestPlan needs at least one attempt")

    @property
    def ro_shared(self) -> bool:
        return self.page_type is PageType.RO_SHARED

    @property
    def first_attempt(self) -> FrozenSet[int]:
        """Destination set of the first transient attempt.

        The batched kernel's bulk-miss seam admits a miss onto its fast
        path only when this attempt provably succeeds against current
        registry state; the later attempts (retries, persistent-request
        escalation) then never run, so none of their side effects need
        replicating.
        """
        return self.attempts[0]

    @property
    def single_attempt(self) -> bool:
        """Whether the plan carries no retry ladder at all."""
        return len(self.attempts) == 1

    @staticmethod
    def broadcast(all_cores: FrozenSet[int], page_type: PageType) -> "RequestPlan":
        """The baseline TokenB plan: one broadcast attempt."""
        return RequestPlan(attempts=(all_cores,), page_type=page_type)
