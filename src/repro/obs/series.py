"""The windowed metrics time-series carried inside :class:`SimStats`.

This module is deliberately dependency-free (standard library only, no
imports from the rest of the package) so :mod:`repro.sim.stats` can hold
a :class:`MetricsSeries` without creating an import cycle through the
tracer machinery.

A series is a list of fixed-width :class:`MetricsWindow` samples taken
during the measured phase. Each window stores *deltas* for the flow
quantities (snoops, transactions, network bytes, retries) and *levels*
for the state quantities (per-VM map sizes, residence-counter sum), so
summing windows rebuilds the aggregate totals exactly while each window
remains individually meaningful.

Serialization round-trips losslessly through plain JSON types: per-VM
dicts are keyed by ints in memory and by decimal strings on the wire
(JSON has no int keys), converted back on load.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List


@dataclass
class MetricsWindow:
    """One sample window ``[start, start + width)`` of the measured phase.

    The final window of a run may be shorter than ``width``; its ``width``
    field records the nominal sampling interval, not the truncated span.
    """

    start: int
    width: int
    transactions: int = 0
    snoops: int = 0
    retries: int = 0
    network_bytes: int = 0
    migrations: int = 0
    map_grows: int = 0
    map_shrinks: int = 0
    removal_cycles: int = 0
    map_sizes: Dict[int, int] = field(default_factory=dict)
    residence_sum: int = 0

    @property
    def snoops_per_transaction(self) -> float:
        return self.snoops / self.transactions if self.transactions else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "start": self.start,
            "width": self.width,
            "transactions": self.transactions,
            "snoops": self.snoops,
            "retries": self.retries,
            "network_bytes": self.network_bytes,
            "migrations": self.migrations,
            "map_grows": self.map_grows,
            "map_shrinks": self.map_shrinks,
            "removal_cycles": self.removal_cycles,
            "map_sizes": {str(vm): size for vm, size in self.map_sizes.items()},  # repro-lint: disable=RPL006; int vm ids as decimal strings are stable
            "residence_sum": self.residence_sum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsWindow":
        payload = dict(data)
        sizes = payload.pop("map_sizes", {})
        known = {
            "start", "width", "transactions", "snoops", "retries",
            "network_bytes", "migrations", "map_grows", "map_shrinks",
            "removal_cycles", "residence_sum",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown MetricsWindow keys: {sorted(unknown)}")
        return cls(
            map_sizes={int(vm): size for vm, size in sizes.items()},
            **payload,
        )


@dataclass
class MetricsSeries:
    """All sample windows of one run plus the sampling interval used."""

    sample_every: int
    windows: List[MetricsWindow] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.windows)

    def totals(self) -> Dict[str, int]:
        """Sums of the flow quantities across all windows.

        These equal the run's aggregate counters exactly — the invariant
        the differential tests pin down.
        """
        out = {
            "transactions": 0,
            "snoops": 0,
            "retries": 0,
            "network_bytes": 0,
            "migrations": 0,
            "map_grows": 0,
            "map_shrinks": 0,
            "removal_cycles": 0,
        }
        for window in self.windows:
            for key in out:
                out[key] += getattr(window, key)
        return out

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sample_every": self.sample_every,
            "windows": [window.to_dict() for window in self.windows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MetricsSeries":
        unknown = set(data) - {"sample_every", "windows"}
        if unknown:
            raise ValueError(f"unknown MetricsSeries keys: {sorted(unknown)}")
        return cls(
            sample_every=data["sample_every"],
            windows=[MetricsWindow.from_dict(w) for w in data.get("windows", [])],
        )
