"""Read traces back and rebuild per-window aggregates.

:func:`read_trace` iterates a trace written by either sink (format is
sniffed from the file's first bytes) and yields event objects identical
to the ones emitted. Integrity is enforced, not assumed:

* a binary record that ends mid-struct raises :class:`TraceError` naming
  the byte offset;
* a JSONL line that fails to parse (or describes an unknown/incomplete
  record) raises :class:`TraceError` naming the line number;
* a trace with no ``END`` record — a run that died mid-way, or a file
  truncated at a record boundary — raises unless ``allow_partial=True``
  (the ``repro-sim report --partial`` escape hatch for inspecting
  in-progress runs);
* an ``END`` record whose event count disagrees with what was actually
  read raises.

On top of the raw stream, :func:`aggregate_windows` folds events into
fixed-width cycle windows and :func:`migration_phase_profile` aligns
those windows *relative to each relocation* — the Figure 7/8 view
(snoop rate spikes at a migration, decays as residence counters drain)
observed directly from the event stream instead of inferred from totals.
"""

from __future__ import annotations

import bisect
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Tuple

from repro.obs.events import (
    BINARY_MAGIC,
    STRUCT_OF_KIND,
    AnyRecord,
    EventKind,
    MapEvent,
    MigrationEvent,
    TraceEnd,
    TraceHeader,
    TransactionEvent,
    event_from_json_obj,
    unpack_event,
)


class TraceError(ValueError):
    """A trace file is truncated, corrupt, or internally inconsistent."""


def read_header(path: str) -> TraceHeader:
    """The header record of ``path`` (format sniffed like ``read_trace``)."""
    header, _ = _open_stream(path)
    return header


def read_trace(path: str, allow_partial: bool = False) -> Iterator[AnyRecord]:
    """Yield every event of ``path`` in emission order.

    The header and the terminating :class:`TraceEnd` are consumed and
    validated but not yielded; see the module docstring for the failure
    modes. With ``allow_partial`` a missing end record stops the
    iteration instead of raising (corrupt records still raise).
    """
    _, events = _open_stream(path, allow_partial=allow_partial)
    return events


def _open_stream(
    path: str, allow_partial: bool = False
) -> Tuple[TraceHeader, Iterator[AnyRecord]]:
    with open(path, "rb") as probe:
        magic = probe.read(len(BINARY_MAGIC))
    if magic == BINARY_MAGIC:
        return _open_binary(path, allow_partial)
    return _open_jsonl(path, allow_partial)


# ----------------------------------------------------------------------
# JSONL backend.
# ----------------------------------------------------------------------


def _header_from_json_obj(obj: dict, where: str) -> TraceHeader:
    if obj.get("kind") != "header" or obj.get("format") != "repro-trace":
        raise TraceError(f"{where}: not a repro trace header: {obj!r}")
    payload = {
        key: value
        for key, value in obj.items()
        if key not in ("kind", "format")
    }
    try:
        return TraceHeader(**payload)
    except TypeError as exc:
        raise TraceError(f"{where}: malformed trace header: {exc}") from None


def _open_jsonl(
    path: str, allow_partial: bool
) -> Tuple[TraceHeader, Iterator[AnyRecord]]:
    handle = open(path, "r", encoding="utf-8")
    first = handle.readline()
    if not first.strip():
        handle.close()
        raise TraceError(f"{path}: empty file, expected a trace header at line 1")
    try:
        obj = json.loads(first)
    except json.JSONDecodeError as exc:
        handle.close()
        raise TraceError(f"{path}: line 1: invalid JSON in header: {exc}") from None
    header = _header_from_json_obj(obj, f"{path}: line 1")

    def events() -> Iterator[AnyRecord]:
        count = 0
        ended = False
        try:
            for lineno, line in enumerate(handle, start=2):
                if not line.strip():
                    continue
                if ended:
                    raise TraceError(
                        f"{path}: line {lineno}: record after the end marker"
                    )
                try:
                    obj = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise TraceError(
                        f"{path}: line {lineno}: invalid JSON "
                        f"(truncated write?): {exc}"
                    ) from None
                try:
                    record = event_from_json_obj(obj)
                except ValueError as exc:
                    raise TraceError(f"{path}: line {lineno}: {exc}") from None
                if isinstance(record, TraceEnd):
                    if record.events != count:
                        raise TraceError(
                            f"{path}: line {lineno}: end marker claims "
                            f"{record.events} events but {count} were read"
                        )
                    ended = True
                    continue
                count += 1
                yield record
            if not ended and not allow_partial:
                raise TraceError(
                    f"{path}: no end marker after {count} events — the "
                    f"file is truncated or the run died before finishing"
                )
        finally:
            handle.close()

    return header, events()


# ----------------------------------------------------------------------
# Binary backend.
# ----------------------------------------------------------------------


def _open_binary(
    path: str, allow_partial: bool
) -> Tuple[TraceHeader, Iterator[AnyRecord]]:
    handle = open(path, "rb")
    preamble = len(BINARY_MAGIC) + 1 + 4
    head = handle.read(preamble)
    if len(head) < preamble:
        handle.close()
        raise TraceError(
            f"{path}: truncated at byte {len(head)}: incomplete binary preamble"
        )
    version = head[len(BINARY_MAGIC)]
    header_len = int.from_bytes(head[len(BINARY_MAGIC) + 1:], "little")
    blob = handle.read(header_len)
    if len(blob) < header_len:
        handle.close()
        raise TraceError(
            f"{path}: truncated at byte {preamble + len(blob)}: "
            f"header JSON cut short ({len(blob)}/{header_len} bytes)"
        )
    try:
        obj = json.loads(blob.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        handle.close()
        raise TraceError(f"{path}: corrupt binary header JSON: {exc}") from None
    header = _header_from_json_obj(obj, path)
    if header.version != version:
        handle.close()
        raise TraceError(
            f"{path}: preamble version {version} disagrees with header "
            f"version {header.version}"
        )

    def events() -> Iterator[AnyRecord]:
        count = 0
        offset = preamble + header_len
        ended = False
        try:
            while True:
                tag = handle.read(1)
                if not tag:
                    break
                if ended:
                    raise TraceError(
                        f"{path}: byte {offset}: record after the end marker"
                    )
                try:
                    kind = EventKind(tag[0])
                except ValueError:
                    raise TraceError(
                        f"{path}: byte {offset}: unknown record tag {tag[0]}"
                    ) from None
                spec = STRUCT_OF_KIND[kind]
                payload = handle.read(spec.size)
                if len(payload) < spec.size:
                    raise TraceError(
                        f"{path}: truncated at byte {offset + 1 + len(payload)}: "
                        f"{kind.name} record cut short "
                        f"({len(payload)}/{spec.size} payload bytes)"
                    )
                record = unpack_event(kind, payload)
                offset += 1 + spec.size
                if isinstance(record, TraceEnd):
                    if record.events != count:
                        raise TraceError(
                            f"{path}: end marker claims {record.events} events "
                            f"but {count} were read"
                        )
                    ended = True
                    continue
                count += 1
                yield record
            if not ended and not allow_partial:
                raise TraceError(
                    f"{path}: no end marker after {count} events — the "
                    f"file is truncated or the run died before finishing"
                )
        finally:
            handle.close()

    return header, events()


# ----------------------------------------------------------------------
# Window aggregation.
# ----------------------------------------------------------------------


@dataclass
class WindowAggregate:
    """Everything that happened in one ``[start, start + width)`` window."""

    start: int
    width: int
    transactions: int = 0
    snoops: int = 0
    retries: int = 0
    writes: int = 0
    migrations: int = 0
    map_grows: int = 0
    map_shrinks: int = 0
    removal_cycles: int = 0  # sum of MAP_SHRINK periods closed this window
    map_sizes: Dict[int, int] = field(default_factory=dict)  # vm -> last size

    @property
    def snoops_per_transaction(self) -> float:
        return self.snoops / self.transactions if self.transactions else 0.0


def aggregate_windows(
    events: Iterable[AnyRecord], window: int
) -> List[WindowAggregate]:
    """Fold ``events`` into consecutive fixed-width cycle windows.

    Windows are aligned to multiples of ``window`` and cover the full
    observed span (gap windows with no events are materialised, so a
    quiet stretch shows as zeros instead of silently vanishing).
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    windows: List[WindowAggregate] = []
    sizes: Dict[int, int] = {}

    def window_for(cycle: int) -> WindowAggregate:
        start = cycle - (cycle % window)
        while windows and windows[-1].start < start:
            nxt = windows[-1].start + window
            if nxt > start:
                break
            windows.append(
                WindowAggregate(start=nxt, width=window, map_sizes=dict(sizes))
            )
        if not windows or windows[-1].start != start:
            windows.append(
                WindowAggregate(start=start, width=window, map_sizes=dict(sizes))
            )
        return windows[-1]

    for event in events:
        agg = window_for(event.cycle)
        if isinstance(event, TransactionEvent):
            agg.transactions += 1
            agg.snoops += event.snoops
            agg.retries += event.retries
            if event.is_write:
                agg.writes += 1
        elif isinstance(event, MigrationEvent):
            agg.migrations += 1
        elif isinstance(event, MapEvent):
            if event.grew:
                agg.map_grows += 1
            else:
                agg.map_shrinks += 1
                agg.removal_cycles += event.period
            sizes[event.vm_id] = event.size
            agg.map_sizes[event.vm_id] = event.size
    return windows


@dataclass
class PhaseBucket:
    """Average behaviour at one window offset relative to a migration."""

    offset: int  # in windows; 0 = the window starting at the migration
    samples: int = 0
    transactions: int = 0
    snoops: int = 0

    @property
    def snoops_per_transaction(self) -> float:
        return self.snoops / self.transactions if self.transactions else 0.0


def migration_phase_profile(
    events: Iterable[AnyRecord],
    window: int,
    before: int = 2,
    after: int = 8,
) -> List[PhaseBucket]:
    """Aggregate transaction windows relative to each relocation.

    For every distinct migration cycle *m* (a swap's two relocation
    events share one), transactions in ``[m + k*window, m + (k+1)*window)``
    accumulate into the bucket at offset ``k`` for ``-before <= k < after``.
    The returned buckets are the observed Figure 7/8 shape: offset 0
    spikes, later offsets decay back to the pre-migration level as the
    residence counters drain the old cores out of the vCPU maps.
    """
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    materialised = list(events)
    migration_cycles = sorted(
        {e.cycle for e in materialised if isinstance(e, MigrationEvent)}
    )
    buckets = {
        offset: PhaseBucket(offset=offset) for offset in range(-before, after)
    }
    if not migration_cycles:
        return [buckets[offset] for offset in sorted(buckets)]
    for cycle in migration_cycles:
        for offset in buckets:
            buckets[offset].samples += 1
    transactions = [
        e for e in materialised if isinstance(e, TransactionEvent)
    ]
    highs = [m + after * window for m in migration_cycles]
    for event in transactions:
        # A transaction can fall in the vicinity of several migrations;
        # credit each one (the profile is an average over relocations).
        first = bisect.bisect_left(highs, event.cycle + 1)
        for m in migration_cycles[first:]:
            if event.cycle < m - before * window:
                break
            offset = (event.cycle - m) // window
            if -before <= offset < after:
                bucket = buckets[offset]
                bucket.transactions += 1
                bucket.snoops += event.snoops
    return [buckets[offset] for offset in sorted(buckets)]
