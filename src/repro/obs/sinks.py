"""Trace sinks: where emitted events go.

A :class:`TraceSink` receives a header, then events, then an explicit
:meth:`close` that writes the end record (event count + final cycle).
Two backends implement it:

* :class:`JsonlTraceSink` — one JSON object per line, human-greppable.
* :class:`BinaryTraceSink` — the struct-packed format from
  :mod:`repro.obs.events` (~5x smaller), for soak runs.

Sinks buffer through ordinary file objects; the engine calls
``close(final_cycle)`` from its finalisation step, so a trace without an
end record means the run died mid-way — which the reader reports loudly
rather than treating as a short run.
"""

from __future__ import annotations

import json
from typing import IO, Optional, Protocol

from repro.obs.events import (
    BINARY_MAGIC,
    TRACE_VERSION,
    AnyRecord,
    TraceEnd,
    TraceHeader,
    event_to_json_obj,
    pack_event,
)


class TraceSink(Protocol):
    """What the tracer writes through; implement these three methods."""

    def write_header(self, header: TraceHeader) -> None:
        """Record run context; called exactly once, before any event."""
        ...

    def emit(self, event: AnyRecord) -> None:
        """Append one event."""
        ...

    def close(self, final_cycle: int) -> None:
        """Write the end record and release the underlying file."""
        ...


class _BaseFileSink:
    """Shared open/count/close bookkeeping for the file-backed sinks."""

    def __init__(self, path: str, mode: str) -> None:
        self.path = path
        self.events_written = 0
        self.closed = False
        self._file: Optional[IO] = open(path, mode)

    def _ensure_open(self) -> IO:
        if self._file is None:
            raise ValueError(f"trace sink for {self.path} is closed")
        return self._file

    def _release(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None
        self.closed = True


class JsonlTraceSink(_BaseFileSink):
    """One JSON object per line; first line header, last line end record."""

    def __init__(self, path: str) -> None:
        super().__init__(path, "w")

    def write_header(self, header: TraceHeader) -> None:
        self._ensure_open().write(
            json.dumps(header.to_json_obj(), sort_keys=True) + "\n"
        )

    def emit(self, event: AnyRecord) -> None:
        self._ensure_open().write(
            json.dumps(event_to_json_obj(event), sort_keys=True) + "\n"
        )
        self.events_written += 1

    def close(self, final_cycle: int = 0) -> None:
        if self.closed:
            return
        handle = self._ensure_open()
        end = TraceEnd(cycle=final_cycle, events=self.events_written)
        handle.write(json.dumps(event_to_json_obj(end), sort_keys=True) + "\n")
        self._release()


class BinaryTraceSink(_BaseFileSink):
    """Struct-packed records behind a magic + header-JSON preamble.

    Layout: ``BINARY_MAGIC`` (8 bytes), version byte, 4-byte little-endian
    header length, the header JSON (UTF-8), then the record stream; the
    final record is the ``END`` tag carrying the event count.
    """

    def __init__(self, path: str) -> None:
        super().__init__(path, "wb")

    def write_header(self, header: TraceHeader) -> None:
        handle = self._ensure_open()
        blob = json.dumps(header.to_json_obj(), sort_keys=True).encode("utf-8")
        handle.write(BINARY_MAGIC)
        handle.write(bytes((TRACE_VERSION,)))
        handle.write(len(blob).to_bytes(4, "little"))
        handle.write(blob)

    def emit(self, event: AnyRecord) -> None:
        self._ensure_open().write(pack_event(event))
        self.events_written += 1

    def close(self, final_cycle: int = 0) -> None:
        if self.closed:
            return
        handle = self._ensure_open()
        handle.write(pack_event(TraceEnd(cycle=final_cycle, events=self.events_written)))
        self._release()


def open_sink(path: str, trace_format: str = "auto") -> TraceSink:
    """Build the sink for ``path``.

    ``auto`` picks JSONL for ``.jsonl``/``.json`` paths and the binary
    format for everything else (the ``.evt`` convention).
    """
    if trace_format == "auto":
        trace_format = (
            "jsonl" if path.endswith((".jsonl", ".json")) else "binary"
        )
    if trace_format == "jsonl":
        return JsonlTraceSink(path)
    if trace_format == "binary":
        return BinaryTraceSink(path)
    raise ValueError(
        f"trace_format must be 'auto', 'jsonl' or 'binary', got {trace_format!r}"
    )
