"""The structured trace-event vocabulary and its two codecs.

Every event is a small frozen dataclass carrying plain data (enum fields
are stored by their string *value* so a decoded event compares equal to
the one emitted). Two wire formats exist:

* **JSONL** — one JSON object per line, ``{"kind": "transaction", ...}``,
  self-describing and greppable.
* **Binary** — a struct-packed record stream (~15-30 bytes per event
  depending on kind, vs ~150 for JSONL), for long soak runs. Each record
  is a one-byte :class:`EventKind` tag followed by a fixed per-kind
  struct, little-endian, no padding.

Both formats start with a header (format/version plus free-form context
such as the policy) and finish with an explicit end record carrying the
event count, so a cleanly-truncated file is still detected loudly by the
reader instead of silently passing for a short run.

Enum codes used by the binary format are derived from the declaration
order of :class:`~repro.mem.pagetype.PageType`,
:class:`~repro.workloads.trace.Initiator` and
:class:`~repro.sanitizer.violation.SanitizerCheck`; adding or reordering
members is a trace-format change and must bump :data:`TRACE_VERSION`.
"""

from __future__ import annotations

import struct
from dataclasses import asdict, dataclass, fields
from enum import IntEnum
from typing import Any, Dict, Set, Union

from repro.mem.pagetype import PageType
from repro.sanitizer.violation import SanitizerCheck
from repro.workloads.trace import Initiator

TRACE_VERSION = 1

#: Magic prefix identifying the binary format (reader sniffs on it).
BINARY_MAGIC = b"RVSTRACE"


class EventKind(IntEnum):
    """One-byte record tags (also the JSONL ``kind`` names, lowered)."""

    END = 0
    TRANSACTION = 1
    MIGRATION = 2
    MAP_GROW = 3
    MAP_SHRINK = 4
    VIOLATION = 5
    PHASE = 6


# Stable code maps for enum-valued fields in the binary format.
_PAGE_TYPE_CODE = {t.value: i for i, t in enumerate(PageType)}
_PAGE_TYPE_NAME = {i: t.value for i, t in enumerate(PageType)}
_INITIATOR_CODE = {t.value: i for i, t in enumerate(Initiator)}
_INITIATOR_NAME = {i: t.value for i, t in enumerate(Initiator)}
_CHECK_CODE = {t.value: i for i, t in enumerate(SanitizerCheck)}
_CHECK_NAME = {i: t.value for i, t in enumerate(SanitizerCheck)}


@dataclass(frozen=True)
class TraceHeader:
    """First record of every trace: format identity plus run context."""

    version: int = TRACE_VERSION
    policy: str = ""
    app: str = ""
    seed: int = 0
    num_cores: int = 0

    def to_json_obj(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"kind": "header", "format": "repro-trace"}
        out.update(asdict(self))
        return out


@dataclass(frozen=True)
class TransactionEvent:
    """One coherence transaction as the engine ran it.

    ``dest_size`` is the first attempt's destination-set size (what the
    filter committed to); ``snoops``/``retries`` are the exact protocol
    counter deltas the transaction charged, so per-window sums rebuild
    the aggregate statistics without rounding.
    """

    cycle: int
    core: int
    vm_id: int
    block: int
    page_type: str  # PageType value
    initiator: str  # Initiator value
    is_write: bool
    dest_size: int
    snoops: int
    retries: int
    latency: int


@dataclass(frozen=True)
class MigrationEvent:
    """One vCPU-to-core relocation (a swap emits two, same cycle)."""

    cycle: int
    vm_id: int
    vcpu_index: int
    old_core: int  # -1 for an initial placement
    new_core: int


@dataclass(frozen=True)
class MapEvent:
    """A vCPU-map (snoop domain) grow or shrink.

    ``period`` is only meaningful on shrink: cycles from the vCPU's
    displacement to the removal (the Figure 9 quantity), 0 when the
    removal closed no displacement window.
    """

    cycle: int
    vm_id: int
    core: int
    grew: bool
    size: int  # domain size after the change
    period: int = 0


@dataclass(frozen=True)
class ViolationEvent:
    """A sanitizer violation observed mid-run (counting mode, usually)."""

    cycle: int
    check: str  # SanitizerCheck value
    vm_id: int
    core: int
    block: int


@dataclass(frozen=True)
class PhaseEvent:
    """A phase boundary; ``phase`` is ``"measure"`` at measurement start."""

    cycle: int
    phase: str


@dataclass(frozen=True)
class TraceEnd:
    """Explicit terminator; ``events`` counts every record before it."""

    cycle: int
    events: int


TraceEvent = Union[
    TransactionEvent, MigrationEvent, MapEvent, ViolationEvent, PhaseEvent
]
AnyRecord = Union[TraceEvent, TraceHeader, TraceEnd]

_PHASE_CODE = {"warmup": 0, "measure": 1}
_PHASE_NAME = {code: name for name, code in _PHASE_CODE.items()}

# ----------------------------------------------------------------------
# JSON codec.
# ----------------------------------------------------------------------

_KIND_OF_TYPE: Dict[type, EventKind] = {
    TransactionEvent: EventKind.TRANSACTION,
    MigrationEvent: EventKind.MIGRATION,
    ViolationEvent: EventKind.VIOLATION,
    PhaseEvent: EventKind.PHASE,
    TraceEnd: EventKind.END,
}

_TYPE_OF_KIND_NAME: Dict[str, type] = {
    "transaction": TransactionEvent,
    "migration": MigrationEvent,
    "map_grow": MapEvent,
    "map_shrink": MapEvent,
    "violation": ViolationEvent,
    "phase": PhaseEvent,
    "end": TraceEnd,
}


def kind_of(event: AnyRecord) -> EventKind:
    """The :class:`EventKind` tag of one event object."""
    if isinstance(event, MapEvent):
        return EventKind.MAP_GROW if event.grew else EventKind.MAP_SHRINK
    return _KIND_OF_TYPE[type(event)]


def event_to_json_obj(event: AnyRecord) -> Dict[str, Any]:
    """One event as a JSON-serializable dict with a ``kind`` tag."""
    out: Dict[str, Any] = {"kind": kind_of(event).name.lower()}
    out.update(asdict(event))
    return out


def event_from_json_obj(obj: Dict[str, Any]) -> AnyRecord:
    """Inverse of :func:`event_to_json_obj`; raises ``ValueError`` loudly."""
    if not isinstance(obj, dict) or "kind" in obj and not isinstance(obj["kind"], str):
        raise ValueError(f"not a trace record: {obj!r}")
    kind = obj.get("kind")
    if kind is None:
        raise ValueError(f"trace record without a kind tag: {obj!r}")
    cls = _TYPE_OF_KIND_NAME.get(kind)
    if cls is None:
        raise ValueError(f"unknown trace record kind {kind!r}")
    payload = {key: value for key, value in obj.items() if key != "kind"}
    names = {f.name for f in fields(cls)}
    unknown = set(payload) - names
    if unknown:
        raise ValueError(f"unknown fields for {kind!r} record: {sorted(unknown)}")
    missing = names - set(payload) - _OPTIONAL_FIELDS.get(cls, set())
    if missing:
        raise ValueError(f"missing fields for {kind!r} record: {sorted(missing)}")
    return cls(**payload)


_OPTIONAL_FIELDS: Dict[type, Set[str]] = {MapEvent: {"period"}}

# ----------------------------------------------------------------------
# Binary codec. Each record: one kind byte + a fixed per-kind struct.
# ----------------------------------------------------------------------

_S_TRANSACTION = struct.Struct("<QBhqBBBHHHI")
_S_MIGRATION = struct.Struct("<QhBhh")
_S_MAP = struct.Struct("<QhhBBQ")
_S_VIOLATION = struct.Struct("<QBhhq")
_S_PHASE = struct.Struct("<QB")
_S_END = struct.Struct("<QQ")

STRUCT_OF_KIND: Dict[EventKind, struct.Struct] = {
    EventKind.TRANSACTION: _S_TRANSACTION,
    EventKind.MIGRATION: _S_MIGRATION,
    EventKind.MAP_GROW: _S_MAP,
    EventKind.MAP_SHRINK: _S_MAP,
    EventKind.VIOLATION: _S_VIOLATION,
    EventKind.PHASE: _S_PHASE,
    EventKind.END: _S_END,
}


def pack_event(event: AnyRecord) -> bytes:
    """One event as ``kind byte + struct payload``."""
    kind = kind_of(event)
    tag = bytes((kind,))
    if isinstance(event, TransactionEvent):
        return tag + _S_TRANSACTION.pack(
            event.cycle,
            event.core,
            event.vm_id,
            event.block,
            _PAGE_TYPE_CODE[event.page_type],
            _INITIATOR_CODE[event.initiator],
            1 if event.is_write else 0,
            event.dest_size,
            event.snoops,
            event.retries,
            event.latency,
        )
    if isinstance(event, MigrationEvent):
        return tag + _S_MIGRATION.pack(
            event.cycle, event.vm_id, event.vcpu_index, event.old_core, event.new_core
        )
    if isinstance(event, MapEvent):
        return tag + _S_MAP.pack(
            event.cycle,
            event.vm_id,
            event.core,
            1 if event.grew else 0,
            event.size,
            event.period,
        )
    if isinstance(event, ViolationEvent):
        return tag + _S_VIOLATION.pack(
            event.cycle,
            _CHECK_CODE[event.check],
            event.vm_id,
            event.core,
            event.block,
        )
    if isinstance(event, PhaseEvent):
        return tag + _S_PHASE.pack(event.cycle, _PHASE_CODE[event.phase])
    if isinstance(event, TraceEnd):
        return tag + _S_END.pack(event.cycle, event.events)
    raise TypeError(f"cannot pack {type(event).__name__}")


def unpack_event(kind: EventKind, payload: bytes) -> AnyRecord:
    """Inverse of :func:`pack_event` for one record's struct payload."""
    if kind is EventKind.TRANSACTION:
        (cycle, core, vm, block, ptype, init, flags, dest, snoops, retries,
         latency) = _S_TRANSACTION.unpack(payload)
        return TransactionEvent(
            cycle=cycle,
            core=core,
            vm_id=vm,
            block=block,
            page_type=_PAGE_TYPE_NAME[ptype],
            initiator=_INITIATOR_NAME[init],
            is_write=bool(flags & 1),
            dest_size=dest,
            snoops=snoops,
            retries=retries,
            latency=latency,
        )
    if kind is EventKind.MIGRATION:
        cycle, vm, vcpu, old, new = _S_MIGRATION.unpack(payload)
        return MigrationEvent(
            cycle=cycle, vm_id=vm, vcpu_index=vcpu, old_core=old, new_core=new
        )
    if kind in (EventKind.MAP_GROW, EventKind.MAP_SHRINK):
        cycle, vm, core, grew, size, period = _S_MAP.unpack(payload)
        return MapEvent(
            cycle=cycle, vm_id=vm, core=core, grew=bool(grew), size=size, period=period
        )
    if kind is EventKind.VIOLATION:
        cycle, check, vm, core, block = _S_VIOLATION.unpack(payload)
        return ViolationEvent(
            cycle=cycle, check=_CHECK_NAME[check], vm_id=vm, core=core, block=block
        )
    if kind is EventKind.PHASE:
        cycle, phase = _S_PHASE.unpack(payload)
        return PhaseEvent(cycle=cycle, phase=_PHASE_NAME[phase])
    if kind is EventKind.END:
        cycle, events = _S_END.unpack(payload)
        return TraceEnd(cycle=cycle, events=events)
    raise ValueError(f"unknown event kind {kind!r}")
