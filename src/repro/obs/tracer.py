"""The tracer: glue between the engine's observer seams and a sink.

A :class:`Tracer` taps the same opt-in wrapper seams the coherence
sanitizer uses — the engine rebinds its hot-path aliases through
:meth:`wrap_plan` / :meth:`wrap_transact` only when a tracer is attached,
so a trace-less run executes exactly the pre-observability code. The
wrappers are pure observers: they read counter deltas and stash the last
plan, but change no latency, no traffic and no RNG draw, which is what
keeps a traced run's statistics bit-identical to an untraced one.

Event sources:

* ``wrap_transact`` — one :class:`TransactionEvent` per coherence
  transaction, with the exact snoop/retry deltas the protocol charged
  and the destination-set size of the plan's first attempt.
* ``Hypervisor.relocation_hook`` — :class:`MigrationEvent` per vCPU
  relocation (two per swap).
* ``SnoopDomainTable.map_hook`` — :class:`MapEvent` per vCPU-map grow or
  shrink, the shrink carrying its Figure 9 removal period.
* ``CoherenceSanitizer.on_violation`` — :class:`ViolationEvent` when the
  sanitizer is also attached (counting mode; in raise mode the run dies
  before the event would be read anyway).

The tracer stays disabled through warmup; the engine's measurement reset
calls :meth:`begin_measurement`, which emits the ``measure``
:class:`PhaseEvent` and opens the gate, so trace sums equal measured
statistics exactly.

:func:`attach_observability` builds the tracer and/or the
:class:`~repro.obs.recorder.MetricsRecorder` for one system and wires
every hook; ``build_system`` calls it when ``SimConfig.trace`` or
``SimConfig.metrics_sample_every`` is set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional, Tuple

from repro.obs.events import (
    MapEvent,
    MigrationEvent,
    PhaseEvent,
    TraceHeader,
    TransactionEvent,
    ViolationEvent,
)
from repro.obs.recorder import MetricsRecorder
from repro.obs.sinks import TraceSink, open_sink

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hypervisor.hypervisor import RelocationEvent
    from repro.sanitizer.violation import SanitizerViolation
    from repro.sim.system import SimulatedSystem


def _coalesce(value: Optional[int], fallback: int = -1) -> int:
    return value if value is not None else fallback


class Tracer:
    """Emits structured events for one run into a :class:`TraceSink`."""

    def __init__(self, system: "SimulatedSystem", sink: TraceSink) -> None:
        self.system = system
        self.sink = sink
        self.enabled = False  # opened by begin_measurement
        self.clock: Callable[[], int] = lambda: 0
        self._plan_fn = None
        self._transact_fn = None
        self._last_plan = None

    def write_header(self) -> None:
        config = self.system.config
        policy = (
            config.snoop_policy.value
            if config.filter_kind == "vsnoop"
            else config.filter_kind
        )
        self.sink.write_header(
            TraceHeader(
                policy=policy,
                app=self.system.profile.name,
                seed=config.seed,
                num_cores=config.num_cores,
            )
        )

    # ------------------------------------------------------------------
    # Engine seams (mirroring the sanitizer's wrap_* contract).
    # ------------------------------------------------------------------

    def wrap_plan(self, plan_fn):
        """Wrap the filter's plan function; stashes each produced plan."""
        self._plan_fn = plan_fn
        return self._traced_plan

    def _traced_plan(self, core, vm_id, page_type, block=None):
        # plan() is called exactly once per transaction, immediately
        # before execute(), on one thread — so the stash is always the
        # transaction the wrapped _transact below is reporting.
        plan = self._plan_fn(core, vm_id, page_type, block)
        self._last_plan = plan
        return plan

    def wrap_transact(self, transact_fn):
        """Wrap the engine's per-transaction entry point."""
        self._transact_fn = transact_fn
        return self._traced_transact

    def _traced_transact(
        self, core, vm_id, block, is_write, page_type, initiator, vm_tag,
        hierarchy, hit,
    ):
        if not self.enabled:
            return self._transact_fn(
                core, vm_id, block, is_write, page_type, initiator, vm_tag,
                hierarchy, hit,
            )
        coherence = self.system.protocol.stats
        snoops_before = coherence.snoops
        retries_before = coherence.retries
        latency = self._transact_fn(
            core, vm_id, block, is_write, page_type, initiator, vm_tag,
            hierarchy, hit,
        )
        plan = self._last_plan
        self.sink.emit(
            TransactionEvent(
                cycle=self.clock(),
                core=core,
                vm_id=vm_id,
                block=block,
                page_type=page_type.value,
                initiator=initiator.value,
                is_write=is_write,
                dest_size=len(plan.attempts[0]) if plan is not None else 0,
                snoops=coherence.snoops - snoops_before,
                retries=coherence.retries - retries_before,
                latency=latency,
            )
        )
        return latency

    # ------------------------------------------------------------------
    # Hook targets (hypervisor / domain table / sanitizer).
    # ------------------------------------------------------------------

    def on_relocation(self, event: "RelocationEvent") -> None:
        if not self.enabled:
            return
        self.sink.emit(
            MigrationEvent(
                cycle=event.cycle,
                vm_id=event.vm_id,
                vcpu_index=event.vcpu_index,
                old_core=_coalesce(event.old_core),
                new_core=event.new_core,
            )
        )

    def on_map_event(
        self, vm_id: int, core: int, grew: bool, size: int, cycle: int, period: int
    ) -> None:
        if not self.enabled:
            return
        self.sink.emit(
            MapEvent(
                cycle=cycle, vm_id=vm_id, core=core, grew=grew, size=size,
                period=period,
            )
        )

    def on_violation(self, violation: "SanitizerViolation") -> None:
        if not self.enabled:
            return
        self.sink.emit(
            ViolationEvent(
                cycle=_coalesce(violation.cycle, self.clock()),
                check=violation.check.value,
                vm_id=_coalesce(violation.vm_id),
                core=_coalesce(violation.core),
                block=_coalesce(violation.block),
            )
        )

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def begin_measurement(self, cycle: int) -> None:
        """Open the event gate at the measured-phase boundary."""
        self.enabled = True
        self.sink.emit(PhaseEvent(cycle=cycle, phase="measure"))

    def close(self, final_cycle: int) -> None:
        """Write the end record; the trace is incomplete without it."""
        self.sink.close(final_cycle)


def attach_observability(
    system: "SimulatedSystem",
    trace_path: Optional[str] = None,
    trace_format: str = "auto",
    metrics_sample_every: Optional[int] = None,
) -> Tuple[Optional[Tracer], Optional[MetricsRecorder]]:
    """Build and wire the tracer and/or metrics recorder for ``system``.

    Installs the relocation, vCPU-map and sanitizer hooks; the engine
    discovers both objects on ``system.tracer`` / ``system.metrics`` and
    installs the hot-path seams itself (as it does for the sanitizer).
    With neither argument set this is a no-op returning ``(None, None)``.
    """
    tracer: Optional[Tracer] = None
    recorder: Optional[MetricsRecorder] = None
    if trace_path is not None:
        tracer = Tracer(system, open_sink(trace_path, trace_format))
        tracer.write_header()
    if metrics_sample_every is not None:
        recorder = MetricsRecorder(system, metrics_sample_every)
    if tracer is None and recorder is None:
        return None, None

    if tracer is not None and recorder is not None:
        def on_relocation(event: "RelocationEvent") -> None:
            tracer.on_relocation(event)
            recorder.on_relocation(event)

        def on_map_event(
            vm_id: int, core: int, grew: bool, size: int, cycle: int, period: int
        ) -> None:
            tracer.on_map_event(vm_id, core, grew, size, cycle, period)
            recorder.on_map_event(vm_id, core, grew, size, cycle, period)
    elif tracer is not None:
        on_relocation = tracer.on_relocation
        on_map_event = tracer.on_map_event
    else:
        assert recorder is not None
        on_relocation = recorder.on_relocation
        on_map_event = recorder.on_map_event

    system.hypervisor.relocation_hook = on_relocation
    domains = getattr(system.snoop_filter, "domains", None)
    if domains is not None:
        domains.map_hook = on_map_event
    if tracer is not None and system.sanitizer is not None:
        system.sanitizer.on_violation = tracer.on_violation

    system.tracer = tracer
    system.metrics = recorder
    return tracer, recorder
