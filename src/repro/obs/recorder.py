"""The windowed metrics recorder driven by the engine's sample boundary.

One :class:`MetricsRecorder` rides a run and snapshots the system's
cumulative counters every ``sample_every`` cycles of the measured phase,
turning them into the per-window deltas of a
:class:`~repro.obs.series.MetricsSeries`. The engine keeps the cost off
the hot path the same way migrations do: a single ``local_time >=
next_sample`` comparison per access, against ``float('inf')`` when no
recorder is attached.

Flow counters (snoops, transactions, retries, network bytes) are read as
deltas of the live cumulative counters, so summing the windows rebuilds
the run's aggregate totals exactly. Map churn (grow/shrink/removal
periods) and relocations are streamed in through the same hooks the
tracer uses — which is also what keeps the removal statistics bounded on
soak runs: the recorder sees every removal even after the in-memory
``removal_log`` hits its cap.

Relocation accounting note: windows count *relocation events*, two per
vCPU swap, matching the trace's ``MIGRATION`` records (``SimStats.
migrations`` counts swaps, so series totals come to exactly twice it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.obs.series import MetricsSeries, MetricsWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.hypervisor.hypervisor import RelocationEvent
    from repro.sim.system import SimulatedSystem


class MetricsRecorder:
    """Samples one system's counters into fixed-width windows."""

    def __init__(self, system: "SimulatedSystem", sample_every: int) -> None:
        if sample_every <= 0:
            raise ValueError(f"sample_every must be positive, got {sample_every}")
        self.system = system
        self.sample_every = sample_every
        self.windows: list = []
        self._active = False
        self._window: Optional[MetricsWindow] = None
        # Cumulative-counter snapshot at the current window's start.
        self._base_transactions = 0
        self._base_snoops = 0
        self._base_retries = 0
        self._base_network_bytes = 0

    # ------------------------------------------------------------------
    # Engine-driven sampling.
    # ------------------------------------------------------------------

    def begin(self, cycle: int) -> int:
        """Start sampling (measured-phase start); returns the first boundary.

        Windows are aligned to multiples of ``sample_every``; the first
        window starts at the aligned floor of ``cycle`` so window starts
        are comparable across runs regardless of warmup length.
        """
        self._active = True
        start = cycle - (cycle % self.sample_every)
        self._window = MetricsWindow(start=start, width=self.sample_every)
        self._snapshot()
        return start + self.sample_every

    def sample(self, cycle: int) -> int:
        """Close the current window at ``cycle``; returns the next boundary.

        The engine checks the boundary once per access, so a window can
        close late (its successor starts at the aligned floor of the
        cycle that tripped the check); the recorded ``start`` values keep
        the true span visible.
        """
        self._close_window()
        start = cycle - (cycle % self.sample_every)
        self._window = MetricsWindow(start=start, width=self.sample_every)
        return start + self.sample_every

    def finish(self, cycle: int) -> MetricsSeries:
        """Close the final (possibly partial) window; returns the series."""
        if self._active:
            self._close_window()
            self._window = None
            self._active = False
        return MetricsSeries(sample_every=self.sample_every, windows=self.windows)

    # ------------------------------------------------------------------
    # Streamed events (same hooks the tracer uses).
    # ------------------------------------------------------------------

    def on_relocation(self, event: "RelocationEvent") -> None:
        if self._active and self._window is not None:
            self._window.migrations += 1

    def on_map_event(
        self, vm_id: int, core: int, grew: bool, size: int, cycle: int, period: int
    ) -> None:
        if not self._active or self._window is None:
            return
        if grew:
            self._window.map_grows += 1
        else:
            self._window.map_shrinks += 1
            self._window.removal_cycles += period

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _snapshot(self) -> None:
        # Always through `system`: the stats objects are swapped on the
        # engine's measurement reset.
        coherence = self.system.protocol.stats
        self._base_transactions = coherence.transactions
        self._base_snoops = coherence.snoops
        self._base_retries = coherence.retries
        self._base_network_bytes = self.system.network.bytes_transferred

    def _close_window(self) -> None:
        window = self._window
        if window is None:
            return
        system = self.system
        coherence = system.protocol.stats
        window.transactions = coherence.transactions - self._base_transactions
        window.snoops = coherence.snoops - self._base_snoops
        window.retries = coherence.retries - self._base_retries
        window.network_bytes = (
            system.network.bytes_transferred - self._base_network_bytes
        )
        domains = getattr(system.snoop_filter, "domains", None)
        if domains is not None:
            window.map_sizes = {
                vm.vm_id: domains.domain_size(vm.vm_id) for vm in system.vms
            }
        trackers = getattr(system.snoop_filter, "trackers", None)
        if trackers is not None:
            window.residence_sum = sum(
                sum(tracker.counts().values()) for tracker in trackers.values()
            )
        self.windows.append(window)
        self._snapshot()
