"""``repro-sim report``: per-phase tables from a recorded trace.

Renders two views of one trace file:

* the **windowed timeline** — snoops, transactions and map churn per
  fixed-width cycle window, with each window's migrations marked, so the
  Figure 7/8 behaviour (snoop-rate spike at each relocation, decay as
  the residence counters drain old cores out of the vCPU maps) is
  visible as numbers scrolling by;
* the **migration phase profile** — the same windows re-aligned relative
  to every relocation and averaged, which is the paper's figure shape
  directly: offset 0 spikes, positive offsets decay.

Everything here works from the trace alone; no simulation state is
needed, so the report runs on traces from other machines or campaigns.
"""

from __future__ import annotations

from typing import List

from repro.analysis.tables import render_table
from repro.obs.reader import (
    aggregate_windows,
    migration_phase_profile,
    read_header,
    read_trace,
)


def render_report(
    path: str,
    window: int = 10_000,
    before: int = 2,
    after: int = 8,
    allow_partial: bool = False,
) -> str:
    """The full ``repro-sim report`` text for one trace file."""
    header = read_header(path)
    events = list(read_trace(path, allow_partial=allow_partial))
    sections: List[str] = [
        f"trace {path}: policy={header.policy} app={header.app} "
        f"seed={header.seed} cores={header.num_cores} ({len(events)} events)"
    ]

    windows = aggregate_windows(events, window)
    timeline_rows = []
    for agg in windows:
        sizes = ",".join(
            str(agg.map_sizes[vm]) for vm in sorted(agg.map_sizes)
        )
        timeline_rows.append(
            (
                agg.start,
                agg.transactions,
                agg.snoops,
                round(agg.snoops_per_transaction, 3),
                agg.retries,
                agg.migrations,
                agg.map_grows,
                agg.map_shrinks,
                sizes or "-",
            )
        )
    sections.append(
        render_table(
            (
                "cycle", "txns", "snoops", "snoops/txn", "retries",
                "migrations", "grows", "shrinks", "map sizes",
            ),
            timeline_rows,
            title=f"Windowed timeline ({window}-cycle windows)",
        )
    )

    profile = migration_phase_profile(events, window, before=before, after=after)
    if any(bucket.samples for bucket in profile):
        profile_rows = [
            (
                bucket.offset * window,
                bucket.samples,
                bucket.transactions,
                bucket.snoops,
                round(bucket.snoops_per_transaction, 3),
            )
            for bucket in profile
        ]
        sections.append(
            render_table(
                ("offset (cycles)", "samples", "txns", "snoops", "snoops/txn"),
                profile_rows,
                title=(
                    "Migration phase profile (windows aligned to each "
                    "relocation; Figures 7-8)"
                ),
            )
        )
    else:
        sections.append("Migration phase profile: no migrations in this trace.")
    return "\n\n".join(sections)
