"""Opt-in observability: structured event tracing + metrics time-series.

The paper's argument is temporal — Figures 7-9 live on *when* snoops
spike after a relocation and *how long* old cores linger in a vCPU map —
so this package records the run itself rather than only its end-of-run
aggregates:

* :mod:`repro.obs.events` — the structured event vocabulary (coherence
  transactions, migrations, vCPU-map grow/shrink, sanitizer violations,
  phase markers) with JSON and struct-packed binary codecs.
* :mod:`repro.obs.sinks` — the :class:`TraceSink` protocol and its JSONL
  and compact binary backends.
* :mod:`repro.obs.reader` — iterates either backend format back into
  event objects and reconstructs per-window aggregates; truncated or
  corrupt traces fail loudly with a position.
* :mod:`repro.obs.series` / :mod:`repro.obs.recorder` — the windowed
  metrics time-series sampled while the engine runs.
* :mod:`repro.obs.tracer` — the glue that hooks the existing engine and
  hypervisor observer seams; :func:`attach_observability` is what
  ``build_system`` calls when ``SimConfig.trace`` or
  ``SimConfig.metrics_sample_every`` is set.
* :mod:`repro.obs.report` — the ``repro-sim report`` implementation.

Everything here is opt-in: with tracing and metrics disabled the engine
hot path is untouched and statistics stay bit-identical (the same
guarantee ``--sanitize`` gives).
"""

from repro.obs.events import (
    EventKind,
    MapEvent,
    MigrationEvent,
    PhaseEvent,
    TraceEnd,
    TraceHeader,
    TransactionEvent,
    ViolationEvent,
)
from repro.obs.reader import (
    TraceError,
    WindowAggregate,
    aggregate_windows,
    migration_phase_profile,
    read_trace,
)
from repro.obs.recorder import MetricsRecorder
from repro.obs.series import MetricsSeries, MetricsWindow
from repro.obs.sinks import BinaryTraceSink, JsonlTraceSink, TraceSink, open_sink
from repro.obs.tracer import Tracer, attach_observability

__all__ = [
    "BinaryTraceSink",
    "EventKind",
    "JsonlTraceSink",
    "MapEvent",
    "MetricsRecorder",
    "MetricsSeries",
    "MetricsWindow",
    "MigrationEvent",
    "PhaseEvent",
    "Tracer",
    "TraceEnd",
    "TraceError",
    "TraceHeader",
    "TraceSink",
    "TransactionEvent",
    "ViolationEvent",
    "WindowAggregate",
    "aggregate_windows",
    "attach_observability",
    "migration_phase_profile",
    "open_sink",
    "read_trace",
]
