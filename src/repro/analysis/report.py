"""Markdown report generation: paper-vs-measured comparisons.

Renders experiment-driver results side by side with the paper's reported
values (:mod:`repro.analysis.paper`) as Markdown tables — the format
EXPERIMENTS.md uses. Each renderer takes the corresponding driver's
``run()`` output.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from repro.analysis import paper


def markdown_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A GitHub-flavoured Markdown table."""
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        cells = list(row)
        if len(cells) != len(headers):
            raise ValueError(
                f"row has {len(cells)} cells but there are {len(headers)} headers"
            )
        lines.append("| " + " | ".join(str(c) for c in cells) + " |")
    return "\n".join(lines)


def _fmt(value: float, digits: int = 1) -> str:
    return f"{value:.{digits}f}"


def fig1_report(results: Dict[str, Dict[str, float]]) -> str:
    """Figure 1: measured hyp+dom0 miss shares vs the paper's."""
    rows: List[List[str]] = []
    for app, row in results.items():
        measured = row["dom0"] + row["xen"]
        reference = paper.FIG1_HYP_DOM0_SHARE_PCT.get(app)
        reference_text = (
            f"{reference:.0f}" if reference is not None
            else f"< {paper.FIG1_DEFAULT_BOUND_PCT:.0f}"
        )
        rows.append([app, reference_text, _fmt(measured)])
    return markdown_table(["workload", "paper (%)", "measured (%)"], rows)


def table1_report(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    """Table I: relocation periods, paper vs measured."""
    rows: List[List[str]] = []
    for app, row in results.items():
        reference = paper.TABLE1_RELOCATION_MS.get(app)
        rows.append([
            app,
            f"{reference[0]:.1f} / {reference[1]:.1f}" if reference else "-",
            f"{_fmt(row['under']['relocation_period_ms'])} / "
            f"{_fmt(row['over']['relocation_period_ms'])}",
        ])
    return markdown_table(
        ["workload", "paper under/over (ms)", "measured under/over (ms)"], rows
    )


def table4_report(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        [
            app,
            _fmt(paper.TABLE4_TRAFFIC_REDUCTION_PCT.get(app, float("nan")), 2),
            _fmt(row["traffic_reduction_pct"], 2),
        ]
        for app, row in results.items()
    ]
    return markdown_table(["workload", "paper (%)", "measured (%)"], rows)


def table5_report(results: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for app, row in results.items():
        reference = paper.TABLE5_CONTENT_SHARES_PCT.get(app)
        rows.append([
            app,
            f"{reference[0]:.2f} / {reference[1]:.2f}" if reference else "-",
            f"{row['l1_access_pct']:.2f} / {row['l2_miss_pct']:.2f}",
        ])
    return markdown_table(
        ["workload", "paper access/miss (%)", "measured access/miss (%)"], rows
    )


def table6_report(results: Dict[str, Dict[str, float]]) -> str:
    rows = []
    for app, row in results.items():
        reference = paper.TABLE6_HOLDERS_PCT.get(app)
        if reference is None:
            continue
        rows.append([
            app,
            f"{reference['cache_all']:.1f} / {reference['memory']:.1f}",
            f"{row['holder_cache_pct']:.1f} / {row['holder_memory_pct']:.1f}",
            f"{reference['intra']:.1f}+{reference['friend']:.1f}",
            f"{row['holder_intra_pct']:.1f}+{row['holder_friend_pct']:.1f}",
        ])
    return markdown_table(
        [
            "workload",
            "paper cache/memory (%)",
            "measured cache/memory (%)",
            "paper intra+friend (%)",
            "measured intra+friend (%)",
        ],
        rows,
    )
