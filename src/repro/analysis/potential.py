"""Closed-form potential-reduction model (Figure 2).

With ``v`` VMs of ``c`` vCPUs each on ``n = v*c`` physical cores, no
migration and no content sharing, a VM-private transaction snoops ``c``
of ``n`` cores while hypervisor transactions (ratio ``h`` of the total)
must broadcast to all ``n``. The expected snoop reduction relative to a
full-broadcast protocol is therefore::

    reduction(v, c, h) = (1 - h) * (1 - c / n)

The paper's Figure 2 sweeps v in {2,4,8,16} (c = 4) for h in
{0, 5%, 10%, 20%, 30%, 40%}: the ideal 16-VM configuration reduces
93.75 % of snoops; with 5-10 % hypervisor misses it still reduces 84-89 %.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

HYPERVISOR_RATIOS = (0.0, 0.05, 0.10, 0.20, 0.30, 0.40)
VM_COUNTS = (2, 4, 8, 16)


def potential_snoop_reduction(
    num_vms: int, vcpus_per_vm: int, hypervisor_ratio: float
) -> float:
    """Fraction of snoops removed by ideal virtual snooping.

    Args:
        num_vms: number of VMs (each gets its own snoop domain).
        vcpus_per_vm: vCPUs per VM == cores per snoop domain.
        hypervisor_ratio: fraction of coherence transactions issued by
            the hypervisor/dom0, which must broadcast.
    """
    if num_vms < 1 or vcpus_per_vm < 1:
        raise ValueError("num_vms and vcpus_per_vm must be >= 1")
    if not 0.0 <= hypervisor_ratio <= 1.0:
        raise ValueError(f"hypervisor_ratio {hypervisor_ratio} not in [0,1]")
    total_cores = num_vms * vcpus_per_vm
    return (1.0 - hypervisor_ratio) * (1.0 - vcpus_per_vm / total_cores)


def figure2_series(
    vm_counts: Sequence[int] = VM_COUNTS,
    vcpus_per_vm: int = 4,
    hypervisor_ratios: Sequence[float] = HYPERVISOR_RATIOS,
) -> Dict[float, List[float]]:
    """The Figure 2 curves: ratio -> reductions per VM count (percent)."""
    return {
        ratio: [
            100.0 * potential_snoop_reduction(vms, vcpus_per_vm, ratio)
            for vms in vm_counts
        ]
        for ratio in hypervisor_ratios
    }
