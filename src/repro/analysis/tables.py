"""Plain-text rendering of result tables and simple bar charts.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and readable in a terminal.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Format ``rows`` as an aligned ASCII table."""
    materialised: List[List[str]] = [[_fmt(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialised:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but there are {len(headers)} headers"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in materialised:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_bars(
    labels: Sequence[str],
    values: Sequence[float],
    max_value: float = 100.0,
    width: int = 40,
    unit: str = "%",
    title: str = "",
) -> str:
    """Horizontal ASCII bar chart (one bar per label)."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    label_width = max((len(l) for l in labels), default=0)
    lines = [title] if title else []
    for label, value in zip(labels, values):
        filled = 0
        if max_value > 0:
            filled = min(width, max(0, round(width * value / max_value)))
        bar = "#" * filled
        lines.append(f"{label.ljust(label_width)} |{bar.ljust(width)}| {value:6.1f}{unit}")
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)
