"""Analysis helpers: closed-form models and text rendering."""

from repro.analysis.potential import (
    HYPERVISOR_RATIOS,
    VM_COUNTS,
    figure2_series,
    potential_snoop_reduction,
)
from repro.analysis.tables import render_bars, render_table

__all__ = [
    "HYPERVISOR_RATIOS",
    "VM_COUNTS",
    "figure2_series",
    "potential_snoop_reduction",
    "render_bars",
    "render_table",
]
