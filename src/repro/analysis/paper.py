"""The paper's reported numbers, as structured constants.

Single source of truth for "what did the paper measure", used by the
calibration tests, the report generator, and EXPERIMENTS.md. Values are
transcribed from Kim, Kim & Huh, MICRO 2010.
"""

from __future__ import annotations

from typing import Dict, Tuple

# ----------------------------------------------------------------------
# Figure 1 — hypervisor + dom0 share of L2 misses (percent).
# The paper quotes exact values only for the outliers; the rest are
# described as "less than 5%".
# ----------------------------------------------------------------------
FIG1_HYP_DOM0_SHARE_PCT: Dict[str, float] = {
    "dedup": 11.0,
    "freqmine": 8.0,
    "raytrace": 7.0,
    "oltp": 15.0,
    "specweb": 19.0,
}
FIG1_DEFAULT_BOUND_PCT = 5.0

# ----------------------------------------------------------------------
# Table I — average VM relocation periods (milliseconds).
# ----------------------------------------------------------------------
TABLE1_RELOCATION_MS: Dict[str, Tuple[float, float]] = {
    # app: (undercommitted, overcommitted)
    "blackscholes": (2880.6, 91.3),
    "bodytrack": (26.1, 1.2),
    "canneal": (28.4, 3.4),
    "dedup": (10.8, 0.1),
    "facesim": (30.0, 1.2),
    "ferret": (375.9, 31.5),
    "fluidanimate": (46.6, 7.9),
    "freqmine": (1968.0, 2064.4),
    "raytrace": (528.8, 23.6),
    "streamcluster": (36.2, 1.3),
    "swaptions": (2203.1, 80.3),
    "vips": (18.3, 0.7),
    "x264": (29.2, 8.2),
}
TABLE1_AVERAGE_MS = (629.4, 178.1)

# ----------------------------------------------------------------------
# Table IV — network traffic reduction with ideally pinned VMs (percent).
# ----------------------------------------------------------------------
TABLE4_TRAFFIC_REDUCTION_PCT: Dict[str, float] = {
    "cholesky": 63.79,
    "fft": 63.20,
    "lu": 64.27,
    "ocean": 63.74,
    "radix": 63.39,
    "blackscholes": 64.22,
    "canneal": 63.35,
    "dedup": 64.97,
    "ferret": 63.05,
    "specjbb": 62.79,
}
TABLE4_AVERAGE_PCT = 63.68

# ----------------------------------------------------------------------
# Figure 6 — execution time reductions, ideally pinned (percent range).
# ----------------------------------------------------------------------
FIG6_RUNTIME_REDUCTION_RANGE_PCT = (0.2, 9.1)
FIG6_AVERAGE_REDUCTION_PCT = 3.8

# ----------------------------------------------------------------------
# Figures 7/8 — headline normalised-snoop claims (percent of TokenB).
# ----------------------------------------------------------------------
FIG7_IDEAL_PCT = 25.0
FIG8_BASE_AT_0_1MS_REDUCTION_PCT = 4.0  # base reduces only ~4%
FIG8_COUNTER_AT_0_1MS_REDUCTION_PCT = 45.0

# ----------------------------------------------------------------------
# Table V — content-shared page shares (percent).
# ----------------------------------------------------------------------
TABLE5_CONTENT_SHARES_PCT: Dict[str, Tuple[float, float]] = {
    # app: (L1 access %, L2 miss %)
    "cholesky": (1.45, 2.66),
    "fft": (5.43, 30.64),
    "lu": (0.43, 8.87),
    "ocean": (0.40, 0.83),
    "radix": (20.47, 0.96),
    "blackscholes": (46.16, 41.10),
    "canneal": (25.16, 51.49),
    "ferret": (3.64, 5.13),
    "specjbb": (9.48, 37.74),
}
TABLE5_AVERAGE_PCT = (12.51, 19.94)

# ----------------------------------------------------------------------
# Table VI — data-holder decomposition for content-shared misses (%).
# ----------------------------------------------------------------------
TABLE6_HOLDERS_PCT: Dict[str, Dict[str, float]] = {
    "fft": {"cache_all": 47.3, "intra": 0.1, "friend": 24.4, "memory": 52.7},
    "blackscholes": {"cache_all": 53.2, "intra": 6.9, "friend": 27.7, "memory": 46.8},
    "canneal": {"cache_all": 63.9, "intra": 26.9, "friend": 21.0, "memory": 37.1},
    "specjbb": {"cache_all": 54.3, "intra": 14.8, "friend": 21.5, "memory": 45.7},
}

# ----------------------------------------------------------------------
# Figure 2 — quoted potential reductions (percent).
# ----------------------------------------------------------------------
FIG2_IDEAL_16VMS_PCT = 93.75
FIG2_5PCT_HYP_16VMS_PCT = 89.1
FIG2_10PCT_HYP_16VMS_PCT = 84.4
