"""Address arithmetic for the simulated machine.

The simulator works with *host-physical* addresses. Two granularities
matter:

* **blocks** (cache lines, 64 B by default) — the unit of coherence, and
* **pages** (4 KiB by default) — the unit of VM memory allocation and of
  sharing-type classification (VM-private / RW-shared / RO-shared).

All helpers are free functions parameterised by an :class:`AddressLayout`
so non-default geometries can be tested, plus a module-level default
layout matching the paper's configuration (64 B blocks, 4 KiB pages).
"""

from __future__ import annotations

from dataclasses import dataclass

DEFAULT_BLOCK_SIZE = 64
DEFAULT_PAGE_SIZE = 4096


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class AddressLayout:
    """Geometry of the physical address space.

    Attributes:
        block_size: cache-line size in bytes (power of two).
        page_size: page size in bytes (power of two, multiple of block size).
    """

    block_size: int = DEFAULT_BLOCK_SIZE
    page_size: int = DEFAULT_PAGE_SIZE

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.block_size):
            raise ValueError(f"block_size must be a power of two, got {self.block_size}")
        if not _is_power_of_two(self.page_size):
            raise ValueError(f"page_size must be a power of two, got {self.page_size}")
        if self.page_size % self.block_size != 0:
            raise ValueError(
                f"page_size ({self.page_size}) must be a multiple of "
                f"block_size ({self.block_size})"
            )

    @property
    def block_bits(self) -> int:
        """Number of byte-offset bits within a block."""
        return self.block_size.bit_length() - 1

    @property
    def page_bits(self) -> int:
        """Number of byte-offset bits within a page."""
        return self.page_size.bit_length() - 1

    @property
    def blocks_per_page(self) -> int:
        return self.page_size // self.block_size

    def block_of(self, addr: int) -> int:
        """Block number containing byte address ``addr``."""
        return addr >> self.block_bits

    def page_of(self, addr: int) -> int:
        """Page number containing byte address ``addr``."""
        return addr >> self.page_bits

    def page_of_block(self, block: int) -> int:
        """Page number containing block number ``block``."""
        return block >> (self.page_bits - self.block_bits)

    def block_in_page(self, page: int, block_index: int) -> int:
        """Block number of the ``block_index``-th block of ``page``."""
        if not 0 <= block_index < self.blocks_per_page:
            raise ValueError(
                f"block_index {block_index} out of range for "
                f"{self.blocks_per_page} blocks per page"
            )
        return (page << (self.page_bits - self.block_bits)) | block_index

    def block_index_in_page(self, block: int) -> int:
        """Index of block number ``block`` within its page."""
        return block & (self.blocks_per_page - 1)

    def addr_of_block(self, block: int) -> int:
        """First byte address of block number ``block``."""
        return block << self.block_bits

    def addr_of_page(self, page: int) -> int:
        """First byte address of page number ``page``."""
        return page << self.page_bits


DEFAULT_LAYOUT = AddressLayout()
