"""Page sharing types.

Virtual snooping classifies every host-physical page into one of three
types (Section IV-A), recorded in two unused page-table-entry bits and
cached in the TLB:

* ``VM_PRIVATE`` — used by exactly one VM; snoops multicast to the VM's
  vCPU map.
* ``RW_SHARED`` — shared read-write with the hypervisor, dom0, or another
  VM via an inter-VM communication channel; snoops must broadcast.
* ``RO_SHARED`` — content-based shared page, guaranteed read-only with
  a clean copy in memory; eligible for the Section VI optimisations.
"""

from __future__ import annotations

from enum import Enum


class PageType(Enum):
    VM_PRIVATE = "vm_private"
    RW_SHARED = "rw_shared"
    RO_SHARED = "ro_shared"

    # Members are singletons compared by identity, so the identity hash is
    # equivalent to Enum's value hash — but resolves in C instead of Python,
    # which matters for the per-access stats dicts keyed by page type.
    __hash__ = object.__hash__

    @property
    def broadcast_required(self) -> bool:
        """Whether correctness demands a full broadcast for this type
        under base virtual snooping (before Section VI optimisations)."""
        return self is PageType.RW_SHARED
