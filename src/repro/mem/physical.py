"""Host-physical memory allocator.

The hypervisor substrate allocates host-physical pages from this pool when
it builds guest-physical to host-physical mappings, when it breaks a
content-shared page with copy-on-write, and when dom0 or the hypervisor
itself needs private pages.

The allocator hands out page *numbers*, never raw byte addresses; callers
convert with :class:`repro.mem.address.AddressLayout` when they need block
or byte addresses.
"""

from __future__ import annotations

from typing import List, Set


class OutOfMemoryError(RuntimeError):
    """Raised when the host page pool is exhausted."""


class HostMemory:
    """A fixed-size pool of host-physical pages.

    Pages are identified by integer page numbers ``0 .. num_pages - 1``.
    Freed pages are recycled in LIFO order, which keeps page numbers dense
    and reproducible for a given allocation sequence.
    """

    def __init__(self, num_pages: int) -> None:
        if num_pages <= 0:
            raise ValueError(f"num_pages must be positive, got {num_pages}")
        self._num_pages = num_pages
        self._next_fresh = 0
        self._free_list: List[int] = []
        self._allocated: Set[int] = set()

    @property
    def num_pages(self) -> int:
        return self._num_pages

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    @property
    def free_count(self) -> int:
        return self._num_pages - len(self._allocated)

    def allocate(self) -> int:
        """Allocate one page and return its page number."""
        if self._free_list:
            page = self._free_list.pop()
        elif self._next_fresh < self._num_pages:
            page = self._next_fresh
            self._next_fresh += 1
        else:
            raise OutOfMemoryError(
                f"host memory exhausted ({self._num_pages} pages in use)"
            )
        self._allocated.add(page)
        return page

    def allocate_many(self, count: int) -> List[int]:
        """Allocate ``count`` pages; all-or-nothing."""
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if count > self.free_count:
            raise OutOfMemoryError(
                f"requested {count} pages but only {self.free_count} free"
            )
        return [self.allocate() for _ in range(count)]

    def free(self, page: int) -> None:
        """Return ``page`` to the pool."""
        if page not in self._allocated:
            raise ValueError(f"page {page} is not allocated")
        self._allocated.remove(page)
        self._free_list.append(page)

    def is_allocated(self, page: int) -> bool:
        return page in self._allocated
