"""External memory controller model.

In token coherence, memory both supplies data when no on-chip owner exists
and absorbs tokens written back on eviction. The paper's evaluation only
needs a latency and a traffic endpoint for memory, so the model here is a
fixed-latency controller attached to one mesh node, with counters for the
three kinds of traffic it sees:

* ``data_reads`` — misses served from memory (no on-chip owner, or a
  content-shared read routed memory-direct),
* ``writebacks`` — dirty evictions,
* ``token_returns`` — clean evictions returning only tokens.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class MemoryController:
    """Fixed-latency memory controller attached to a mesh node.

    Attributes:
        latency: cycles from request arrival to data availability.
        node: mesh node index the controller is attached to.
    """

    latency: int = 80
    node: int = 0
    data_reads: int = field(default=0, init=False)
    writebacks: int = field(default=0, init=False)
    token_returns: int = field(default=0, init=False)

    def read(self) -> int:
        """Serve a data read; returns the access latency in cycles."""
        self.data_reads += 1
        return self.latency

    def writeback(self) -> None:
        """Absorb a dirty-line writeback."""
        self.writebacks += 1

    def return_tokens(self) -> None:
        """Absorb a clean eviction that only returns tokens."""
        self.token_returns += 1

    @property
    def total_accesses(self) -> int:
        return self.data_reads + self.writebacks + self.token_returns

    def reset(self) -> None:
        self.data_reads = 0
        self.writebacks = 0
        self.token_returns = 0
