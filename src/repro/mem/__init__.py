"""Memory substrate: address arithmetic, host page pool, memory controller."""

from repro.mem.address import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_LAYOUT,
    DEFAULT_PAGE_SIZE,
    AddressLayout,
)
from repro.mem.controller import MemoryController
from repro.mem.physical import HostMemory, OutOfMemoryError

__all__ = [
    "AddressLayout",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_LAYOUT",
    "DEFAULT_PAGE_SIZE",
    "HostMemory",
    "MemoryController",
    "OutOfMemoryError",
]
