"""Content-based page sharing service.

Commercial hypervisors (VMware ESX, Xen with Satori, Difference Engine)
hash page contents in the background and collapse identical pages onto a
single read-only host page. The paper evaluates an *ideal* scanner —
"sharing detection ... more aggressive than what commercial hypervisors
can do" — so this service also finds every identical pair immediately.

Page contents are abstracted as integer *content labels* supplied by the
workload model: two pages share content iff they carry the same label.
This is exactly the information a hash-based scanner extracts, without
simulating page bytes.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.hypervisor.memory import MemoryManager


class ContentSharingService:
    """Ideal content-based sharing scanner over labelled guest pages."""

    def __init__(self, memory: MemoryManager) -> None:
        self.memory = memory
        # (vm_id, guest_page) -> content label
        self._labels: Dict[Tuple[int, int], int] = {}
        self.scans = 0
        self.pages_merged = 0

    def register_content(self, vm_id: int, guest_page: int, label: int) -> None:
        """Declare the content label of one guest page."""
        self._labels[(vm_id, guest_page)] = label

    def register_many(
        self, vm_id: int, pages_and_labels: Iterable[Tuple[int, int]]
    ) -> None:
        for guest_page, label in pages_and_labels:
            self.register_content(vm_id, guest_page, label)

    def invalidate_content(self, vm_id: int, guest_page: int) -> None:
        """Forget a page's label (its content diverged, e.g. after COW)."""
        self._labels.pop((vm_id, guest_page), None)

    def scan(self) -> List[int]:
        """Find all groups of identical pages across VMs and share them.

        Returns the host pages that became (or already were) RO-shared
        as a result of this scan. Pages identical *within* one VM are not
        merged across that VM's own mappings twice — the grouping is by
        label, and every mapping with the label joins one shared page.
        """
        self.scans += 1
        groups: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
        for (vm_id, guest_page), label in self._labels.items():
            groups[label].append((vm_id, guest_page))
        shared_pages: List[int] = []
        for label in sorted(groups):
            mappings = sorted(groups[label])
            distinct_vms = {vm_id for vm_id, _ in mappings}
            if len(distinct_vms) < 2:
                continue  # paper shares across VMs; skip single-VM duplicates
            host_page = self.memory.share_content(mappings)
            self.pages_merged += len(mappings) - 1
            shared_pages.append(host_page)
        return shared_pages

    def handle_write_fault(self, vm_id: int, guest_page: int) -> int:
        """Copy-on-write: called when a VM stores to an RO-shared page.

        Returns the fresh private host page. The page's content label is
        dropped — its content has diverged.
        """
        new_host = self.memory.copy_on_write(vm_id, guest_page)
        self.invalidate_content(vm_id, guest_page)
        return new_host
