"""Guest-physical to host-physical memory management with sharing types.

The hypervisor owns the guest-physical → host-physical mapping (nested /
shadow page tables). Virtual snooping stores each page's sharing type in
two unused PTE bits; this module models the mapping, the type bits, and
the two transitions that matter to the protocol:

* **content sharing** — N guest pages with identical content collapse to
  one host page marked ``RO_SHARED`` (memory flushed clean first), and
* **copy-on-write** — a store to an RO-shared page allocates a fresh
  private host page for the writing VM.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.mem.pagetype import PageType
from repro.mem.physical import HostMemory


@dataclass(slots=True)
class HostPageInfo:
    """Hypervisor-side record for one allocated host page."""

    page_type: PageType
    owner_vm: Optional[int]  # None for hypervisor-owned or multi-VM pages
    sharer_vms: Set[int]


class TranslationFault(KeyError):
    """Guest page has no mapping (would be a hypervisor page fault)."""


class MemoryManager:
    """Per-VM page tables plus host-page type tracking."""

    def __init__(self, host: HostMemory) -> None:
        self.host = host
        # vm_id -> {guest_page -> host_page}
        self._tables: Dict[int, Dict[int, int]] = {}
        self._host_info: Dict[int, HostPageInfo] = {}
        self.cow_faults = 0
        self.shared_pages_created = 0
        # Called with each host page returned to the allocator; the
        # coherence bridge uses it to flush stale cached copies before
        # the page can be recycled to another VM.
        self.page_free_hook: Optional[Callable[[int], None]] = None
        # Fired whenever an *existing* translation (mapping or page type)
        # changes; the engine registers its translation-memo clear here.
        # Pure additions (lazy map_page) need no notification: a memo can
        # only hold entries for pages that have already been translated.
        self.translation_change_hook: Optional[Callable[[], None]] = None

    def _translations_changed(self) -> None:
        hook = self.translation_change_hook
        if hook is not None:
            hook()

    def _free_host_page(self, host_page: int) -> None:
        del self._host_info[host_page]
        self.host.free(host_page)
        self._translations_changed()
        if self.page_free_hook is not None:
            self.page_free_hook(host_page)

    def create_address_space(self, vm_id: int) -> None:
        if vm_id in self._tables:
            raise ValueError(f"address space for VM {vm_id} already exists")
        self._tables[vm_id] = {}

    def has_address_space(self, vm_id: int) -> bool:
        return vm_id in self._tables

    # ------------------------------------------------------------------
    # Mapping and translation.
    # ------------------------------------------------------------------

    def map_page(
        self,
        vm_id: int,
        guest_page: int,
        page_type: PageType = PageType.VM_PRIVATE,
    ) -> int:
        """Allocate a host page for ``guest_page`` and install the mapping."""
        table = self._table(vm_id)
        if guest_page in table:
            raise ValueError(
                f"guest page {guest_page} of VM {vm_id} is already mapped"
            )
        host_page = self.host.allocate()
        table[guest_page] = host_page
        self._host_info[host_page] = HostPageInfo(
            page_type=page_type, owner_vm=vm_id, sharer_vms={vm_id}
        )
        return host_page

    def translate(self, vm_id: int, guest_page: int) -> Tuple[int, PageType]:
        """Guest page → (host page, sharing type); lazily maps on first touch.

        Lazy mapping mirrors demand paging: the first access by a VM to a
        guest page allocates its host page as VM-private. This is the
        simulator's per-access hot path, so the table lookup is inlined
        rather than routed through :meth:`_table`.
        """
        table = self._tables.get(vm_id)
        if table is None:
            raise TranslationFault(f"VM {vm_id} has no address space")
        host_page = table.get(guest_page)
        if host_page is None:
            host_page = self.map_page(vm_id, guest_page)
        return host_page, self._host_info[host_page].page_type

    def page_type_of(self, host_page: int) -> PageType:
        return self._info(host_page).page_type

    def owner_of(self, host_page: int) -> Optional[int]:
        return self._info(host_page).owner_vm

    def sharers_of(self, host_page: int) -> Set[int]:
        return set(self._info(host_page).sharer_vms)

    # ------------------------------------------------------------------
    # Sharing-type transitions.
    # ------------------------------------------------------------------

    def mark_rw_shared(self, vm_id: int, guest_page: int) -> int:
        """Mark a page RW-shared (hypervisor / inter-VM channel page)."""
        host_page, _ = self.translate(vm_id, guest_page)
        info = self._info(host_page)
        info.page_type = PageType.RW_SHARED
        info.owner_vm = None
        self._translations_changed()
        return host_page

    def share_content(self, mappings: List[Tuple[int, int]]) -> int:
        """Collapse identical pages onto one RO-shared host page.

        ``mappings`` lists (vm_id, guest_page) pairs whose contents were
        found identical by the content-sharing scan. The first pair's
        host page becomes the shared page; the others' host pages are
        freed and their page tables are re-pointed. Returns the shared
        host page. The caller is responsible for flushing dirty cached
        blocks of all affected host pages (see
        ``Hypervisor.share_identical_pages``).
        """
        if len(mappings) < 2:
            raise ValueError("content sharing needs at least two mappings")
        canonical_vm, canonical_guest = mappings[0]
        shared_host, _ = self.translate(canonical_vm, canonical_guest)
        info = self._info(shared_host)
        info.page_type = PageType.RO_SHARED
        info.owner_vm = None
        info.sharer_vms = {canonical_vm}
        for vm_id, guest_page in mappings[1:]:
            table = self._table(vm_id)
            old_host = table.get(guest_page)
            if old_host is not None and old_host != shared_host:
                self._free_host_page(old_host)
            table[guest_page] = shared_host
            info.sharer_vms.add(vm_id)
        self.shared_pages_created += 1
        self._translations_changed()
        return shared_host

    def copy_on_write(self, vm_id: int, guest_page: int) -> int:
        """Break RO sharing on a store: give ``vm_id`` a private copy.

        Returns the new private host page. If this VM was the last sharer
        the old host page is freed.
        """
        table = self._table(vm_id)
        old_host = table.get(guest_page)
        if old_host is None:
            raise TranslationFault(f"VM {vm_id} guest page {guest_page} unmapped")
        info = self._info(old_host)
        if info.page_type is not PageType.RO_SHARED:
            raise ValueError(
                f"copy_on_write on non-RO-shared page {old_host} "
                f"({info.page_type})"
            )
        new_host = self.host.allocate()
        table[guest_page] = new_host
        self._host_info[new_host] = HostPageInfo(
            page_type=PageType.VM_PRIVATE, owner_vm=vm_id, sharer_vms={vm_id}
        )
        info.sharer_vms.discard(vm_id)
        if not info.sharer_vms:
            self._free_host_page(old_host)
        self.cow_faults += 1
        self._translations_changed()
        return new_host

    def iter_shared_pages(self):
        """Yield (host_page, frozenset(sharer_vms)) for RO-shared pages."""
        for host_page, info in self._host_info.items():
            if info.page_type is PageType.RO_SHARED:
                yield host_page, frozenset(info.sharer_vms)

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _table(self, vm_id: int) -> Dict[int, int]:
        table = self._tables.get(vm_id)
        if table is None:
            raise TranslationFault(f"VM {vm_id} has no address space")
        return table

    def _info(self, host_page: int) -> HostPageInfo:
        info = self._host_info.get(host_page)
        if info is None:
            raise TranslationFault(f"host page {host_page} is not tracked")
        return info
