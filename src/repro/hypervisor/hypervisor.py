"""The hypervisor facade used by the coherence simulation.

Owns the VMs, the guest→host memory manager, the content-sharing
service, and the vCPU→core placement. Architectural components (the
virtual-snooping filter, the simulation engine) subscribe as listeners
rather than being imported, keeping the substrate free of dependencies
on the contribution it hosts:

* ``on_vcpu_placed(vm_id, core)`` — a vCPU was scheduled onto a core
  (initial placement or migration); the filter grows the VM's vCPU map.
* ``on_vcpu_displaced(vm_id, core)`` — a vCPU left a core (the core stays
  in the vCPU map until its residence counter clears it).
* ``on_page_shared(host_page)`` — a page became RO-shared; cached dirty
  blocks must be flushed so memory is clean.
* ``on_cow(vm_id, old_host_page, new_host_page)`` — a store broke RO
  sharing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.hypervisor.content import ContentSharingService
from repro.hypervisor.memory import MemoryManager
from repro.hypervisor.vm import FIRST_GUEST_VM_ID, VCpu, VirtualMachine
from repro.mem.pagetype import PageType
from repro.mem.physical import HostMemory


class PlacementListener:
    """Callback interface for vCPU placement and page-type events."""

    def on_vcpu_placed(self, vm_id: int, core: int) -> None:
        """A vCPU of ``vm_id`` starts running on ``core``."""

    def on_vcpu_displaced(self, vm_id: int, core: int) -> None:
        """A vCPU of ``vm_id`` stops running on ``core``."""

    def on_page_shared(self, host_page: int) -> None:
        """``host_page`` became content-shared (RO)."""

    def on_cow(self, vm_id: int, old_host_page: int, new_host_page: int) -> None:
        """A store by ``vm_id`` broke RO sharing of ``old_host_page``."""


class RelocationEvent:
    """One vCPU-to-core mapping change, for relocation statistics."""

    __slots__ = ("cycle", "vm_id", "vcpu_index", "old_core", "new_core")

    def __init__(
        self, cycle: int, vm_id: int, vcpu_index: int, old_core: Optional[int], new_core: int
    ) -> None:
        self.cycle = cycle
        self.vm_id = vm_id
        self.vcpu_index = vcpu_index
        self.old_core = old_core
        self.new_core = new_core

    def __repr__(self) -> str:
        return (
            f"RelocationEvent(cycle={self.cycle}, vm={self.vm_id}, "
            f"vcpu={self.vcpu_index}, {self.old_core}->{self.new_core})"
        )


class Hypervisor:
    """Bookkeeping hypervisor for the trace-driven coherence simulation."""

    def __init__(self, num_cores: int, host_pages: int = 1 << 20) -> None:
        self.num_cores = num_cores
        self.host = HostMemory(host_pages)
        self.memory = MemoryManager(self.host)
        self.content = ContentSharingService(self.memory)
        self.vms: Dict[int, VirtualMachine] = {}
        self._core_occupant: List[Optional[VCpu]] = [None] * num_cores
        self._listeners: List[PlacementListener] = []
        self.relocations: List[RelocationEvent] = []
        # Observability tap: called with each RelocationEvent as it is
        # recorded (initial placements included, old_core=None there).
        self.relocation_hook: Optional[Callable[[RelocationEvent], None]] = None
        self._next_vm_id = FIRST_GUEST_VM_ID

    # ------------------------------------------------------------------
    # VM lifecycle.
    # ------------------------------------------------------------------

    def create_vm(self, num_vcpus: int, name: str = "") -> VirtualMachine:
        vm = VirtualMachine(self._next_vm_id, num_vcpus, name)
        self._next_vm_id += 1
        self.vms[vm.vm_id] = vm
        self.memory.create_address_space(vm.vm_id)
        return vm

    def add_listener(self, listener: PlacementListener) -> None:
        self._listeners.append(listener)

    # ------------------------------------------------------------------
    # vCPU placement.
    # ------------------------------------------------------------------

    def occupant_of(self, core: int) -> Optional[VCpu]:
        return self._core_occupant[core]

    def place_vcpu(self, vcpu: VCpu, core: int, cycle: int = 0) -> None:
        """Schedule ``vcpu`` onto ``core`` (which must be free)."""
        if self._core_occupant[core] is not None:
            raise ValueError(
                f"core {core} already runs {self._core_occupant[core].global_name}"
            )
        old_core = vcpu.core
        if old_core is not None:
            self._core_occupant[old_core] = None
            for listener in self._listeners:
                listener.on_vcpu_displaced(vcpu.vm_id, old_core)
        vcpu.core = core
        self._core_occupant[core] = vcpu
        event = RelocationEvent(cycle, vcpu.vm_id, vcpu.index, old_core, core)
        self.relocations.append(event)
        if self.relocation_hook is not None:
            self.relocation_hook(event)
        for listener in self._listeners:
            listener.on_vcpu_placed(vcpu.vm_id, core)

    def swap_vcpus(self, a: VCpu, b: VCpu, cycle: int = 0) -> None:
        """Exchange the physical cores of two vCPUs (the paper's migration
        approximation: 'two vCPUs from different VMs are randomly selected
        and their physical cores are exchanged')."""
        core_a, core_b = a.core, b.core
        if core_a is None or core_b is None:
            raise ValueError("both vCPUs must be running to swap")
        self._core_occupant[core_a] = None
        self._core_occupant[core_b] = None
        for listener in self._listeners:
            listener.on_vcpu_displaced(a.vm_id, core_a)
            listener.on_vcpu_displaced(b.vm_id, core_b)
        a.core, b.core = core_b, core_a
        self._core_occupant[core_b] = a
        self._core_occupant[core_a] = b
        events = (
            RelocationEvent(cycle, a.vm_id, a.index, core_a, core_b),
            RelocationEvent(cycle, b.vm_id, b.index, core_b, core_a),
        )
        self.relocations.extend(events)
        if self.relocation_hook is not None:
            for event in events:
                self.relocation_hook(event)
        for listener in self._listeners:
            listener.on_vcpu_placed(a.vm_id, core_b)
            listener.on_vcpu_placed(b.vm_id, core_a)

    # ------------------------------------------------------------------
    # Memory: translation, content sharing, COW.
    # ------------------------------------------------------------------

    def translate(self, vm_id: int, guest_page: int) -> Tuple[int, PageType]:
        return self.memory.translate(vm_id, guest_page)

    def share_identical_pages(self) -> List[int]:
        """Run the content-sharing scan; notify listeners per shared page."""
        shared = self.content.scan()
        for host_page in shared:
            for listener in self._listeners:
                listener.on_page_shared(host_page)
        return shared

    def write_to_page(self, vm_id: int, guest_page: int) -> Tuple[int, PageType]:
        """Resolve a store: transparently applies copy-on-write.

        Returns the (host page, type) the store should proceed against.
        """
        host_page, page_type = self.memory.translate(vm_id, guest_page)
        if page_type is PageType.RO_SHARED:
            new_host = self.content.handle_write_fault(vm_id, guest_page)
            for listener in self._listeners:
                listener.on_cow(vm_id, host_page, new_host)
            return new_host, PageType.VM_PRIVATE
        return host_page, page_type
