"""Hypervisor substrate: VMs, placement, memory mapping, content sharing."""

from repro.hypervisor.content import ContentSharingService
from repro.hypervisor.hypervisor import Hypervisor, PlacementListener, RelocationEvent
from repro.hypervisor.memory import MemoryManager, TranslationFault
from repro.hypervisor.vm import DOM0_VM_ID, FIRST_GUEST_VM_ID, VCpu, VirtualMachine

__all__ = [
    "ContentSharingService",
    "DOM0_VM_ID",
    "FIRST_GUEST_VM_ID",
    "Hypervisor",
    "MemoryManager",
    "PlacementListener",
    "RelocationEvent",
    "TranslationFault",
    "VCpu",
    "VirtualMachine",
]
