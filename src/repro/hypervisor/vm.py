"""Virtual machines and virtual CPUs.

A :class:`VirtualMachine` owns a set of :class:`VCpu` objects. The
hypervisor schedules vCPUs onto physical cores; in the cache-coherence
simulation the mapping is one-to-one (16 vCPUs on 16 cores, as in the
paper's Section V), while the scheduler study (Section III) multiplexes
them.
"""

from __future__ import annotations

from typing import List, Optional

DOM0_VM_ID = 0
"""Conventional VM id for the privileged I/O domain (domain0 in Xen)."""

FIRST_GUEST_VM_ID = 1


class VCpu:
    """One virtual CPU of a VM."""

    __slots__ = ("vm_id", "index", "core")

    def __init__(self, vm_id: int, index: int) -> None:
        self.vm_id = vm_id
        self.index = index
        self.core: Optional[int] = None  # physical core, None when descheduled

    @property
    def global_name(self) -> str:
        return f"vm{self.vm_id}.vcpu{self.index}"

    def __repr__(self) -> str:
        return f"VCpu({self.global_name}, core={self.core})"


class VirtualMachine:
    """A guest VM: an id, a name, and its vCPUs."""

    def __init__(self, vm_id: int, num_vcpus: int, name: str = "") -> None:
        if num_vcpus <= 0:
            raise ValueError(f"num_vcpus must be positive, got {num_vcpus}")
        self.vm_id = vm_id
        self.name = name or f"vm{vm_id}"
        self.vcpus: List[VCpu] = [VCpu(vm_id, i) for i in range(num_vcpus)]

    @property
    def num_vcpus(self) -> int:
        return len(self.vcpus)

    def cores_in_use(self) -> List[int]:
        """Physical cores its vCPUs currently occupy."""
        return [v.core for v in self.vcpus if v.core is not None]

    def __repr__(self) -> str:
        return f"VirtualMachine({self.name}, vcpus={self.num_vcpus})"
