"""Credit-scheduler simulation — the Section III study.

Models the Xen scheduling behaviour the paper measures on real hardware:
a proportional-share scheduler with a 30 ms time slice, per-core run
queues, and global load balancing ("when all the vCPUs on a physical
core have exhausted their time slices, the scheduler actively steals a
waiting vCPU ... from another busy core"), versus one-to-one pinning.

Guest vCPU behaviour is profile-driven and *barrier-synchronised*: the
vCPUs of a VM run exponential CPU bursts (mean ``run_burst_ms``), meet at
a barrier, block briefly (mean ``block_ms``), and start the next round.
Barriers are what make scheduling policy matter: under one-to-one
pinning on an overcommitted host a VM's round lasts as long as its
slowest vCPU's core queue, while work-conserving migration fills idle
cores (Figure 3(b)); on an undercommitted host pinning wins because
migrated vCPUs pay a cold-cache warm-up penalty (Figure 3(a)).

dom0 wake-ups model I/O: a woken dom0 vCPU gets Xen's BOOST-style
priority, preempting a guest, whose displacement is what produces
relocation churn even on an undercommitted host (Table I).

Discrete time, fixed tick (default 0.25 ms).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.workloads.profiles import AppProfile

RUNNABLE = "runnable"
RUNNING = "running"
BLOCKED = "blocked"
BARRIER = "barrier"
DONE = "done"


@dataclass
class SchedulerConfig:
    """Host and policy configuration for one scheduler simulation."""

    num_cores: int = 8
    policy: str = "credit"  # "credit", "pinned", or "clustered"
    time_slice_ms: float = 30.0
    tick_ms: float = 0.25
    dom0_vcpus: int = 4
    dom0_service_ms: float = 0.3
    cluster_factor: float = 1.5
    seed: int = 1
    max_ms: float = 600_000.0

    def __post_init__(self) -> None:
        if self.policy not in ("credit", "pinned", "clustered"):
            raise ValueError(f"unknown policy {self.policy!r}")
        if self.num_cores <= 0 or self.tick_ms <= 0:
            raise ValueError("num_cores and tick_ms must be positive")
        if self.cluster_factor < 1.0:
            raise ValueError("cluster_factor must be >= 1.0")


class SchedVcpu:
    """Scheduler-side state of one vCPU."""

    __slots__ = (
        "vm_id", "index", "is_dom0", "profile", "state", "remaining_work",
        "burst_left", "wake_at", "slice_left", "warmup_left", "last_core",
        "migrations", "home_core", "credits", "allowed_cores",
    )

    def __init__(self, vm_id: int, index: int, profile: AppProfile, is_dom0: bool = False):
        self.vm_id = vm_id
        self.index = index
        self.is_dom0 = is_dom0
        self.profile = profile
        self.state = RUNNABLE
        self.remaining_work = float("inf") if is_dom0 else profile.work_ms_per_vcpu
        self.burst_left = 0.0
        self.wake_at = 0.0
        self.slice_left = 0.0
        self.warmup_left = 0.0
        self.last_core: Optional[int] = None
        self.migrations = 0
        self.home_core: Optional[int] = None  # pinned placement
        self.credits = 30.0  # ms of CPU entitlement (UNDER while positive)
        self.allowed_cores: Optional[frozenset] = None  # clustered policy

    @property
    def is_under(self) -> bool:
        """Xen credit priority: UNDER (has credits) beats OVER."""
        return self.credits > 0.0

    def __repr__(self) -> str:
        kind = "dom0" if self.is_dom0 else "guest"
        return f"SchedVcpu({kind} vm{self.vm_id}.{self.index}, {self.state})"


@dataclass
class SchedulerResult:
    """Outcome of one scheduler simulation."""

    wall_ms: float
    vm_finish_ms: Dict[int, float]
    guest_migrations: int
    guest_vcpus: int
    dom0_wakes: int

    @property
    def relocation_period_ms(self) -> float:
        """Average time between core changes, per vCPU (Table I)."""
        if self.guest_migrations == 0:
            return float("inf")
        return self.wall_ms * self.guest_vcpus / self.guest_migrations


class CreditSchedulerSim:
    """Simulates barrier-synchronised guest VMs plus dom0 on a host."""

    def __init__(
        self,
        config: SchedulerConfig,
        profile: AppProfile,
        num_vms: int,
        vcpus_per_vm: int = 4,
    ) -> None:
        self.config = config
        self.profile = profile
        # Seed excludes the policy so both policies see identical burst /
        # block / wake sequences — differences are pure scheduling.
        self.rng = random.Random(f"sched/{config.seed}/{profile.name}")
        self.vcpus: List[SchedVcpu] = []
        for vm in range(1, num_vms + 1):
            for index in range(vcpus_per_vm):
                vcpu = SchedVcpu(vm, index, profile)
                vcpu.burst_left = self._sample_burst()
                self.vcpus.append(vcpu)
        self.dom0: List[SchedVcpu] = [
            SchedVcpu(0, i, profile, is_dom0=True) for i in range(config.dom0_vcpus)
        ]
        for vcpu in self.dom0:
            vcpu.state = BLOCKED
            vcpu.wake_at = float("inf")
        self.num_vms = num_vms
        self.vcpus_per_vm = vcpus_per_vm
        self.dom0_wakes = 0
        self._queues: List[Deque[SchedVcpu]] = [deque() for _ in range(config.num_cores)]
        self._assign_initial_placement()

    def _assign_initial_placement(self) -> None:
        cores = self.config.num_cores
        for i, vcpu in enumerate(self.vcpus):
            vcpu.home_core = i % cores
            vcpu.last_core = i % cores
            self._queues[i % cores].append(vcpu)
        for i, vcpu in enumerate(self.dom0):
            vcpu.home_core = i % cores
            vcpu.last_core = i % cores
        if self.config.policy == "clustered":
            # Each VM may run only on a contiguous window of cores, sized
            # cluster_factor x its vCPU count — the paper's future-work
            # middle ground: bounded snoop domains, some load balancing.
            window = min(
                cores, max(1, round(self.vcpus_per_vm * self.config.cluster_factor))
            )
            for vcpu in self.vcpus:
                start = (vcpu.vm_id - 1) * self.vcpus_per_vm % cores
                vcpu.allowed_cores = frozenset(
                    (start + offset) % cores for offset in range(window)
                )

    # ------------------------------------------------------------------
    # Behaviour sampling.
    # ------------------------------------------------------------------

    def _sample_burst(self) -> float:
        return self.rng.expovariate(1.0 / self.profile.run_burst_ms)

    def _sample_block(self) -> float:
        return self.rng.expovariate(1.0 / self.profile.block_ms)

    def _dom0_wake_interval(self) -> float:
        rate_per_ms = self.profile.io_wakes_per_sec * self.num_vms / 1000.0
        if rate_per_ms <= 0:
            return float("inf")
        return self.rng.expovariate(rate_per_ms)

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(self) -> SchedulerResult:
        cfg = self.config
        tick = cfg.tick_ms
        now = 0.0
        running: List[Optional[SchedVcpu]] = [None] * cfg.num_cores
        vm_finish: Dict[int, float] = {}
        next_dom0_wake = self._dom0_wake_interval()
        next_accounting = cfg.time_slice_ms
        while now < cfg.max_ms:
            # 0. Credit accounting: replenish fair shares each period.
            if now >= next_accounting:
                next_accounting += cfg.time_slice_ms
                active = [v for v in self.vcpus if v.state != DONE]
                if active:
                    fair = cfg.time_slice_ms * cfg.num_cores / len(active)
                    cap = 1.25 * fair + cfg.time_slice_ms
                    for vcpu in active:
                        vcpu.credits = min(vcpu.credits + 1.25 * fair, cap)
            # 1. Wake blocked guests whose block time elapsed.
            for vcpu in self.vcpus:
                if vcpu.state == BLOCKED and vcpu.wake_at <= now:
                    vcpu.state = RUNNABLE
                    vcpu.burst_left = self._sample_burst()
                    self._enqueue(vcpu)
            # 2. dom0 I/O wake-ups (BOOST: preempt a guest).
            while next_dom0_wake <= now:
                next_dom0_wake += self._dom0_wake_interval()
                self.dom0_wakes += 1
                sleeper = next((d for d in self.dom0 if d.state == BLOCKED), None)
                if sleeper is not None:
                    sleeper.state = RUNNABLE
                    sleeper.burst_left = cfg.dom0_service_ms
                    self._boost_preempt(sleeper, running)
            # 3. Fill idle cores; preempt OVER-priority guests when an
            # UNDER-priority vCPU is waiting (Xen's credit semantics —
            # this rotation is the overcommitted-host migration churn).
            self._fill_cores(running)
            # 4. Account a tick of work.
            for core in range(cfg.num_cores):
                vcpu = running[core]
                if vcpu is None:
                    continue
                self._account(vcpu, tick, now)
                if vcpu.state != RUNNING:
                    running[core] = None
                    if vcpu.state == RUNNABLE:
                        self._enqueue(vcpu)  # slice expired
                    continue
                if not vcpu.is_dom0 and vcpu.remaining_work <= 0:
                    vcpu.state = DONE
                    running[core] = None
                    self._barrier_check(vcpu.vm_id, now)
                    if all(v.state == DONE for v in self.vcpus if v.vm_id == vcpu.vm_id):
                        vm_finish.setdefault(vcpu.vm_id, now)
            now += tick
            if all(v.state == DONE for v in self.vcpus):
                break
        migrations = sum(v.migrations for v in self.vcpus)
        return SchedulerResult(
            wall_ms=now,
            vm_finish_ms=vm_finish,
            guest_migrations=migrations,
            guest_vcpus=len(self.vcpus),
            dom0_wakes=self.dom0_wakes,
        )

    # ------------------------------------------------------------------
    # Queues, dispatch, preemption.
    # ------------------------------------------------------------------

    def _fill_cores(self, running: List[Optional[SchedVcpu]]) -> None:
        """One scheduling pass: fill idle cores, rotate OVER for UNDER."""
        cfg = self.config
        under_waiting = any(
            v.state == RUNNABLE and v.is_under for v in self.vcpus
        )
        for core in range(cfg.num_cores):
            current = running[core]
            if current is not None and current.state == RUNNING:
                preemptable = (
                    under_waiting
                    and not current.is_dom0
                    and not current.is_under
                )
                if not preemptable:
                    continue
                current.state = RUNNABLE
                self._enqueue(current)
                running[core] = None
            replacement = self._dispatch(core)
            running[core] = replacement
            # Any dispatch may have consumed the last waiting UNDER vCPU
            # (an UNDER dispatch does so directly), and a stale True here
            # would spuriously preempt later cores' OVER guests. Once
            # False it stays False: this pass only ever re-queues OVER
            # vCPUs, so skip the rescan then.
            if replacement is not None and under_waiting:
                under_waiting = any(
                    v.state == RUNNABLE and v.is_under for v in self.vcpus
                )

    def _enqueue(self, vcpu: SchedVcpu) -> None:
        core = vcpu.home_core if self.config.policy == "pinned" else vcpu.last_core
        self._queues[core if core is not None else 0].append(vcpu)

    @staticmethod
    def _allowed(vcpu: SchedVcpu, core: int) -> bool:
        return vcpu.allowed_cores is None or core in vcpu.allowed_cores

    def _pop_runnable(
        self, queue: Deque[SchedVcpu], core: int, under_only: bool = False
    ) -> Optional[SchedVcpu]:
        """Pop the first runnable entry eligible to run on ``core``."""
        for _ in range(len(queue)):
            vcpu = queue.popleft()
            if vcpu.state != RUNNABLE:
                continue  # stale entry (running/blocked/done); drop it
            if (under_only and not vcpu.is_under) or not self._allowed(vcpu, core):
                queue.append(vcpu)  # keep ineligible entries queued, in order
                continue
            return vcpu
        return None

    def _steal(self, core: int, under_only: bool) -> Optional[SchedVcpu]:
        """Steal a waiting vCPU from the most loaded other queue."""
        donor = max(
            (q for i, q in enumerate(self._queues) if i != core),
            key=lambda q: sum(
                1 for v in q
                if v.state == RUNNABLE
                and (v.is_under or not under_only)
                and self._allowed(v, core)
            ),
            default=None,
        )
        if donor is None:
            return None
        return self._pop_runnable(donor, core, under_only)

    def _dispatch(self, core: int) -> Optional[SchedVcpu]:
        """Next vCPU for ``core``.

        Credit policy follows Xen: local UNDER, stolen UNDER, local OVER,
        stolen OVER (work-conserving). Pinned never steals; clustered
        steals only vCPUs whose cluster contains this core.
        """
        steals = self.config.policy in ("credit", "clustered")
        choice = self._pop_runnable(self._queues[core], core, under_only=True)
        if choice is None and steals:
            choice = self._steal(core, under_only=True)
        if choice is None:
            choice = self._pop_runnable(self._queues[core], core)
        if choice is None and steals:
            choice = self._steal(core, under_only=False)
        if choice is None:
            return None
        return self._start(choice, core)

    def _start(self, vcpu: SchedVcpu, core: int) -> SchedVcpu:
        if vcpu.last_core is not None and vcpu.last_core != core:
            if not vcpu.is_dom0:
                vcpu.migrations += 1
            vcpu.warmup_left = vcpu.profile.migration_warmup_ms
        vcpu.last_core = core
        vcpu.state = RUNNING
        vcpu.slice_left = self.config.time_slice_ms
        return vcpu

    def _boost_preempt(self, dom0_vcpu: SchedVcpu, running: List[Optional[SchedVcpu]]) -> None:
        """A woken dom0 vCPU preempts a core (guest goes back to its queue)."""
        for core, current in enumerate(running):
            if current is None:
                running[core] = self._start(dom0_vcpu, core)
                return
        victim_core = min(
            range(len(running)),
            key=lambda c: (
                running[c].slice_left if not running[c].is_dom0 else float("inf")
            ),
        )
        victim = running[victim_core]
        if victim.is_dom0:
            return  # all cores busy with dom0 work; drop the boost
        victim.state = RUNNABLE
        self._enqueue(victim)
        running[victim_core] = self._start(dom0_vcpu, victim_core)

    # ------------------------------------------------------------------
    # Work accounting and barriers.
    # ------------------------------------------------------------------

    def _account(self, vcpu: SchedVcpu, tick: float, now: float) -> None:
        efficiency = 1.0
        if vcpu.warmup_left > 0:
            efficiency = vcpu.profile.warmup_efficiency
            vcpu.warmup_left = max(0.0, vcpu.warmup_left - tick)
        if not vcpu.is_dom0:
            vcpu.remaining_work -= tick * efficiency
            vcpu.credits -= tick
        vcpu.burst_left -= tick
        vcpu.slice_left -= tick
        if vcpu.burst_left <= 0:
            if vcpu.is_dom0:
                vcpu.state = BLOCKED
                vcpu.wake_at = float("inf")  # next I/O event re-arms it
            else:
                vcpu.state = BARRIER
                self._barrier_check(vcpu.vm_id, now)
        elif vcpu.slice_left <= 0:
            vcpu.state = RUNNABLE  # caller re-enqueues

    def _barrier_check(self, vm_id: int, now: float) -> None:
        """Release the VM's barrier when every vCPU arrived (or finished)."""
        members = [v for v in self.vcpus if v.vm_id == vm_id]
        if any(v.state in (RUNNABLE, RUNNING, BLOCKED) for v in members):
            return
        for vcpu in members:
            if vcpu.state == BARRIER:
                vcpu.state = BLOCKED
                vcpu.wake_at = now + self._sample_block()
