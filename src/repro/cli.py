"""Command-line interface: ``repro-sim``.

Subcommands:

* ``list-apps`` — the application profile catalogue.
* ``run`` — one coherence simulation, with policy/migration knobs.
* ``experiment`` — regenerate a paper table/figure by name.
* ``record-trace`` — capture a synthetic workload to a trace file.
* ``profile`` — run one simulation under cProfile and print hotspots.

``--jobs N`` (or ``REPRO_JOBS``; ``auto`` = one per CPU) fans experiment
matrices out over worker processes — results are bit-identical at any
job count, only wall-clock time changes.

Examples::

    repro-sim run --app fft --policy counter --migration-ms 2.5
    repro-sim --jobs auto experiment fig7
    repro-sim profile --app ocean --migration-ms 2.5 --top 15
    repro-sim record-trace --app canneal --out canneal.trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import render_table
from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.workloads import PROFILES, get_profile

EXPERIMENTS = {
    "fig1": ("repro.experiments.fig01_l2_decomposition", "Figure 1"),
    "fig2": ("repro.experiments.fig02_potential", "Figure 2"),
    "fig3": ("repro.experiments.sched_study", "Figure 3 + Table I"),
    "tab1": ("repro.experiments.sched_study", "Figure 3 + Table I"),
    "tab4": ("repro.experiments.pinned_study", "Table IV + Figure 6"),
    "fig6": ("repro.experiments.pinned_study", "Table IV + Figure 6"),
    "fig7": ("repro.experiments.migration_study", "Figures 7-9"),
    "fig8": ("repro.experiments.migration_study", "Figures 7-9"),
    "fig9": ("repro.experiments.migration_study", "Figures 7-9"),
    "tab5": ("repro.experiments.content_study", "Tables V-VI + Figure 10"),
    "tab6": ("repro.experiments.content_study", "Tables V-VI + Figure 10"),
    "fig10": ("repro.experiments.content_study", "Tables V-VI + Figure 10"),
    "clustered": ("repro.experiments.ext_clustered", "Extension: clustered scheduling"),
    "regionscout": ("repro.experiments.baseline_comparison", "Extension: RegionScout"),
}

_POLICY_NAMES = {policy.value: policy for policy in SnoopPolicy}
_CONTENT_NAMES = {policy.value: policy for policy in ContentPolicy}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Virtual Snooping (MICRO 2010) reproduction toolkit",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker processes for experiment matrices (N, or 'auto' for "
        "one per CPU; overrides REPRO_JOBS; default: serial)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the application profile catalogue")

    def add_sim_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--app", default="fft", help="application profile name")
        cmd.add_argument(
            "--policy",
            default=SnoopPolicy.VSNOOP_BASE.value,
            choices=sorted(_POLICY_NAMES),
            help="snoop filter policy",
        )
        cmd.add_argument(
            "--content-policy",
            default=ContentPolicy.BROADCAST.value,
            choices=sorted(_CONTENT_NAMES),
            help="policy for content-shared (RO) pages",
        )
        cmd.add_argument("--filter", default="vsnoop",
                         choices=("vsnoop", "regionscout"))
        cmd.add_argument("--migration-ms", type=float, default=None,
                         help="vCPU shuffle period in (scaled) milliseconds")
        cmd.add_argument("--content-sharing", action="store_true",
                         help="enable the content-based page sharing scan")
        cmd.add_argument("--hypervisor", action="store_true",
                         help="enable hypervisor/dom0 activity")
        cmd.add_argument("--accesses", type=int, default=10_000,
                         help="measured accesses per vCPU")
        cmd.add_argument("--warmup", type=int, default=6_000,
                         help="warm-up accesses per vCPU")
        cmd.add_argument("--seed", type=int, default=42)

    run = sub.add_parser("run", help="run one coherence simulation")
    add_sim_args(run)

    experiment = sub.add_parser("experiment", help="regenerate a paper artefact")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS), metavar="name",
                            help=f"one of: {', '.join(sorted(EXPERIMENTS))}")

    profile = sub.add_parser(
        "profile", help="run one simulation under cProfile and print hotspots"
    )
    add_sim_args(profile)
    profile.add_argument("--top", type=int, default=20,
                         help="number of hotspot rows to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "calls"),
                         help="profile sort order")

    record = sub.add_parser("record-trace", help="capture a synthetic trace")
    record.add_argument("--app", default="fft")
    record.add_argument("--out", required=True, help="output trace file")
    record.add_argument("--accesses", type=int, default=10_000,
                        help="accesses per vCPU to record")
    record.add_argument("--vm-id", type=int, default=1)
    record.add_argument("--vcpus", type=int, default=4)
    record.add_argument("--seed", type=int, default=42)
    return parser


def cmd_list_apps() -> int:
    rows = [
        (
            name,
            profile.suite,
            f"{profile.miss_rate:.3f}",
            f"{100 * profile.content_access_fraction:.1f}%",
            f"{100 * profile.hyp_dom0_miss_share:.1f}%",
        )
        for name, profile in sorted(PROFILES.items())
    ]
    print(render_table(
        ["application", "suite", "miss rate", "content accesses", "hyp+dom0 misses"],
        rows,
    ))
    return 0


def _config_from_args(args: argparse.Namespace):
    from repro.sim import SimConfig

    return SimConfig(
        filter_kind=args.filter,
        snoop_policy=_POLICY_NAMES[args.policy],
        content_policy=_CONTENT_NAMES[args.content_policy],
        migration_period_ms=args.migration_ms,
        content_sharing_enabled=args.content_sharing,
        hypervisor_activity_enabled=args.hypervisor,
        accesses_per_vcpu=args.accesses,
        warmup_accesses_per_vcpu=args.warmup,
        seed=args.seed,
    )


def cmd_run(args: argparse.Namespace) -> int:
    from repro.sim import build_system, run_simulation

    config = _config_from_args(args)
    system = build_system(config, get_profile(args.app))
    run_simulation(system)
    stats = system.stats
    broadcast_snoops = config.num_cores * stats.total_transactions
    rows = [
        ("accesses", stats.l1_accesses),
        ("coherence transactions", stats.total_transactions),
        ("miss rate", f"{stats.miss_rate():.4f}"),
        ("snoops", stats.total_snoops),
        ("snoops vs broadcast", f"{100 * stats.total_snoops / max(broadcast_snoops, 1):.1f}%"),
        ("network bytes", stats.network_bytes),
        ("execution cycles", stats.execution_cycles),
        ("migrations", stats.migrations),
        ("cow events", stats.cow_events),
    ]
    print(render_table(["metric", "value"], rows, title=f"{args.app} / {args.policy}"))
    return 0


def cmd_experiment(name: str) -> int:
    module_name, _ = EXPERIMENTS[name]
    import importlib

    module = importlib.import_module(module_name)
    module.main()
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one simulation under cProfile; print the top-N hotspots."""
    import cProfile
    import io
    import pstats
    import time

    from repro.sim import build_system, run_simulation

    config = _config_from_args(args)
    system = build_system(config, get_profile(args.app))
    profiler = cProfile.Profile()
    start = time.perf_counter()
    profiler.enable()
    run_simulation(system)
    profiler.disable()
    elapsed = time.perf_counter() - start
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue().rstrip())
    stats = system.stats
    accesses = max(stats.l1_accesses, 1)
    print()
    print(
        f"{args.app} / {args.policy}: {stats.l1_accesses} accesses in "
        f"{elapsed:.2f}s under the profiler "
        f"({1e6 * elapsed / accesses:.2f} us/access; expect ~2x faster "
        f"unprofiled)"
    )
    return 0


def cmd_record_trace(args: argparse.Namespace) -> int:
    from repro.workloads.generator import VmWorkload
    from repro.workloads.tracefile import record_workload, save_trace

    workload = VmWorkload(
        get_profile(args.app), args.vm_id, args.vcpus, seed=args.seed
    )
    captured = record_workload(workload, args.accesses)
    count = save_trace(args.out, captured)
    print(f"wrote {count} accesses to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None:
        from repro.sim import set_default_jobs
        from repro.sim.runner import parse_jobs

        try:
            set_default_jobs(parse_jobs(args.jobs))
        except ValueError as exc:
            parser.error(str(exc))
    if args.command == "list-apps":
        return cmd_list_apps()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "experiment":
        return cmd_experiment(args.name)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "record-trace":
        return cmd_record_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
