"""Command-line interface: ``repro-sim``.

Subcommands:

* ``list-apps`` — the application profile catalogue.
* ``run`` — one coherence simulation, with policy/migration knobs.
* ``report`` — per-phase tables from an event trace (``run --trace``).
* ``experiment`` — regenerate a paper table/figure by name.
* ``record-trace`` — capture a synthetic workload to a trace file.
* ``profile`` — run one simulation under cProfile and print hotspots.

``--jobs N`` (or ``REPRO_JOBS``; ``auto`` = one per CPU) fans experiment
matrices out over worker processes — results are bit-identical at any
job count, only wall-clock time changes.

``experiment --out DIR`` turns a run into a resumable campaign: every
completed cell is checkpointed to ``DIR`` as JSON, a manifest records
what ran, and ``--resume`` re-runs only the missing cells (Ctrl-C keeps
what finished). ``--retries`` and ``--task-timeout`` bound individual
cell failures and hangs.

Examples::

    repro-sim run --app fft --policy counter --migration-ms 2.5
    repro-sim run --app ocean --policy counter --migration-ms 1 \
        --trace run.evt --metrics-every 42000
    repro-sim report run.evt --window 10000
    repro-sim --jobs auto experiment fig7
    repro-sim --jobs auto experiment fig7 --out fig7.campaign
    repro-sim --jobs auto experiment fig7 --out fig7.campaign --resume
    repro-sim profile --app ocean --migration-ms 2.5 --top 15
    repro-sim record-trace --app canneal --out canneal.trace
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis import render_table
from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.workloads import PROFILES, SUITE_NAMES, get_profile

EXPERIMENTS = {
    "fig1": ("repro.experiments.fig01_l2_decomposition", "Figure 1"),
    "fig2": ("repro.experiments.fig02_potential", "Figure 2"),
    "fig3": ("repro.experiments.sched_study", "Figure 3 + Table I"),
    "tab1": ("repro.experiments.sched_study", "Figure 3 + Table I"),
    "tab4": ("repro.experiments.pinned_study", "Table IV + Figure 6"),
    "fig6": ("repro.experiments.pinned_study", "Table IV + Figure 6"),
    "fig7": ("repro.experiments.migration_study", "Figures 7-9"),
    "fig8": ("repro.experiments.migration_study", "Figures 7-9"),
    "fig9": ("repro.experiments.migration_study", "Figures 7-9"),
    "tab5": ("repro.experiments.content_study", "Tables V-VI + Figure 10"),
    "tab6": ("repro.experiments.content_study", "Tables V-VI + Figure 10"),
    "fig10": ("repro.experiments.content_study", "Tables V-VI + Figure 10"),
    "clustered": ("repro.experiments.ext_clustered", "Extension: clustered scheduling"),
    "consolidation": (
        "repro.experiments.consolidation",
        "Extension: consolidation-host scaling (16/64/144 cores)",
    ),
    "regionscout": ("repro.experiments.baseline_comparison", "Extension: RegionScout"),
    "patterns": (
        "repro.experiments.pattern_study",
        "Extension: workload pattern suites x snoop policies",
    ),
}

_POLICY_NAMES = {policy.value: policy for policy in SnoopPolicy}
_CONTENT_NAMES = {policy.value: policy for policy in ContentPolicy}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sim",
        description="Virtual Snooping (MICRO 2010) reproduction toolkit",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        metavar="N",
        help="worker processes for experiment matrices (N, or 'auto' for "
        "one per CPU; overrides REPRO_JOBS; default: serial)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list-apps", help="list the application profile catalogue")

    sub.add_parser(
        "list-patterns",
        help="list access patterns, service profiles and scenario suites",
    )

    def add_sim_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--app", default="fft", help="application profile name")
        cmd.add_argument("--pattern", default=None, metavar="SPEC",
                         help="access-pattern spec replacing the calibrated "
                         "generator in every VM, e.g. zipfian(alpha=1.2), "
                         "hotspot(hot_fraction=0.1,hot_probability=0.9), "
                         "dynamicmix(phases=zipfian@2000+sequential@2000); "
                         "see `repro-sim list-patterns`")
        cmd.add_argument("--suite", default=None, choices=SUITE_NAMES,
                         help="named scenario suite mapping services onto "
                         "VMs (mutually exclusive with --pattern); see "
                         "`repro-sim list-patterns`")
        cmd.add_argument(
            "--policy",
            default=SnoopPolicy.VSNOOP_BASE.value,
            choices=sorted(_POLICY_NAMES),
            help="snoop filter policy",
        )
        cmd.add_argument(
            "--content-policy",
            default=ContentPolicy.BROADCAST.value,
            choices=sorted(_CONTENT_NAMES),
            help="policy for content-shared (RO) pages",
        )
        cmd.add_argument("--filter", default="vsnoop",
                         choices=("vsnoop", "regionscout"))
        cmd.add_argument("--topology", default="mesh",
                         choices=("mesh", "torus", "hierarchical"),
                         help="interconnect geometry (hierarchical = "
                         "--sockets meshes of --width x --height joined "
                         "by gateway links)")
        cmd.add_argument("--cores", type=int, default=16,
                         help="physical cores; must equal width*height "
                         "(*sockets for hierarchical)")
        cmd.add_argument("--width", type=int, default=4,
                         help="mesh width (per socket for hierarchical)")
        cmd.add_argument("--height", type=int, default=4,
                         help="mesh height (per socket for hierarchical)")
        cmd.add_argument("--sockets", type=int, default=1,
                         help="sockets for the hierarchical topology")
        cmd.add_argument("--inter-socket-hop-cost", type=int, default=4,
                         metavar="HOPS",
                         help="latency/flit charge of one inter-socket "
                         "crossing, in hop equivalents")
        cmd.add_argument("--vms", type=int, default=4, help="guest VM count")
        cmd.add_argument("--vcpus", type=int, default=4,
                         help="vCPUs per guest VM")
        cmd.add_argument("--migration-ms", type=float, default=None,
                         help="vCPU shuffle period in (scaled) milliseconds")
        cmd.add_argument("--content-sharing", action="store_true",
                         help="enable the content-based page sharing scan")
        cmd.add_argument("--hypervisor", action="store_true",
                         help="enable hypervisor/dom0 activity")
        cmd.add_argument("--accesses", type=int, default=10_000,
                         help="measured accesses per vCPU")
        cmd.add_argument("--warmup", type=int, default=6_000,
                         help="warm-up accesses per vCPU")
        cmd.add_argument("--seed", type=int, default=42)
        cmd.add_argument("--kernel", default="auto",
                         choices=("auto", "batched", "reference"),
                         help="execution kernel: the chunked fast-path "
                         "kernel (batched), the canonical per-access loop "
                         "(reference), or auto (batched unless a sanitizer/"
                         "tracer is attached). Bit-identical results either "
                         "way; only speed differs")
        cmd.add_argument("--sanitize", action="store_true",
                         help="enable the runtime coherence sanitizer "
                         "(ground-truth residence shadow + snoop-filter "
                         "safety/residence/SWMR/domain invariant checks)")
        cmd.add_argument("--sanitize-mode", default="raise",
                         choices=("raise", "count"),
                         help="fail fast on the first violation (raise) or "
                         "count violations into the stats for soak runs")
        cmd.add_argument("--trace", default=None, metavar="FILE",
                         help="record a structured event trace (coherence "
                         "transactions, migrations, vCPU-map changes) to FILE; "
                         "inspect it with `repro-sim report`")
        cmd.add_argument("--trace-format", default="auto",
                         choices=("auto", "jsonl", "binary"),
                         help="trace backend; auto picks JSONL for "
                         ".jsonl/.json paths, compact binary otherwise")
        cmd.add_argument("--metrics-every", type=int, default=None,
                         metavar="CYCLES",
                         help="sample a windowed metrics time-series every "
                         "CYCLES cycles into the stats (and the campaign "
                         "manifest)")

    run = sub.add_parser("run", help="run one coherence simulation")
    add_sim_args(run)

    report = sub.add_parser(
        "report", help="per-phase tables from a recorded event trace"
    )
    report.add_argument("trace", help="trace file written by run --trace")
    report.add_argument("--window", type=int, default=10_000, metavar="CYCLES",
                        help="aggregation window width in cycles")
    report.add_argument("--before", type=int, default=2, metavar="N",
                        help="windows to show before each migration")
    report.add_argument("--after", type=int, default=8, metavar="N",
                        help="windows to show after each migration")
    report.add_argument("--partial", action="store_true",
                        help="tolerate a trace with no end record (a run "
                        "still in progress or one that died mid-way)")

    experiment = sub.add_parser("experiment", help="regenerate a paper artefact")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS), metavar="name",
                            help=f"one of: {', '.join(sorted(EXPERIMENTS))}")
    experiment.add_argument("--out", default=None, metavar="DIR",
                            help="campaign directory: checkpoint every "
                            "completed cell as JSON and write a run manifest")
    experiment.add_argument("--resume", action="store_true",
                            help="reuse cells already checkpointed in --out "
                            "and run only the missing ones")
    experiment.add_argument("--retries", type=int, default=0, metavar="N",
                            help="re-run a failing cell up to N times before "
                            "recording the failure (default: 0)")
    experiment.add_argument("--task-timeout", type=float, default=None,
                            metavar="SECONDS",
                            help="terminate any cell running longer than this "
                            "(needs worker processes, i.e. --jobs >= 2)")

    profile = sub.add_parser(
        "profile", help="run one simulation under cProfile and print hotspots"
    )
    add_sim_args(profile)
    profile.add_argument("--top", type=int, default=20,
                         help="number of hotspot rows to print")
    profile.add_argument("--sort", default="cumulative",
                         choices=("cumulative", "tottime", "calls"),
                         help="profile sort order")

    record = sub.add_parser("record-trace", help="capture a synthetic trace")
    record.add_argument("--app", default="fft")
    record.add_argument("--pattern", default=None, metavar="SPEC",
                        help="record the generic pattern workload on SPEC "
                        "instead of the calibrated --app generator")
    record.add_argument("--out", required=True, help="output trace file")
    record.add_argument("--accesses", type=int, default=10_000,
                        help="accesses per vCPU to record")
    record.add_argument("--vm-id", type=int, default=1)
    record.add_argument("--vcpus", type=int, default=4)
    record.add_argument("--seed", type=int, default=42)
    return parser


def cmd_list_apps() -> int:
    rows = [
        (
            name,
            profile.suite,
            f"{profile.miss_rate:.3f}",
            f"{100 * profile.content_access_fraction:.1f}%",
            f"{100 * profile.hyp_dom0_miss_share:.1f}%",
        )
        for name, profile in sorted(PROFILES.items())
    ]
    print(render_table(
        ["application", "suite", "miss rate", "content accesses", "hyp+dom0 misses"],
        rows,
    ))
    return 0


def cmd_list_patterns() -> int:
    from repro.workloads import SERVICES, SUITES, pattern_names
    from repro.workloads.patterns import PATTERNS

    pattern_rows = []
    for name in pattern_names():
        instance = PATTERNS[name]() if name != "dynamicmix" else None
        example = instance.spec() if instance is not None else (
            "dynamicmix(phases=zipfian(alpha=1.1)@2000+sequential@2000)"
        )
        pattern_rows.append((name, example))
    print(render_table(["pattern", "default spec / example"], pattern_rows,
                       title="Access patterns (--pattern SPEC)"))
    print()
    service_rows = [
        (name, service.description,
         f"{service.write_fraction:.2f}", service.private_pattern)
        for name, service in sorted(SERVICES.items())
    ]
    print(render_table(
        ["service", "description", "write frac", "private pattern"],
        service_rows, title="Service profiles (suite building blocks)",
    ))
    print()
    suite_rows = [
        (name, suite.description, ", ".join(suite.vm_services))
        for name, suite in sorted(SUITES.items())
    ]
    print(render_table(["suite", "description", "VM services (cycled)"],
                       suite_rows, title="Scenario suites (--suite NAME)"))
    return 0


def _config_from_args(args: argparse.Namespace):
    from repro.sim import SimConfig

    return SimConfig(
        filter_kind=args.filter,
        pattern=args.pattern,
        suite=args.suite,
        topology=args.topology,
        num_cores=args.cores,
        mesh_width=args.width,
        mesh_height=args.height,
        num_sockets=args.sockets,
        inter_socket_hop_cost=args.inter_socket_hop_cost,
        num_vms=args.vms,
        vcpus_per_vm=args.vcpus,
        snoop_policy=_POLICY_NAMES[args.policy],
        content_policy=_CONTENT_NAMES[args.content_policy],
        migration_period_ms=args.migration_ms,
        content_sharing_enabled=args.content_sharing,
        hypervisor_activity_enabled=args.hypervisor,
        accesses_per_vcpu=args.accesses,
        warmup_accesses_per_vcpu=args.warmup,
        seed=args.seed,
        sanitize=args.sanitize,
        sanitize_mode=args.sanitize_mode,
        trace=args.trace,
        trace_format=args.trace_format,
        metrics_sample_every=args.metrics_every,
        kernel=args.kernel,
    )


def cmd_run(args: argparse.Namespace) -> int:
    from repro.sim import SimTask, run_simulation_task
    from repro.sim.runner import prepare_task

    config = _config_from_args(args)
    task = SimTask(config, args.app)
    if args.trace is None and not args.sanitize:
        # Plain runs go through the result store (and the warm-state
        # snapshot layer under it) — a repeated run is a cache hit.
        stats = run_simulation_task(task)
        system = None
    else:
        # Tracing writes a file and the sanitizer reports live state:
        # both need the simulation to actually run, so only the
        # warm-state snapshot layer applies.
        system, engine, clocks = prepare_task(task)
        engine.measure(clocks)
        stats = system.stats
    # Zero-length runs (e.g. --accesses 0) produce no measured accesses
    # and may produce no coherence transactions: print "n/a" rather than
    # a 0-division-dodged 0.0 that reads as a perfect score.
    broadcast_snoops = config.num_cores * stats.total_transactions
    miss_rate = f"{stats.miss_rate():.4f}" if stats.l1_accesses else "n/a (no accesses)"
    snoop_pct = (
        f"{100 * stats.total_snoops / broadcast_snoops:.1f}%"
        if broadcast_snoops
        else "n/a (no coherence transactions)"
    )
    rows = [
        ("accesses", stats.l1_accesses),
        ("coherence transactions", stats.total_transactions),
        ("miss rate", miss_rate),
        ("snoops", stats.total_snoops),
        ("snoops vs broadcast", snoop_pct),
        ("network bytes", stats.network_bytes),
        ("execution cycles", stats.execution_cycles),
        ("migrations", stats.migrations),
        ("cow events", stats.cow_events),
    ]
    if system is not None and system.tracer is not None:
        rows.append(("trace events written", system.tracer.sink.events_written))
    if stats.metrics is not None:
        rows.append(("metrics windows sampled", len(stats.metrics)))
    sanitizer = system.sanitizer if system is not None else None
    if sanitizer is not None:
        summary = sanitizer.summary()
        rows.extend([
            ("sanitizer plans checked", summary["plans_checked"]),
            ("sanitizer transactions checked", summary["transactions_checked"]),
            ("sanitizer residence events checked", summary["events_checked"]),
            ("sanitizer filter misses (speculative)", summary["filter_misses"]),
            ("sanitizer retried filter misses", summary["retried_filter_misses"]),
            ("sanitizer violations", summary["violations"]),
        ])
    print(render_table(["metric", "value"], rows, title=f"{args.app} / {args.policy}"))
    if args.trace is not None:
        print(f"trace written to {args.trace}; inspect with "
              f"`repro-sim report {args.trace}`", file=sys.stderr)
    if sanitizer is not None and sanitizer.violation_count:
        print(
            f"sanitizer recorded {sanitizer.violation_count} violation(s):",
            file=sys.stderr,
        )
        for violation in sanitizer.violations:
            print(f"  {violation}", file=sys.stderr)
        return 1
    return 0


def cmd_experiment(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    module_name, _ = EXPERIMENTS[args.name]
    import importlib

    from repro.sim.runner import CampaignInterrupted, CampaignSettings, set_campaign

    if args.resume and not args.out:
        parser.error("--resume requires --out DIR")
    if args.retries < 0:
        parser.error("--retries must be >= 0")
    if args.task_timeout is not None and args.task_timeout <= 0:
        parser.error("--task-timeout must be positive")
    if args.out:
        from pathlib import Path

        out = Path(args.out)
        if out.is_dir() and not args.resume:
            cells = [
                p for p in out.glob("*.json") if not p.name.startswith("manifest")
            ]
            if cells:
                parser.error(
                    f"{out} already holds {len(cells)} checkpointed cell(s); "
                    f"pass --resume to reuse them, or choose a fresh directory"
                )
    # Install campaign defaults only when a flag asked for them, so a
    # plain `experiment` run still honours REPRO_CAMPAIGN_DIR.
    if args.out or args.retries or args.task_timeout is not None:
        set_campaign(
            CampaignSettings(
                checkpoint_dir=args.out,
                retries=args.retries,
                task_timeout=args.task_timeout,
                progress=bool(args.out),
            )
        )
    module = importlib.import_module(module_name)
    try:
        module.main()
    except CampaignInterrupted as exc:
        done = sum(1 for r in exc.results if r.ok)
        print(
            f"interrupted: {done}/{len(exc.results)} cells finished"
            + (
                f"; saved under {args.out} — re-run with --resume to "
                f"complete the rest"
                if args.out
                else ""
            ),
            file=sys.stderr,
        )
        return 130
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    finally:
        set_campaign(None)
    return 0


def _profiled_measure_rate(config, app):
    """Measured-phase ``(us/access, bulk summary)`` under cProfile.

    Builds (or snapshot-restores) a fresh system, then times only the
    measured phase with the profiler enabled — the same conditions the
    main ``repro-sim profile`` report runs under, so the kernel
    comparison rows are like-for-like. The bulk summary is the batched
    engine's ``bulk_summary()`` (``None`` for the reference engine,
    which has no bulk-miss seam).
    """
    import cProfile
    import time

    from repro.sim import SimTask
    from repro.sim.runner import prepare_task

    system, engine, clocks = prepare_task(SimTask(config, app))
    profiler = cProfile.Profile()
    start = time.perf_counter()  # repro-lint: disable=RPL004; real-time profiling
    profiler.enable()
    engine.measure(clocks)
    profiler.disable()
    elapsed = time.perf_counter() - start  # repro-lint: disable=RPL004; real-time profiling
    summary_fn = getattr(engine, "bulk_summary", None)
    summary = summary_fn() if summary_fn is not None else None
    accesses = system.stats.l1_accesses
    if not accesses:
        return None, summary
    return 1e6 * elapsed / accesses, summary


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one simulation under cProfile; print the top-N hotspots.

    The run is split at the measurement boundary so the report shows
    where the wall-clock actually goes: the warm-up phase (or the
    warm-state snapshot restore that replaced it) versus the measured
    phase, plus the result store's traffic for the process.
    """
    import cProfile
    import io
    import pstats
    import time

    from repro.sim import SimTask
    from repro.sim.runner import prepare_task
    from repro.store import get_store

    config = _config_from_args(args)
    task = SimTask(config, args.app)
    store = get_store()
    snapshot_hits_before = store.snapshot_hits if store is not None else 0
    profiler = cProfile.Profile()
    start = time.perf_counter()  # repro-lint: disable=RPL004; real-time profiling
    profiler.enable()
    system, engine, clocks = prepare_task(task)
    warm_done = time.perf_counter()  # repro-lint: disable=RPL004; real-time profiling
    engine.measure(clocks)
    profiler.disable()
    end = time.perf_counter()  # repro-lint: disable=RPL004; real-time profiling
    elapsed = end - start
    warm_elapsed = warm_done - start
    measure_elapsed = end - warm_done
    restored = (
        store is not None and store.snapshot_hits > snapshot_hits_before
    )
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream).sort_stats(args.sort).print_stats(args.top)
    print(stream.getvalue().rstrip())
    stats = system.stats
    if stats.l1_accesses:
        rate = (
            f"{1e6 * elapsed / stats.l1_accesses:.2f} us/access; "
            f"expect ~2x faster unprofiled"
        )
    else:
        # --accesses 0: a per-access rate would be division by zero (or,
        # dodged, a nonsense number): say so instead.
        rate = "no measured accesses, per-access rate n/a"
    print()
    print(
        f"{args.app} / {args.policy}: {stats.l1_accesses} accesses in "
        f"{elapsed:.2f}s under the profiler ({rate})"
    )
    warm_label = (
        "build + warm-up (restored from warm-state snapshot)"
        if restored
        else "build + warm-up"
    )
    share = f" ({100 * warm_elapsed / elapsed:.0f}%)" if elapsed else ""
    print(f"  {warm_label}: {warm_elapsed:.2f}s{share}")
    print(f"  measured phase: {measure_elapsed:.2f}s")
    if store is not None:
        counters = store.counters()
        print(
            "  store (this process): "
            f"results {counters['hits']} hit / {counters['misses']} miss, "
            f"snapshots {counters['snapshot_hits']} hit / "
            f"{counters['snapshot_misses']} miss"
            + (
                f", {counters['skipped'] + counters['snapshot_skipped']} skipped"
                if counters["skipped"] or counters["snapshot_skipped"]
                else ""
            )
        )
    else:
        print("  store: disabled (REPRO_STORE=off)")
    if stats.l1_accesses:
        # Reference-vs-batched comparison: one measured phase per kernel
        # under identical profiled conditions. Results are bit-identical
        # across kernels by construction, so the only difference worth a
        # row is the per-access rate.
        from dataclasses import replace

        from repro.sim.mtstream import HAVE_NUMPY

        rates = {}
        summaries = {}
        for kernel in ("reference", "batched"):
            variant = replace(config, kernel=kernel, trace=None, sanitize=False)
            rates[kernel], summaries[kernel] = _profiled_measure_rate(
                variant, args.app
            )
        reference_rate = rates["reference"]
        batched_rate = rates["batched"]
        print("  kernel comparison (measured phase, profiled):")
        if reference_rate is not None:
            print(f"    reference: {reference_rate:8.2f} us/access")
        if batched_rate is not None:
            suffix = ""
            if reference_rate and batched_rate:
                suffix = f"  ({reference_rate / batched_rate:.1f}x vs reference)"
            fallback = "" if HAVE_NUMPY else "  [numpy absent: stepper fallback]"
            print(f"    batched:   {batched_rate:8.2f} us/access{suffix}{fallback}")
        summary = summaries["batched"]
        if summary is not None:
            bulk = summary["bulk_transacts"]
            bailouts = summary["bailouts"]
            bailed = sum(bailouts.values())
            seen = bulk + bailed
            if seen:
                print(
                    f"    bulk-miss seam: {bulk}/{seen} transactions inline "
                    f"({100 * bulk / seen:.1f}%), {bailed} bailed out"
                )
                for reason, count in bailouts.items():
                    print(f"      bail {reason}: {count}")
    return 0


def cmd_report(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.obs.reader import TraceError
    from repro.obs.report import render_report

    if args.window <= 0:
        parser.error("--window must be positive")
    if args.before < 0 or args.after < 1:
        parser.error("--before must be >= 0 and --after >= 1")
    try:
        print(
            render_report(
                args.trace,
                window=args.window,
                before=args.before,
                after=args.after,
                allow_partial=args.partial,
            )
        )
    except (OSError, TraceError) as exc:
        print(f"repro-sim report: {exc}", file=sys.stderr)
        return 1
    return 0


def cmd_record_trace(args: argparse.Namespace) -> int:
    from repro.workloads.generator import VmWorkload
    from repro.workloads.tracefile import record_workload, save_trace

    if args.pattern is not None:
        from repro.workloads.pattern_workload import PatternWorkload
        from repro.workloads.service import generic_service

        workload = PatternWorkload(
            generic_service(args.pattern), args.vm_id, args.vcpus,
            seed=args.seed,
        )
    else:
        workload = VmWorkload(
            get_profile(args.app), args.vm_id, args.vcpus, seed=args.seed
        )
    captured = record_workload(workload, args.accesses)
    count = save_trace(args.out, captured)
    print(f"wrote {count} accesses to {args.out}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.jobs is not None:
        from repro.sim import set_default_jobs
        from repro.sim.runner import parse_jobs

        try:
            set_default_jobs(parse_jobs(args.jobs))
        except ValueError as exc:
            parser.error(str(exc))
    if args.command == "list-apps":
        return cmd_list_apps()
    if args.command == "list-patterns":
        return cmd_list_patterns()
    if args.command == "run":
        return cmd_run(args)
    if args.command == "report":
        return cmd_report(args, parser)
    if args.command == "experiment":
        return cmd_experiment(args, parser)
    if args.command == "profile":
        return cmd_profile(args)
    if args.command == "record-trace":
        return cmd_record_trace(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
