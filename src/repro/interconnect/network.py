"""Network traffic accounting and latency model.

The model charges every message ``flits x hops`` link traffic (unicast
replication for multicasts, as in TokenB's broadcast of transient
requests) and computes delivery latency from the XY hop count, the router
pipeline depth, and a congestion term derived from recent link
utilisation.

The congestion term is what lets virtual snooping show its (modest)
execution-time advantage in Figure 6: fewer snoop messages lower link
utilisation, which lowers the queueing delay every message sees. The
paper reports 0.2–9.1 % runtime reductions; the term here is deliberately
mild to match.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.interconnect.messages import DEFAULT_SIZING, FlitSizing, MessageKind
from repro.interconnect.topology import Topology


class NetworkModel:
    """Traffic and latency accounting for one interconnect.

    The model is *analytic*: it does not queue individual flits, it
    estimates delay from utilisation measured over a sliding window of
    ``window_cycles``. Callers pass the current global cycle to
    :meth:`send`/:meth:`multicast` so the window can advance.
    """

    def __init__(
        self,
        topology: Topology,
        sizing: FlitSizing = DEFAULT_SIZING,
        router_latency: int = 4,
        link_latency: int = 1,
        window_cycles: int = 4096,
        contention_scale: float = 24.0,
    ) -> None:
        self.topology = topology
        self.sizing = sizing
        self.router_latency = router_latency
        self.link_latency = link_latency
        self.window_cycles = window_cycles
        self.contention_scale = contention_scale
        # Hot-path precomputation: the hop table, per-kind flit counts and
        # the per-hop pipeline latency are all invariant for the model's
        # lifetime, and recomputing them per message dominates profile time.
        self._hops = topology.hops_table
        self._flits = {kind: sizing.flits(kind) for kind in MessageKind}
        self._per_hop = router_latency + link_latency
        # Directed link count — the capacity denominator for windowed
        # utilisation. Each topology reports its own (hierarchical ones
        # count inter-socket channels as their serialised segments).
        self.num_links = topology.num_links
        # Traffic counters (cumulative).
        self.messages = 0
        self.flit_hops = 0
        self.bytes_transferred = 0
        # Sliding-window utilisation state.
        self._window_start = 0
        self._window_flit_hops = 0
        self._last_utilisation = 0.0
        # (src, destination-frozenset) -> (count, total_hops, worst_hops).
        # Plans reuse their destination frozensets across transactions, so
        # the per-destination hop walk is paid once per distinct set. The
        # cache is bounded: past _mc_cache_max entries it is cleared and
        # rebuilt (distinct destination sets are few in practice, so the
        # bound only guards against pathological callers).
        self._mc_cache: dict = {}
        self._mc_cache_max = 4096

    def _per_hop_latency(self) -> int:
        return self._per_hop

    def hops(self, src: int, dst: int) -> int:
        """XY hop count between two nodes (table lookup)."""
        return self._hops[src][dst]

    def _advance_window(self, cycle: int) -> None:
        if cycle - self._window_start >= self.window_cycles:
            # Close the accumulating window at its true width — judging
            # its flit-hops over the whole gap to the next message would
            # dilute a busy window toward zero after a quiet stretch.
            capacity = self.window_cycles * self.num_links
            self._last_utilisation = min(self._window_flit_hops / capacity, 0.95)
            self._window_start += self.window_cycles
            self._window_flit_hops = 0
            # Any further fully-elapsed windows carried no traffic:
            # utilisation decays to zero and the window grid re-tiles up
            # to the current cycle.
            idle = (cycle - self._window_start) // self.window_cycles
            if idle > 0:
                self._window_start += idle * self.window_cycles
                self._last_utilisation = 0.0

    def utilisation(self) -> float:
        """Most recent windowed link utilisation estimate in [0, 0.95]."""
        return self._last_utilisation

    def contention_delay(self) -> int:
        """Extra cycles of queueing delay implied by current utilisation."""
        u = self._last_utilisation
        return int(self.contention_scale * u / (1.0 - u))

    def _aggregate_hops(self, src: int, dsts: Iterable[int]) -> tuple:
        """(count, total_hops, worst_hops) of a multicast from ``src``."""
        hops_row = self._hops[src]
        worst_hops = 0
        total_hops = 0
        count = 0
        for dst in dsts:
            if dst == src:
                continue
            hops = hops_row[dst]
            total_hops += hops
            count += 1
            if hops > worst_hops:
                worst_hops = hops
        return count, total_hops, worst_hops

    def _record(self, hops: int, kind: MessageKind) -> None:
        flits = self._flits[kind]
        self.messages += 1
        self.flit_hops += flits * hops
        self.bytes_transferred += flits * self.sizing.link_bytes * hops
        self._window_flit_hops += flits * hops

    def send(self, src: int, dst: int, kind: MessageKind, cycle: int = 0) -> int:
        """Record a unicast message; return its delivery latency in cycles.

        A self-send (``src == dst``) is free and instantaneous — the
        protocol never puts local lookups on the network.
        """
        # Inline guard: the window rolls over rarely, so skip the helper
        # call in the common case (the helper re-checks the condition).
        if cycle - self._window_start >= self.window_cycles:
            self._advance_window(cycle)
        if src == dst:
            return 0
        hops = self._hops[src][dst]
        flits = self._flits[kind]
        flit_hops = flits * hops
        self.messages += 1
        self.flit_hops += flit_hops
        self.bytes_transferred += flit_hops * self.sizing.link_bytes
        self._window_flit_hops += flit_hops
        return hops * self._per_hop + self.contention_delay()

    def multicast(
        self,
        src: int,
        dsts: Iterable[int],
        kind: MessageKind,
        cycle: int = 0,
    ) -> int:
        """Record a multicast (unicast replication); return the worst latency.

        Traffic is charged once per *distinct* destination (a repeated
        core receives one copy of the message, however many times it
        appears in ``dsts``); latency is the slowest destination's, since
        the requester must wait for all responses.
        """
        if cycle - self._window_start >= self.window_cycles:
            self._advance_window(cycle)
        if type(dsts) is not frozenset:
            # Normalising to a frozenset dedupes repeated destinations and
            # keys the cache by *value*. Anything else either fails to hash
            # (lists, sets) or hashes by identity (a generator), which
            # charged duplicates and grew the cache one dead entry per call.
            dsts = frozenset(dsts)
        key = (src, dsts)
        agg = self._mc_cache.get(key)
        if agg is None:
            if len(self._mc_cache) >= self._mc_cache_max:
                self._mc_cache.clear()
            agg = self._mc_cache[key] = self._aggregate_hops(src, dsts)
        count, total_hops, worst_hops = agg
        if count:
            flit_hops = self._flits[kind] * total_hops
            self.messages += count
            self.flit_hops += flit_hops
            self.bytes_transferred += flit_hops * self.sizing.link_bytes
            self._window_flit_hops += flit_hops
        if worst_hops == 0:
            return 0
        return worst_hops * self._per_hop + self.contention_delay()

    def round_trip(
        self,
        src: int,
        dsts: Iterable[int],
        request_kind: MessageKind,
        response_kind: MessageKind,
        responder: Optional[int],
        cycle: int = 0,
    ) -> int:
        """Request multicast plus a single response from ``responder``.

        Returns the full round-trip latency. If ``responder`` is ``None``
        only the request is charged (e.g. all destinations merely
        invalidate and ack; acks are charged separately by the caller).
        """
        latency = self.multicast(src, dsts, request_kind, cycle)
        if responder is not None:
            latency += self.send(responder, src, response_kind, cycle)
        return latency

    def reset(self, cycle: int = 0) -> None:
        """Zero the counters and restart the utilisation window at ``cycle``.

        A mid-run reset (the warm-up / measurement boundary) must pass
        the current cycle: rewinding the window epoch to 0 would make
        the next window span the entire prior run and dilute its
        utilisation toward zero.
        """
        self.messages = 0
        self.flit_hops = 0
        self.bytes_transferred = 0
        self._window_start = cycle
        self._window_flit_hops = 0
        self._last_utilisation = 0.0
        self._mc_cache.clear()
