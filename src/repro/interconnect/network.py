"""Network traffic accounting and latency model.

The model charges every message ``flits x hops`` link traffic (unicast
replication for multicasts, as in TokenB's broadcast of transient
requests) and computes delivery latency from the XY hop count, the router
pipeline depth, and a congestion term derived from recent link
utilisation.

The congestion term is what lets virtual snooping show its (modest)
execution-time advantage in Figure 6: fewer snoop messages lower link
utilisation, which lowers the queueing delay every message sees. The
paper reports 0.2–9.1 % runtime reductions; the term here is deliberately
mild to match.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.interconnect.messages import DEFAULT_SIZING, FlitSizing, MessageKind
from repro.interconnect.topology import MeshTopology


class NetworkModel:
    """Traffic and latency accounting for one mesh interconnect.

    The model is *analytic*: it does not queue individual flits, it
    estimates delay from utilisation measured over a sliding window of
    ``window_cycles``. Callers pass the current global cycle to
    :meth:`send`/:meth:`multicast` so the window can advance.
    """

    def __init__(
        self,
        topology: MeshTopology,
        sizing: FlitSizing = DEFAULT_SIZING,
        router_latency: int = 4,
        link_latency: int = 1,
        window_cycles: int = 4096,
        contention_scale: float = 24.0,
    ) -> None:
        self.topology = topology
        self.sizing = sizing
        self.router_latency = router_latency
        self.link_latency = link_latency
        self.window_cycles = window_cycles
        self.contention_scale = contention_scale
        # Directed link count of a W x H mesh.
        w, h = topology.width, topology.height
        self.num_links = 2 * (2 * w * h - w - h)
        # Traffic counters (cumulative).
        self.messages = 0
        self.flit_hops = 0
        self.bytes_transferred = 0
        # Sliding-window utilisation state.
        self._window_start = 0
        self._window_flit_hops = 0
        self._last_utilisation = 0.0

    def _per_hop_latency(self) -> int:
        return self.router_latency + self.link_latency

    def _advance_window(self, cycle: int) -> None:
        if cycle - self._window_start >= self.window_cycles:
            elapsed = max(cycle - self._window_start, 1)
            capacity = elapsed * self.num_links
            self._last_utilisation = min(self._window_flit_hops / capacity, 0.95)
            self._window_start = cycle
            self._window_flit_hops = 0

    def utilisation(self) -> float:
        """Most recent windowed link utilisation estimate in [0, 0.95]."""
        return self._last_utilisation

    def contention_delay(self) -> int:
        """Extra cycles of queueing delay implied by current utilisation."""
        u = self._last_utilisation
        return int(self.contention_scale * u / (1.0 - u))

    def _record(self, hops: int, kind: MessageKind) -> None:
        flits = self.sizing.flits(kind)
        self.messages += 1
        self.flit_hops += flits * hops
        self.bytes_transferred += flits * self.sizing.link_bytes * hops
        self._window_flit_hops += flits * hops

    def send(self, src: int, dst: int, kind: MessageKind, cycle: int = 0) -> int:
        """Record a unicast message; return its delivery latency in cycles.

        A self-send (``src == dst``) is free and instantaneous — the
        protocol never puts local lookups on the network.
        """
        self._advance_window(cycle)
        if src == dst:
            return 0
        hops = self.topology.hops(src, dst)
        self._record(hops, kind)
        return hops * self._per_hop_latency() + self.contention_delay()

    def multicast(
        self,
        src: int,
        dsts: Iterable[int],
        kind: MessageKind,
        cycle: int = 0,
    ) -> int:
        """Record a multicast (unicast replication); return the worst latency.

        Traffic is charged per destination; latency is the slowest
        destination's, since the requester must wait for all responses.
        """
        self._advance_window(cycle)
        worst_hops = 0
        for dst in dsts:
            if dst == src:
                continue
            hops = self.topology.hops(src, dst)
            self._record(hops, kind)
            worst_hops = max(worst_hops, hops)
        if worst_hops == 0:
            return 0
        return worst_hops * self._per_hop_latency() + self.contention_delay()

    def round_trip(
        self,
        src: int,
        dsts: Iterable[int],
        request_kind: MessageKind,
        response_kind: MessageKind,
        responder: Optional[int],
        cycle: int = 0,
    ) -> int:
        """Request multicast plus a single response from ``responder``.

        Returns the full round-trip latency. If ``responder`` is ``None``
        only the request is charged (e.g. all destinations merely
        invalidate and ack; acks are charged separately by the caller).
        """
        latency = self.multicast(src, dsts, request_kind, cycle)
        if responder is not None:
            latency += self.send(responder, src, response_kind, cycle)
        return latency

    def reset(self) -> None:
        self.messages = 0
        self.flit_hops = 0
        self.bytes_transferred = 0
        self._window_start = 0
        self._window_flit_hops = 0
        self._last_utilisation = 0.0
