"""Network message kinds and flit sizing.

Links are 16 B wide (Table II). A control message (snoop request, token
return, acknowledgment) carries an 8 B header and fits in one flit. A data
message carries the 8 B header plus a 64 B cache block: five flits.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class MessageKind(Enum):
    """Coherence message classes that traverse the network."""

    REQUEST = "request"  # snoop / transient request (control)
    DATA = "data"  # data response carrying a cache block
    ACK = "ack"  # token-only or acknowledgment response (control)
    WRITEBACK = "writeback"  # dirty eviction to memory (data)
    TOKEN_RETURN = "token_return"  # clean eviction returning tokens (control)
    VCPU_MAP_UPDATE = "vcpu_map_update"  # vCPU map synchronisation (control)
    PERSISTENT = "persistent"  # persistent request activation (control)

    # Identity hash (C-level); members are singletons, so this is
    # equivalent to Enum's default but cheaper on the per-message path.
    __hash__ = object.__hash__


@dataclass(frozen=True)
class FlitSizing:
    """Derives flit counts per message kind from link and block widths."""

    link_bytes: int = 16
    header_bytes: int = 8
    block_bytes: int = 64

    def flits(self, kind: MessageKind) -> int:
        """Number of flits a message of ``kind`` occupies."""
        if kind in (MessageKind.DATA, MessageKind.WRITEBACK):
            payload = self.header_bytes + self.block_bytes
        else:
            payload = self.header_bytes
        return -(-payload // self.link_bytes)  # ceil division

    def bytes_of(self, kind: MessageKind) -> int:
        """Link bytes consumed per hop by a message of ``kind``."""
        return self.flits(kind) * self.link_bytes


DEFAULT_SIZING = FlitSizing()
