"""Interconnect topologies.

The paper's simulated system (Table II) uses a 4x4 2D mesh with 16 B links
and a 4-cycle router pipeline. That geometry is :class:`MeshTopology`;
the consolidation-scale studies add :class:`TorusTopology` (wrap-around
links halve the average hop count) and :class:`HierarchicalTopology`
(multi-socket hosts: one mesh per socket, fully connected gateway nodes
between sockets with an extra per-crossing hop charge).

Every topology exposes the same surface — ``num_nodes``, a precomputed
``hops_table``, ``hops``/``route``/``neighbours`` and an analytic directed
``num_links`` used by the network model's utilisation capacity. Mesh and
torus nodes are numbered row-major (node = y * width + x); hierarchical
nodes are socket-major (node = socket * socket_size + local).
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class Topology:
    """Common surface shared by every interconnect geometry.

    Subclasses populate ``hops_table`` in ``__init__`` and implement
    ``route``, ``neighbours`` and ``num_links``. ``hops_table`` stays a
    plain list-of-lists because the coherence hot path indexes it
    directly (``network._hops[src][dst]``).
    """

    hops_table: List[List[int]]

    @property
    def num_nodes(self) -> int:
        return len(self.hops_table)

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(
                f"node {node} outside topology of {self.num_nodes} nodes"
            )

    def hops(self, src: int, dst: int) -> int:
        """Routed hop count between two nodes (table lookup)."""
        self._check(src)
        self._check(dst)
        return self.hops_table[src][dst]

    def route(self, src: int, dst: int) -> List[int]:
        """Deterministic route from ``src`` to ``dst``, inclusive of endpoints."""
        raise NotImplementedError

    def neighbours(self, node: int) -> Iterator[int]:
        """Nodes one link away from ``node``."""
        raise NotImplementedError

    @property
    def num_links(self) -> int:
        """Directed link count — the per-cycle flit capacity denominator."""
        raise NotImplementedError

    def average_distance(self) -> float:
        """Mean hop count over all ordered src != dst pairs."""
        total = sum(sum(row) for row in self.hops_table)
        pairs = self.num_nodes * (self.num_nodes - 1)
        return total / pairs if pairs else 0.0


class MeshTopology(Topology):
    """A ``width`` x ``height`` 2D mesh."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"mesh dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        # Precomputed XY hop-distance table, hops_table[src][dst]. The mesh
        # is small (16 nodes in the paper's configuration) and hop lookups
        # dominate the latency model's cost, so pay O(n^2) memory once.
        n = width * height
        self.hops_table = [
            [
                abs(s % width - d % width) + abs(s // width - d // width)
                for d in range(n)
            ]
            for s in range(n)
        ]

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    @property
    def num_links(self) -> int:
        # Directed link count of a W x H mesh.
        return 2 * (2 * self.width * self.height - self.width - self.height)

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``node``."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes} nodes")

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance — the XY-routed hop count."""
        self._check(src)
        self._check(dst)
        return self.hops_table[src][dst]

    def xy_route(self, src: int, dst: int) -> List[int]:
        """The XY route from ``src`` to ``dst``, inclusive of endpoints.

        X dimension is traversed first, then Y — deterministic and
        deadlock-free, as in the Garnet configuration the paper uses.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [self.node_at(sx, sy)]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.node_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.node_at(x, y))
        return path

    def route(self, src: int, dst: int) -> List[int]:
        return self.xy_route(src, dst)

    def neighbours(self, node: int) -> Iterator[int]:
        x, y = self.coords(node)
        if x > 0:
            yield self.node_at(x - 1, y)
        if x < self.width - 1:
            yield self.node_at(x + 1, y)
        if y > 0:
            yield self.node_at(x, y - 1)
        if y < self.height - 1:
            yield self.node_at(x, y + 1)


def _ring_step(pos: int, dst: int, size: int) -> int:
    """Direction (+1/-1/0) of the shorter way around a ring; ties go +1."""
    if pos == dst:
        return 0
    forward = (dst - pos) % size
    backward = (pos - dst) % size
    return 1 if forward <= backward else -1


class TorusTopology(MeshTopology):
    """A ``width`` x ``height`` 2D torus — a mesh with wrap-around links.

    Each row and column closes into a ring, so the per-dimension distance
    is ``min(d, size - d)``. Routing stays dimension-ordered (X then Y)
    but takes the shorter way around each ring, ties broken toward +1.
    Dimensions of size 2 get a single link between the two nodes, not a
    redundant parallel pair, so a 2x2 torus degenerates to a 2x2 mesh.
    """

    def __init__(self, width: int, height: int) -> None:
        super().__init__(width, height)
        n = width * height
        self.hops_table = [
            [
                min((d % width - s % width) % width, (s % width - d % width) % width)
                + min(
                    (d // width - s // width) % height,
                    (s // width - d // width) % height,
                )
                for d in range(n)
            ]
            for s in range(n)
        ]

    @property
    def num_links(self) -> int:
        # Per dimension: rings of size > 2 contribute 2 directed links per
        # node; size 2 collapses to the mesh's single bidirectional link
        # and size 1 has none.
        w, h = self.width, self.height
        x_links = h * (2 * w if w > 2 else 2 * (w - 1))
        y_links = w * (2 * h if h > 2 else 2 * (h - 1))
        return x_links + y_links

    def hops(self, src: int, dst: int) -> int:
        """Torus distance — per-dimension shortest way around the ring."""
        self._check(src)
        self._check(dst)
        return self.hops_table[src][dst]

    def route(self, src: int, dst: int) -> List[int]:
        """Dimension-ordered route taking the shorter ring direction."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [self.node_at(sx, sy)]
        x, y = sx, sy
        while x != dx:
            x = (x + _ring_step(x, dx, self.width)) % self.width
            path.append(self.node_at(x, y))
        while y != dy:
            y = (y + _ring_step(y, dy, self.height)) % self.height
            path.append(self.node_at(x, y))
        return path

    def xy_route(self, src: int, dst: int) -> List[int]:
        return self.route(src, dst)

    def neighbours(self, node: int) -> Iterator[int]:
        x, y = self.coords(node)
        seen = {node}
        for nx, ny in (
            ((x - 1) % self.width, y),
            ((x + 1) % self.width, y),
            (x, (y - 1) % self.height),
            (x, (y + 1) % self.height),
        ):
            other = self.node_at(nx, ny)
            # A dimension of size 2 wraps both directions onto the same
            # node (and size 1 onto the node itself): yield each link once.
            if other not in seen:
                seen.add(other)
                yield other


class HierarchicalTopology(Topology):
    """Multi-socket host: one mesh per socket, fully connected gateways.

    Nodes are socket-major: ``node = socket * (w * h) + local``, with the
    socket's local node 0 acting as its gateway. A cross-socket message
    routes to the source gateway over the local mesh, crosses one
    inter-socket link charged ``inter_socket_hop_cost`` hops (modeling
    the longer, serialised off-package channel — the charge scales both
    latency and flit-hop traffic), then routes from the destination
    gateway over the remote mesh. Matching that charge, each directed
    inter-socket link contributes ``inter_socket_hop_cost`` segments to
    ``num_links`` so utilisation capacity stays consistent with traffic.
    """

    def __init__(
        self,
        num_sockets: int,
        socket_width: int,
        socket_height: int,
        inter_socket_hop_cost: int = 4,
    ) -> None:
        if num_sockets <= 0:
            raise ValueError(f"need at least one socket, got {num_sockets}")
        if inter_socket_hop_cost < 1:
            raise ValueError(
                f"inter_socket_hop_cost must be >= 1, got {inter_socket_hop_cost}"
            )
        self.num_sockets = num_sockets
        self.socket_width = socket_width
        self.socket_height = socket_height
        self.inter_socket_hop_cost = inter_socket_hop_cost
        self.socket_mesh = MeshTopology(socket_width, socket_height)
        self.socket_size = self.socket_mesh.num_nodes
        mesh_hops = self.socket_mesh.hops_table
        n = num_sockets * self.socket_size
        size = self.socket_size
        cost = inter_socket_hop_cost
        self.hops_table = [
            [
                mesh_hops[s % size][d % size]
                if s // size == d // size
                else mesh_hops[s % size][0] + cost + mesh_hops[0][d % size]
                for d in range(n)
            ]
            for s in range(n)
        ]

    @property
    def num_links(self) -> int:
        intra = self.num_sockets * self.socket_mesh.num_links
        return intra + self.num_inter_links

    @property
    def num_intra_links(self) -> int:
        return self.num_sockets * self.socket_mesh.num_links

    @property
    def num_inter_links(self) -> int:
        # S*(S-1) directed gateway pairs, each a chain of `cost` serial
        # link segments (capacity matches the per-crossing flit charge).
        s = self.num_sockets
        return self.inter_socket_hop_cost * s * (s - 1)

    def socket_of(self, node: int) -> int:
        self._check(node)
        return node // self.socket_size

    def gateway(self, socket: int) -> int:
        if not 0 <= socket < self.num_sockets:
            raise ValueError(
                f"socket {socket} outside host of {self.num_sockets} sockets"
            )
        return socket * self.socket_size

    def _local_route(self, socket: int, src: int, dst: int) -> List[int]:
        base = socket * self.socket_size
        return [base + n for n in self.socket_mesh.xy_route(src, dst)]

    def route(self, src: int, dst: int) -> List[int]:
        """XY within each socket; cross-socket via the two gateways.

        The gateway-to-gateway crossing appears as one edge of the route
        (it is one physical channel), so for cross-socket pairs
        ``hops(src, dst) == len(route) - 1 + (inter_socket_hop_cost - 1)``.
        """
        self._check(src)
        self._check(dst)
        s_sock, s_local = divmod(src, self.socket_size)
        d_sock, d_local = divmod(dst, self.socket_size)
        if s_sock == d_sock:
            return self._local_route(s_sock, s_local, d_local)
        path = self._local_route(s_sock, s_local, 0)
        tail = self._local_route(d_sock, 0, d_local)
        return path + tail

    def neighbours(self, node: int) -> Iterator[int]:
        sock, local = divmod(node, self.socket_size)
        base = sock * self.socket_size
        for n in self.socket_mesh.neighbours(local):
            yield base + n
        if local == 0:
            for other in range(self.num_sockets):
                if other != sock:
                    yield self.gateway(other)
