"""2D mesh topology.

The paper's simulated system (Table II) uses a 4x4 2D mesh with 16 B links
and a 4-cycle router pipeline. This module provides the geometry: node
coordinates, neighbours, and XY (dimension-ordered) routing distances.
Nodes are numbered row-major: node = y * width + x.
"""

from __future__ import annotations

from typing import Iterator, List, Tuple


class MeshTopology:
    """A ``width`` x ``height`` 2D mesh."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise ValueError(f"mesh dimensions must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        # Precomputed XY hop-distance table, hops_table[src][dst]. The mesh
        # is small (16 nodes in the paper's configuration) and hop lookups
        # dominate the latency model's cost, so pay O(n^2) memory once.
        n = width * height
        self.hops_table: List[List[int]] = [
            [
                abs(s % width - d % width) + abs(s // width - d // width)
                for d in range(n)
            ]
            for s in range(n)
        ]

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    def coords(self, node: int) -> Tuple[int, int]:
        """(x, y) coordinates of ``node``."""
        self._check(node)
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError(f"({x},{y}) outside {self.width}x{self.height} mesh")
        return y * self.width + x

    def _check(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ValueError(f"node {node} outside mesh of {self.num_nodes} nodes")

    def hops(self, src: int, dst: int) -> int:
        """Manhattan distance — the XY-routed hop count."""
        self._check(src)
        self._check(dst)
        return self.hops_table[src][dst]

    def xy_route(self, src: int, dst: int) -> List[int]:
        """The XY route from ``src`` to ``dst``, inclusive of endpoints.

        X dimension is traversed first, then Y — deterministic and
        deadlock-free, as in the Garnet configuration the paper uses.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        path = [self.node_at(sx, sy)]
        x, y = sx, sy
        step = 1 if dx > x else -1
        while x != dx:
            x += step
            path.append(self.node_at(x, y))
        step = 1 if dy > y else -1
        while y != dy:
            y += step
            path.append(self.node_at(x, y))
        return path

    def neighbours(self, node: int) -> Iterator[int]:
        x, y = self.coords(node)
        if x > 0:
            yield self.node_at(x - 1, y)
        if x < self.width - 1:
            yield self.node_at(x + 1, y)
        if y > 0:
            yield self.node_at(x, y - 1)
        if y < self.height - 1:
            yield self.node_at(x, y + 1)

    def average_distance(self) -> float:
        """Mean hop count over all ordered src != dst pairs."""
        total = sum(sum(row) for row in self.hops_table)
        pairs = self.num_nodes * (self.num_nodes - 1)
        return total / pairs if pairs else 0.0
