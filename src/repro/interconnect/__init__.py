"""Interconnect substrate: mesh topology, XY routing, traffic accounting."""

from repro.interconnect.messages import DEFAULT_SIZING, FlitSizing, MessageKind
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology

__all__ = [
    "DEFAULT_SIZING",
    "FlitSizing",
    "MeshTopology",
    "MessageKind",
    "NetworkModel",
]
