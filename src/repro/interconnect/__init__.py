"""Interconnect substrate: topologies, routing, traffic accounting."""

from repro.interconnect.builder import (
    TOPOLOGY_BUILDERS,
    build_topology,
    check_topology_config,
)
from repro.interconnect.messages import DEFAULT_SIZING, FlitSizing, MessageKind
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import (
    HierarchicalTopology,
    MeshTopology,
    Topology,
    TorusTopology,
)

__all__ = [
    "DEFAULT_SIZING",
    "FlitSizing",
    "HierarchicalTopology",
    "MeshTopology",
    "MessageKind",
    "NetworkModel",
    "TOPOLOGY_BUILDERS",
    "Topology",
    "TorusTopology",
    "build_topology",
    "check_topology_config",
]
