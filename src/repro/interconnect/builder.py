"""Topology builder registry.

``SimConfig`` names its interconnect geometry with a ``topology`` string
("mesh", "torus", "hierarchical") plus the dimension fields; this module
owns the mapping from that config block to a concrete
:class:`~repro.interconnect.topology.Topology`. Keeping both the
validation and the construction here means ``SimConfig.__post_init__``
and ``build_system`` can never drift apart: the config is rejected at
construction time iff the builder would refuse it.

The registry is import-cycle-free by design — this package never imports
from ``repro.sim``; the functions take any object carrying the topology
config fields (``topology``, ``num_cores``, ``mesh_width``,
``mesh_height``, ``num_sockets``, ``inter_socket_hop_cost``).
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.interconnect.topology import (
    HierarchicalTopology,
    MeshTopology,
    Topology,
    TorusTopology,
)


def _check_grid(config) -> None:
    if config.num_cores != config.mesh_width * config.mesh_height:
        raise ValueError(
            f"num_cores={config.num_cores} != mesh "
            f"{config.mesh_width}x{config.mesh_height}"
        )
    if config.num_sockets != 1:
        raise ValueError(
            f"topology {config.topology!r} is single-socket; "
            f"got num_sockets={config.num_sockets}"
        )


def _check_hierarchical(config) -> None:
    if config.num_sockets < 2:
        raise ValueError(
            f"hierarchical topology needs >= 2 sockets, got "
            f"{config.num_sockets} (use 'mesh' for a single socket)"
        )
    socket_size = config.mesh_width * config.mesh_height
    if config.num_cores != config.num_sockets * socket_size:
        raise ValueError(
            f"num_cores={config.num_cores} != {config.num_sockets} sockets "
            f"x {config.mesh_width}x{config.mesh_height} mesh"
        )
    if config.inter_socket_hop_cost < 1:
        raise ValueError(
            f"inter_socket_hop_cost must be >= 1, got "
            f"{config.inter_socket_hop_cost}"
        )


def _build_mesh(config) -> Topology:
    return MeshTopology(config.mesh_width, config.mesh_height)


def _build_torus(config) -> Topology:
    return TorusTopology(config.mesh_width, config.mesh_height)


def _build_hierarchical(config) -> Topology:
    return HierarchicalTopology(
        config.num_sockets,
        config.mesh_width,
        config.mesh_height,
        config.inter_socket_hop_cost,
    )


# name -> (validate, build). Validators are pure arithmetic over the
# config fields so SimConfig can call them from __post_init__.
TOPOLOGY_BUILDERS: Dict[str, Tuple[Callable, Callable]] = {
    "mesh": (_check_grid, _build_mesh),
    "torus": (_check_grid, _build_torus),
    "hierarchical": (_check_hierarchical, _build_hierarchical),
}


def check_topology_config(config) -> None:
    """Validate the topology block of a config; raise ValueError if bad."""
    try:
        validate, _ = TOPOLOGY_BUILDERS[config.topology]
    except KeyError:
        raise ValueError(
            f"unknown topology {config.topology!r} "
            f"(expected one of {sorted(TOPOLOGY_BUILDERS)})"
        ) from None
    validate(config)


def build_topology(config) -> Topology:
    """Construct the topology named by ``config.topology``."""
    check_topology_config(config)
    _, build = TOPOLOGY_BUILDERS[config.topology]
    return build(config)
