"""Virtual Snooping — reproduction of Kim, Kim & Huh, MICRO 2010.

A trace-driven simulation library for studying snoop filtering in
virtualized multi-cores: a token-coherence CMP substrate (caches, mesh
interconnect, TokenB protocol), a hypervisor substrate (VM scheduling,
memory virtualization, content-based page sharing), and the virtual
snooping filter itself (vCPU maps, residence counters, content-shared
request policies).

Typical entry points:

* :class:`repro.sim.SimConfig` / :func:`repro.sim.build_system` /
  :class:`repro.sim.SimulationEngine` — run a full coherence simulation.
* :mod:`repro.experiments` — one driver per paper table/figure.
* :mod:`repro.workloads` — the application profile catalogue.
"""

__version__ = "1.0.0"
