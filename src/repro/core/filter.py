"""The virtual-snooping filter: policies that turn a miss into a plan.

This is the paper's contribution glued together: the
:class:`SnoopDomainTable` (vCPU maps), the per-core
:class:`ResidenceTracker` counters, and the policy logic that chooses a
destination set for every coherence transaction based on the page's
sharing type:

* ``VM_PRIVATE``  → multicast to the requesting VM's snoop domain,
* ``RW_SHARED``   → broadcast (hypervisor / inter-VM channel data),
* ``RO_SHARED``   → one of the Section VI content policies.

Four snoop policies are modelled, matching the evaluation:

* ``BROADCAST`` — the TokenB baseline, everything broadcast.
* ``VSNOOP_BASE`` — filter by vCPU map, never remove old cores.
* ``VSNOOP_COUNTER`` — remove a core when its residence counter for the
  VM reaches zero.
* ``VSNOOP_COUNTER_THRESHOLD`` — speculatively remove below a threshold
  (default 10, as in the paper); transactions then carry the TokenB
  retry plan (map, map, broadcast-persistent).
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Dict, FrozenSet, Optional

from repro.coherence.plan import RequestPlan
from repro.coherence.registry import GLOBAL_PROVIDER
from repro.core.domains import SnoopDomainTable
from repro.core.residence import ResidenceTracker
from repro.hypervisor.hypervisor import PlacementListener
from repro.mem.pagetype import PageType

EMPTY: FrozenSet[int] = frozenset()


class SnoopPolicy(Enum):
    BROADCAST = "broadcast"
    VSNOOP_BASE = "vsnoop-base"
    VSNOOP_COUNTER = "counter"
    VSNOOP_COUNTER_THRESHOLD = "counter-threshold"

    @property
    def uses_counters(self) -> bool:
        return self in (
            SnoopPolicy.VSNOOP_COUNTER,
            SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
        )


class ContentPolicy(Enum):
    BROADCAST = "vsnoop-broadcast"
    MEMORY_DIRECT = "memory-direct"
    INTRA_VM = "intra-vm"
    FRIEND_VM = "friend-vm"


class VirtualSnoopFilter(PlacementListener):
    """Produces a :class:`RequestPlan` for every coherence transaction."""

    def __init__(
        self,
        num_cores: int,
        policy: SnoopPolicy = SnoopPolicy.VSNOOP_COUNTER,
        content_policy: ContentPolicy = ContentPolicy.BROADCAST,
        counter_threshold: int = 10,
        sync_hook: Optional[Callable[[int, FrozenSet[int]], None]] = None,
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        if counter_threshold < 1:
            raise ValueError(f"counter_threshold must be >= 1, got {counter_threshold}")
        self.num_cores = num_cores
        self.policy = policy
        self.content_policy = content_policy
        self.counter_threshold = counter_threshold
        self.clock = clock if clock is not None else (lambda: 0)
        self.domains = SnoopDomainTable(num_cores, sync_hook)
        self.all_cores: FrozenSet[int] = frozenset(range(num_cores))
        # Residence counters fire at the policy's removal watermark:
        # zero for `counter`, threshold-1 for `counter-threshold`
        # ("becomes under a threshold" = count < threshold).
        watermark = 0
        if policy is SnoopPolicy.VSNOOP_COUNTER_THRESHOLD:
            watermark = counter_threshold - 1
        self.trackers: Dict[int, ResidenceTracker] = {
            core: ResidenceTracker(core, watermark, self._on_low_residence)
            for core in range(num_cores)
        }
        self._friends: Dict[int, int] = {}
        # Memoised plans keyed by (core, vm_id, page_type). Plans depend
        # only on those three inputs plus the snoop-domain table and the
        # friend map; the cache is invalidated whenever either changes
        # (the table carries a version epoch bumped on every map edit).
        self._plan_cache: Dict[tuple, RequestPlan] = {}
        self._plan_cache_version = self.domains.version

    # ------------------------------------------------------------------
    # Friend-VM configuration.
    # ------------------------------------------------------------------

    def set_friend(self, vm_id: int, friend_vm_id: int) -> None:
        """Designate the VM sharing the most content pages with ``vm_id``."""
        if vm_id == friend_vm_id:
            raise ValueError("a VM cannot be its own friend")
        self._friends[vm_id] = friend_vm_id
        self._plan_cache.clear()

    def friend_of(self, vm_id: int) -> Optional[int]:
        return self._friends.get(vm_id)

    # ------------------------------------------------------------------
    # Plan construction.
    # ------------------------------------------------------------------

    def plan(
        self,
        core: int,
        vm_id: int,
        page_type: PageType,
        block: Optional[int] = None,
    ) -> RequestPlan:
        """Destination plan for a transaction by ``vm_id`` on ``core``.

        ``block`` is part of the shared filter interface (region-based
        baselines key on it); virtual snooping filters purely on the VM
        and the page's sharing type — which makes plans memoisable per
        (core, vm_id, page_type) until a vCPU map or the friend table
        changes.
        """
        version = self.domains.version
        if version != self._plan_cache_version:
            self._plan_cache.clear()
            self._plan_cache_version = version
        key = (core, vm_id, page_type)
        plan = self._plan_cache.get(key)
        if plan is None:
            plan = self._build_plan(core, vm_id, page_type)
            self._plan_cache[key] = plan
        return plan

    def _build_plan(
        self, core: int, vm_id: int, page_type: PageType
    ) -> RequestPlan:
        if self.policy is SnoopPolicy.BROADCAST:
            if page_type is PageType.RO_SHARED:
                return self._ro_plan(core, vm_id, (self.all_cores,), (GLOBAL_PROVIDER,))
            return RequestPlan.broadcast(self.all_cores, page_type)
        if page_type is PageType.RW_SHARED:
            return RequestPlan(attempts=(self.all_cores,), page_type=page_type)
        if page_type is PageType.RO_SHARED:
            return self._content_plan(core, vm_id)
        # VM-private: multicast within the snoop domain.
        domain = self.domains.domain(vm_id)
        if not domain:
            domain = frozenset((core,))
        if domain == self.all_cores:
            return RequestPlan(attempts=(self.all_cores,), page_type=page_type)
        if self.policy is SnoopPolicy.VSNOOP_COUNTER_THRESHOLD:
            # Speculative removal needs TokenB's safe retries: two transient
            # attempts inside the domain, then a broadcast persistent request.
            return RequestPlan(
                attempts=(domain, domain, self.all_cores),
                page_type=page_type,
                last_is_persistent=True,
            )
        return RequestPlan(attempts=(domain,), page_type=page_type)

    def _content_plan(self, core: int, vm_id: int) -> RequestPlan:
        domain = self.domains.domain(vm_id) or frozenset((core,))
        if self.content_policy is ContentPolicy.MEMORY_DIRECT:
            return self._ro_plan(core, vm_id, (EMPTY,), ())
        if self.content_policy is ContentPolicy.INTRA_VM:
            return self._ro_plan(core, vm_id, (domain,), (vm_id,))
        if self.content_policy is ContentPolicy.FRIEND_VM:
            friend = self._friends.get(vm_id)
            if friend is None:
                return self._ro_plan(core, vm_id, (domain,), (vm_id,))
            merged = frozenset(domain | self.domains.domain(friend))
            return self._ro_plan(core, vm_id, (merged,), (vm_id, friend))
        return self._ro_plan(core, vm_id, (self.all_cores,), (GLOBAL_PROVIDER,))

    def _ro_plan(self, core, vm_id, attempts, provider_vms) -> RequestPlan:
        friend = self._friends.get(vm_id)
        return RequestPlan(
            attempts=attempts,
            page_type=PageType.RO_SHARED,
            provider_vms=provider_vms,
            stats_intra_domain=self.domains.domain(vm_id),
            stats_friend_domain=(
                self.domains.domain(friend) if friend is not None else EMPTY
            ),
        )

    # ------------------------------------------------------------------
    # Residence events.
    # ------------------------------------------------------------------

    def _on_low_residence(self, core: int, vm_id: int, count: int) -> None:
        if not self.policy.uses_counters:
            return
        self.domains.try_remove(vm_id, core, self.clock())

    # ------------------------------------------------------------------
    # PlacementListener interface (driven by the hypervisor).
    # ------------------------------------------------------------------

    def on_vcpu_placed(self, vm_id: int, core: int) -> None:
        self.domains.vcpu_placed(vm_id, core, self.clock())

    def on_vcpu_displaced(self, vm_id: int, core: int) -> None:
        cycle = self.clock()
        self.domains.vcpu_displaced(vm_id, core, cycle)
        # If the counter is already at/below the watermark the core can be
        # dropped immediately (e.g. the VM never cached anything here).
        if self.policy.uses_counters and self.trackers[core].below_threshold(vm_id):
            self.domains.try_remove(vm_id, core, cycle)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def average_domain_size(self, vm_ids) -> float:
        sizes = [self.domains.domain_size(vm) for vm in vm_ids]
        return sum(sizes) / len(sizes) if sizes else 0.0
