"""Virtual snooping — the paper's contribution.

vCPU maps (snoop domains), per-VM cache residence counters, and the
filter policies that decide each coherence transaction's destination set.
"""

from repro.core.domains import RemovalRecord, SnoopDomainTable
from repro.core.filter import ContentPolicy, SnoopPolicy, VirtualSnoopFilter
from repro.core.residence import UNTRACKED_VM, ResidenceTracker

__all__ = [
    "ContentPolicy",
    "RemovalRecord",
    "ResidenceTracker",
    "SnoopDomainTable",
    "SnoopPolicy",
    "UNTRACKED_VM",
    "VirtualSnoopFilter",
]
