"""vCPU map registers — the virtual snoop domains.

Each core holds a *vCPU map register*: an n-bit vector naming every core
the currently-running VM must snoop (Figure 4). All cores of a VM hold
identical maps, synchronised by the hypervisor with update messages whose
latency is comparable to a snoop round-trip. This module models the maps
as one authoritative table (vm → core set) plus the synchronisation
traffic, which is what the evaluation observes.

The table distinguishes the cores a VM is *running on* from the cores in
its *snoop domain*: after a migration the old core stays in the domain
("the old core cannot be removed from the vCPU map, since it may contain
the data of the VM") until the residence machinery clears it.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional, Set, Tuple


class RemovalRecord:
    """One old-core removal, for the Figure 9 CDF."""

    __slots__ = ("vm_id", "core", "displaced_cycle", "removed_cycle")

    def __init__(self, vm_id: int, core: int, displaced_cycle: int, removed_cycle: int) -> None:
        self.vm_id = vm_id
        self.core = core
        self.displaced_cycle = displaced_cycle
        self.removed_cycle = removed_cycle

    @property
    def period(self) -> int:
        """Cycles from vCPU displacement to vCPU-map removal."""
        return self.removed_cycle - self.displaced_cycle


#: Default bound on RemovalRecords kept in memory. Soak runs churn maps
#: indefinitely; past this the table keeps exact counts of what was
#: dropped (and streams every removal through ``map_hook``) instead of
#: growing without bound.
DEFAULT_MAX_REMOVAL_LOG = 100_000

MapHook = Callable[[int, int, bool, int, int, int], None]
"""Callback (vm_id, core, grew, new_size, cycle, period) per map change."""


class SnoopDomainTable:
    """Authoritative vm → snoop-domain mapping with sync-cost accounting.

    ``sync_hook``, when provided, is called with (vm_id, new_domain) on
    every map change so the caller can charge vCPU-map update messages to
    the network. ``map_hook`` is the observability tap: called with
    (vm_id, core, grew, new_size, cycle, period) on every grow/shrink,
    where ``period`` is the Figure 9 displacement-to-removal time on
    shrink (0 otherwise). Unlike ``removal_log`` — bounded at
    ``max_removal_log`` records, overflow counted in
    ``removal_log_dropped`` — the hook sees every removal, so streaming
    consumers stay exact on unbounded runs.
    """

    def __init__(
        self,
        num_cores: int,
        sync_hook: Optional[Callable[[int, FrozenSet[int]], None]] = None,
        max_removal_log: int = DEFAULT_MAX_REMOVAL_LOG,
    ) -> None:
        self.num_cores = num_cores
        self.all_cores: FrozenSet[int] = frozenset(range(num_cores))
        self._domains: Dict[int, Set[int]] = {}
        self._running: Dict[int, Dict[int, int]] = {}  # vm -> {core -> #vcpus}
        self._sync_hook = sync_hook
        self._pending_since: Dict[Tuple[int, int], int] = {}
        self.removal_log: List[RemovalRecord] = []
        self.max_removal_log = max_removal_log
        self.removal_log_dropped = 0
        self.map_hook: Optional[MapHook] = None
        self.map_updates = 0
        # Monotonic epoch, bumped on every domain-content change. Plan
        # caches key their validity on it: any vCPU placement, removal or
        # other map edit invalidates memoised destination sets.
        self.version = 0

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def domain(self, vm_id: int) -> FrozenSet[int]:
        """The VM's current snoop domain (empty if never scheduled)."""
        return frozenset(self._domains.get(vm_id, ()))

    def domain_size(self, vm_id: int) -> int:
        return len(self._domains.get(vm_id, ()))

    def is_running_on(self, vm_id: int, core: int) -> bool:
        return self._running.get(vm_id, {}).get(core, 0) > 0

    def running_cores(self, vm_id: int) -> FrozenSet[int]:
        return frozenset(self._running.get(vm_id, {}))

    # ------------------------------------------------------------------
    # Placement-driven updates.
    # ------------------------------------------------------------------

    def vcpu_placed(self, vm_id: int, core: int, cycle: int = 0) -> None:
        """A vCPU of ``vm_id`` was scheduled onto ``core``."""
        running = self._running.setdefault(vm_id, {})
        running[core] = running.get(core, 0) + 1
        self._pending_since.pop((vm_id, core), None)
        domain = self._domains.setdefault(vm_id, set())
        if core not in domain:
            domain.add(core)
            self._notify(vm_id)
            if self.map_hook is not None:
                self.map_hook(vm_id, core, True, len(domain), cycle, 0)

    def vcpu_displaced(self, vm_id: int, core: int, cycle: int = 0) -> None:
        """A vCPU of ``vm_id`` left ``core``; the core stays in the domain.

        Starts the Figure 9 removal clock if no other vCPU of the VM still
        occupies the core.
        """
        running = self._running.get(vm_id, {})
        count = running.get(core, 0)
        if count <= 1:
            running.pop(core, None)
            if core in self._domains.get(vm_id, ()):
                self._pending_since[(vm_id, core)] = cycle
        else:
            running[core] = count - 1

    # ------------------------------------------------------------------
    # Residence-driven removal.
    # ------------------------------------------------------------------

    def try_remove(self, vm_id: int, core: int, cycle: int = 0) -> bool:
        """Remove ``core`` from the VM's domain if the VM is not running
        there. Returns whether a removal happened."""
        if self.is_running_on(vm_id, core):
            return False
        domain = self._domains.get(vm_id)
        if domain is None or core not in domain:
            return False
        domain.remove(core)
        started = self._pending_since.pop((vm_id, core), None)
        if started is not None:
            if len(self.removal_log) < self.max_removal_log:
                self.removal_log.append(RemovalRecord(vm_id, core, started, cycle))
            else:
                self.removal_log_dropped += 1
        self._notify(vm_id)
        if self.map_hook is not None:
            period = cycle - started if started is not None else 0
            self.map_hook(vm_id, core, False, len(domain), cycle, period)
        return True

    def _notify(self, vm_id: int) -> None:
        self.version += 1
        self.map_updates += 1
        if self._sync_hook is not None:
            self._sync_hook(vm_id, self.domain(vm_id))
