"""Per-VM cache residence counters (Section IV-B).

Each L2 keeps one counter per VM, counting the VM-private blocks resident
in that cache. The cache tag's VM identifier drives the bookkeeping:
inserts increment, evictions and invalidations decrement. When a counter
reaches zero — or falls under a threshold for the speculative
counter-threshold policy — the core can be dropped from that VM's vCPU
map, restoring filter efficiency after a migration.

The tracker is a :class:`~repro.cache.setassoc.CacheObserver`, so it sees
every L2 content change without the cache knowing about virtual snooping.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.cache.line import CacheLine
from repro.cache.setassoc import CacheObserver

# vm_id used for lines brought in by the hypervisor / dom0; never tracked
# in snoop domains (their pages are RW-shared and always broadcast).
UNTRACKED_VM = -1

LowWatermarkHook = Callable[[int, int, int], None]
"""Callback (core, vm_id, count) fired when a counter hits/crosses low."""


class ResidenceTracker(CacheObserver):
    """Residence counters for one core's L2.

    ``on_low`` fires whenever a decrement leaves a VM's count at or below
    ``threshold`` (so ``threshold=0`` fires exactly on empty). The domain
    manager decides whether a removal is actually allowed (the VM may
    still be running on the core).
    """

    def __init__(
        self,
        core_id: int,
        threshold: int = 0,
        on_low: Optional[LowWatermarkHook] = None,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        self.core_id = core_id
        self.threshold = threshold
        self.on_low = on_low
        self._counts: Dict[int, int] = {}

    def count(self, vm_id: int) -> int:
        return self._counts.get(vm_id, 0)

    def counts(self) -> Dict[int, int]:
        return dict(self._counts)

    def is_empty_for(self, vm_id: int) -> bool:
        return self.count(vm_id) == 0

    def below_threshold(self, vm_id: int) -> bool:
        """Whether the counter permits removal under the active policy."""
        return self.count(vm_id) <= self.threshold

    # ------------------------------------------------------------------
    # CacheObserver interface.
    # ------------------------------------------------------------------

    def on_insert(self, line: CacheLine) -> None:
        if line.vm_id == UNTRACKED_VM:
            return
        self._counts[line.vm_id] = self._counts.get(line.vm_id, 0) + 1

    def on_evict(self, line: CacheLine) -> None:
        self._decrement(line)

    def on_invalidate(self, line: CacheLine) -> None:
        self._decrement(line)

    def _decrement(self, line: CacheLine) -> None:
        vm_id = line.vm_id
        if vm_id == UNTRACKED_VM:
            return
        current = self._counts.get(vm_id, 0)
        if current <= 0:
            raise RuntimeError(
                f"residence counter underflow for VM {vm_id} on core "
                f"{self.core_id}"
            )
        current -= 1
        if current == 0:
            del self._counts[vm_id]
        else:
            self._counts[vm_id] = current
        if current <= self.threshold and self.on_low is not None:
            self.on_low(self.core_id, vm_id, current)
