"""Experiment drivers — one module per paper table/figure.

==========  ============================================
Paper item  Module
==========  ============================================
Figure 1    :mod:`repro.experiments.fig01_l2_decomposition`
Figure 2    :mod:`repro.experiments.fig02_potential`
Figure 3    :mod:`repro.experiments.sched_study`
Table I     :mod:`repro.experiments.sched_study`
Table IV    :mod:`repro.experiments.pinned_study`
Figure 6    :mod:`repro.experiments.pinned_study`
Figures 7-9 :mod:`repro.experiments.migration_study`
Table V/VI  :mod:`repro.experiments.content_study`
Figure 10   :mod:`repro.experiments.content_study`
==========  ============================================
"""

from repro.experiments import (
    baseline_comparison,
    consolidation,
    content_study,
    ext_clustered,
    fig01_l2_decomposition,
    fig02_potential,
    migration_study,
    pinned_study,
    sched_study,
)

__all__ = [
    "baseline_comparison",
    "consolidation",
    "content_study",
    "ext_clustered",
    "fig01_l2_decomposition",
    "fig02_potential",
    "migration_study",
    "pinned_study",
    "sched_study",
]
