"""Cloud-consolidation scaling study — beyond the paper's 16-core host.

The paper's future-work section (and ROADMAP north star) asks how the
map-shrink policies behave when a consolidation host grows from one
socket to many: snoop maps cover a shrinking fraction of the machine, so
the filtered-snoop fraction should *rise* with core count while
broadcast traffic explodes. This driver sweeps three host shapes —

* 16 cores — the paper's 4x4 mesh, 4 VMs
* 64 cores — 4 sockets of 4x4 meshes (hierarchical topology), 16 VMs
* 144 cores — 9 sockets of 4x4 meshes, 36 VMs

— under all four snoop policies with credit-scheduler-style vCPU churn,
and reports per cell: final snoop-map size (average vCPUs-per-map), the
fraction of broadcast snoops the filter eliminated, and network traffic
per coherence transaction. Cells ride the campaign machinery
(``repro-sim experiment consolidation --out DIR`` writes per-cell
checkpoints and a manifest whose entries carry ``snoop_map_avg_size``
and ``filtered_snoop_fraction`` columns).

``CONSOLIDATION_SMOKE=1`` shrinks the sweep to the 64-core host with a
tiny budget and the coherence sanitizer asserting on every transaction —
the CI scale-smoke configuration.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.core.filter import SnoopPolicy
from repro.experiments.common import (
    normalized_snoops_percent,
    run_tasks,
    scaled,
    select_apps,
)
from repro.sim import SimConfig, SimTask

POLICIES = tuple(SnoopPolicy)

# Host shapes: every VM keeps the paper's 4 vCPUs and the host is fully
# consolidated (cores / 4 VMs, no overcommit — the coherence simulator
# does not model it). 64 and 144 cores use the hierarchical topology:
# 4x4-mesh sockets joined by gateway links.
HOSTS: Dict[int, dict] = {
    16: dict(topology="mesh", num_cores=16, mesh_width=4, mesh_height=4,
             num_sockets=1, num_vms=4),
    64: dict(topology="hierarchical", num_cores=64, mesh_width=4, mesh_height=4,
             num_sockets=4, num_vms=16),
    144: dict(topology="hierarchical", num_cores=144, mesh_width=4,
              mesh_height=4, num_sockets=9, num_vms=36),
}

APPS = ("fft", "ocean")


def smoke_mode() -> bool:
    """CI scale-smoke: 64-core host only, tiny budget, sanitizer on."""
    return os.environ.get("CONSOLIDATION_SMOKE", "") not in ("", "0")


def consolidation_config(
    host_cores: int,
    policy: SnoopPolicy,
    seed: int = 42,
    accesses: Optional[int] = None,
    warmup: Optional[int] = None,
) -> SimConfig:
    shape = HOSTS[host_cores]
    smoke = smoke_mode()
    return SimConfig(
        snoop_policy=policy,
        vcpus_per_vm=4,
        # The migration-study cache scaling: small enough that maps grow
        # and counters drain within a tractable access budget.
        l1_size=4 * 1024,
        l2_size=32 * 1024,
        working_set_scale=0.15,
        cycles_per_ms=84_000,
        migration_period_ms=0.5,
        accesses_per_vcpu=(
            accesses if accesses is not None
            else 1_500 if smoke else scaled(12_000, factor=2)
        ),
        warmup_accesses_per_vcpu=(
            warmup if warmup is not None
            else 600 if smoke else scaled(4_000, factor=2)
        ),
        sanitize=smoke,
        seed=seed,
        **shape,
    )


def run(
    apps: Optional[List[str]] = None,
    hosts: Optional[Sequence[int]] = None,
    policies: Sequence[SnoopPolicy] = POLICIES,
    seed: int = 42,
    accesses: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, Dict[int, Dict[str, Dict[str, float]]]]:
    """app -> host_cores -> policy-name -> scaling metrics."""
    if hosts is None:
        hosts = (64,) if smoke_mode() else tuple(sorted(HOSTS))
    if apps is None:
        # Smoke: one cell per policy (single app, single host).
        apps = ["fft"] if smoke_mode() else list(APPS)
    apps = select_apps(apps, fast_subset=1)
    tasks = [
        SimTask(
            consolidation_config(host, policy, seed, accesses, warmup), app
        )
        for app in apps
        for host in hosts
        for policy in policies
    ]
    all_stats = iter(run_tasks(tasks, label="consolidation"))
    results: Dict[str, Dict[int, Dict[str, Dict[str, float]]]] = {}
    for app in apps:
        results[app] = {}
        for host in hosts:
            results[app][host] = {}
            for policy in policies:
                stats = next(all_stats)
                transactions = stats.total_transactions or 1
                sizes = stats.snoop_map_sizes
                results[app][host][policy.value] = {
                    "snoop_map_avg_size": (
                        sum(sizes.values()) / len(sizes) if sizes else 0.0
                    ),
                    "snoops_norm_pct": normalized_snoops_percent(stats, host),
                    "filtered_snoop_fraction": (
                        1.0 - stats.total_snoops / (host * transactions)
                    ),
                    "traffic_bytes_per_transaction": (
                        stats.network_bytes / transactions
                    ),
                    "migrations": float(stats.migrations),
                }
    return results


def format_scaling(results) -> str:
    headers = [
        "workload", "cores", "policy", "map size", "snoops %bcast",
        "filtered", "B/transaction",
    ]
    rows = []
    for app, by_host in results.items():
        for host in sorted(by_host):
            for policy in POLICIES:
                cell = by_host[host].get(policy.value)
                if cell is None:
                    continue
                rows.append([
                    app,
                    str(host),
                    policy.value,
                    f"{cell['snoop_map_avg_size']:.1f}",
                    f"{cell['snoops_norm_pct']:.1f}",
                    f"{cell['filtered_snoop_fraction']:.3f}",
                    f"{cell['traffic_bytes_per_transaction']:.0f}",
                ])
    return render_table(
        headers,
        rows,
        title="Consolidation scaling: snoop-map size and filtered snoops "
        "vs host core count",
    )


def main() -> None:
    print(format_scaling(run()))


if __name__ == "__main__":
    main()
