"""Extension — clustered scheduling (the paper's stated future work).

Section III ends: "It is also possible to restrict the physical cores a
VM can run to a subset of the cores in a system ... It will limit the
size of the snoop domain of a VM, while it can reduce the load unbalance
caused by the strict scheduling in the one-to-one pinning. Exploring
such scheduling policies will be our future work."

This driver explores exactly that policy: each VM may run on a window of
``cluster_factor x vcpus_per_vm`` cores. On an overcommitted host it
recovers almost all of full migration's throughput while bounding the
VM's snoop domain to the window — pinning's filtering benefit at a
fraction of its utilisation cost.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.experiments.common import select_apps
from repro.experiments.sched_study import OVERCOMMITTED_VMS
from repro.hypervisor.scheduler import CreditSchedulerSim, SchedulerConfig
from repro.sim import parallel_map
from repro.workloads import PARSEC_APPS, get_profile

POLICIES = ("pinned", "clustered", "credit")


def _run_cell(args):
    """Picklable worker: one (app, policy, cluster_factor, num_vms, seed) cell."""
    app, policy, cluster_factor, num_vms, seed = args
    config = SchedulerConfig(policy=policy, cluster_factor=cluster_factor, seed=seed)
    return CreditSchedulerSim(config, get_profile(app), num_vms=num_vms).run()


def run(
    apps: Optional[List[str]] = None,
    cluster_factor: float = 1.5,
    num_vms: int = OVERCOMMITTED_VMS,
    seed: int = 7,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """app -> policy -> {wall_ms, migrations, domain_bound_cores}."""
    apps = select_apps(PARSEC_APPS if apps is None else apps)
    cells = [
        (app, policy, cluster_factor, num_vms, seed)
        for app in apps
        for policy in POLICIES
    ]
    outcomes = iter(parallel_map(_run_cell, cells))
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in apps:
        results[app] = {}
        for policy in POLICIES:
            config = SchedulerConfig(
                policy=policy, cluster_factor=cluster_factor, seed=seed
            )
            outcome = next(outcomes)
            if policy == "pinned":
                bound = 4  # one core per vCPU
            elif policy == "clustered":
                bound = min(config.num_cores, round(4 * cluster_factor))
            else:
                bound = config.num_cores
            results[app][policy] = {
                "wall_ms": outcome.wall_ms,
                "migrations": float(outcome.guest_migrations),
                "domain_bound_cores": float(bound),
            }
    return results


def format_result(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    rows = []
    for app, by_policy in results.items():
        credit_ms = by_policy["credit"]["wall_ms"]
        rows.append(
            (
                app,
                f"{100 * by_policy['pinned']['wall_ms'] / credit_ms:.0f}",
                f"{100 * by_policy['clustered']['wall_ms'] / credit_ms:.0f}",
                "100",
                f"{by_policy['pinned']['domain_bound_cores']:.0f}",
                f"{by_policy['clustered']['domain_bound_cores']:.0f}",
                f"{by_policy['credit']['domain_bound_cores']:.0f}",
            )
        )
    return render_table(
        [
            "workload", "pinned %", "clustered %", "credit %",
            "domain<=(pin)", "domain<=(clust)", "domain<=(credit)",
        ],
        rows,
        title=(
            "Extension: clustered scheduling, overcommitted host "
            "(execution time normalised to credit = 100; "
            "snoop-domain bound in cores)"
        ),
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
