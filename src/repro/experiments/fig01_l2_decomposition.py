"""Figure 1 — L2 miss decomposition: hypervisor (Xen) / dom0 / guest VMs.

The paper measures this with oprofile on a real dual-socket 8-core Xen
host running two VMs of four vCPUs each. We run the coherence simulator
in the same shape (8 cores, 2 VMs x 4 vCPUs) with hypervisor and dom0
activity enabled and attribute every coherence transaction to its
initiator.

Expected shape: hypervisor+dom0 under 5 % for most PARSEC applications
(dedup ~11 %, freqmine ~8 %, raytrace ~7 %), OLTP ~15 %, SPECweb ~19 % —
always below 20 %, so virtual snooping can filter the >80 % remainder.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.tables import render_table
from repro.experiments.common import run_tasks, scaled, select_apps
from repro.sim import SimConfig, SimTask
from repro.workloads import FIG1_APPS
from repro.workloads.trace import Initiator


def fig1_config(app_seed: int = 42) -> SimConfig:
    """The Section III host shape: 8 cores, 2 VMs x 4 vCPUs."""
    return SimConfig(
        num_cores=8,
        mesh_width=4,
        mesh_height=2,
        num_vms=2,
        vcpus_per_vm=4,
        hypervisor_activity_enabled=True,
        content_sharing_enabled=False,
        accesses_per_vcpu=scaled(24_000),
        warmup_accesses_per_vcpu=scaled(6_000),
        seed=app_seed,
    )


def run(apps: List[str] = None) -> Dict[str, Dict[str, float]]:
    """Per-app miss decomposition, in percent of coherence transactions."""
    apps = select_apps(FIG1_APPS if apps is None else apps)
    tasks = [SimTask(fig1_config(), app) for app in apps]
    results: Dict[str, Dict[str, float]] = {}
    for app, stats in zip(apps, run_tasks(tasks, label="fig1")):
        shares = stats.miss_decomposition_by_initiator()
        results[app] = {
            "guest": 100.0 * shares[Initiator.GUEST],
            "dom0": 100.0 * shares[Initiator.DOM0],
            "xen": 100.0 * shares[Initiator.HYPERVISOR],
        }
    return results


def format_result(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        (app, f"{r['guest']:.1f}", f"{r['dom0']:.1f}", f"{r['xen']:.1f}",
         f"{r['dom0'] + r['xen']:.1f}")
        for app, r in results.items()
    ]
    return render_table(
        ["workload", "guest %", "dom0 %", "xen %", "dom0+xen %"],
        rows,
        title="Figure 1: L2 miss decomposition by initiator",
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
