"""Table IV and Figure 6 — ideally pinned VMs (Section V-B).

Each VM runs on a fixed set of four cores; no migration, no hypervisor,
no content sharing — all snoops are to VM-private pages, so virtual
snooping always multicasts to exactly 4 of 16 cores (the ideal 75 %
snoop reduction). The interesting measurements are:

* **Table IV** — total network traffic (data + coherence messages)
  versus broadcasting TokenB: the paper reports a uniform 62-65 %
  reduction.
* **Figure 6** — execution time normalised to TokenB: small gains
  (0.2-9.1 %, average 3.8 %) since this configuration does not saturate
  the network; filtering mainly removes tag-lookup power and traffic.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.core.filter import SnoopPolicy
from repro.experiments.common import run_tasks, scaled, select_apps
from repro.sim import SimConfig, SimTask
from repro.workloads import COHERENCE_APPS


def pinned_config(policy: SnoopPolicy, seed: int = 42) -> SimConfig:
    return SimConfig(
        snoop_policy=policy,
        accesses_per_vcpu=scaled(12_000),
        warmup_accesses_per_vcpu=scaled(6_000),
        seed=seed,
    )


def run(apps: Optional[List[str]] = None, seed: int = 42) -> Dict[str, Dict[str, float]]:
    """app -> traffic/runtime/snoop metrics of vsnoop vs TokenB."""
    apps = select_apps(COHERENCE_APPS if apps is None else apps)
    tasks = []
    for app in apps:
        tasks.append(SimTask(pinned_config(SnoopPolicy.BROADCAST, seed), app))
        tasks.append(SimTask(pinned_config(SnoopPolicy.VSNOOP_BASE, seed), app))
    stats = iter(run_tasks(tasks, label="tab4_fig6"))
    results: Dict[str, Dict[str, float]] = {}
    for app in apps:
        base = next(stats)
        vsnoop = next(stats)
        results[app] = {
            "traffic_reduction_pct": 100.0 * (1 - vsnoop.network_bytes / base.network_bytes),
            "snoop_reduction_pct": 100.0 * (1 - vsnoop.total_snoops / base.total_snoops),
            "runtime_norm_pct": 100.0 * vsnoop.execution_cycles / base.execution_cycles,
            "base_bytes": float(base.network_bytes),
            "vsnoop_bytes": float(vsnoop.network_bytes),
        }
    return results


def format_table4(results: Dict[str, Dict[str, float]]) -> str:
    rows = [(app, f"{r['traffic_reduction_pct']:.2f}") for app, r in results.items()]
    values = [r["traffic_reduction_pct"] for r in results.values()]
    if values:
        rows.append(("average", f"{sum(values) / len(values):.2f}"))
    return render_table(
        ["workload", "traffic reduction (%)"],
        rows,
        title="Table IV: network traffic reduction, ideally pinned VMs",
    )


def format_figure6(results: Dict[str, Dict[str, float]]) -> str:
    rows = [(app, f"{r['runtime_norm_pct']:.1f}") for app, r in results.items()]
    values = [r["runtime_norm_pct"] for r in results.values()]
    if values:
        rows.append(("average", f"{sum(values) / len(values):.1f}"))
    return render_table(
        ["workload", "runtime vs TokenB (%)"],
        rows,
        title="Figure 6: execution time normalised to TokenB = 100",
    )


def main() -> None:
    results = run()
    print(format_table4(results))
    print()
    print(format_figure6(results))


if __name__ == "__main__":
    main()
