"""Workload pattern study — scenario suites x snoop policies.

Sweeps the named scenario suites (:mod:`repro.workloads.suites`) under
all four snoop policies on a migration-enabled 16-core host with content
sharing and hypervisor activity on — the full multi-tenant consolidation
setting Virtual Snooping targets, but with service-style pattern
workloads (web/data-lake/backup/KV mixes) instead of the paper's 13
calibrated applications. Per cell it reports the miss rate, snoops as a
percentage of broadcast, the filtered-snoop fraction, network bytes per
transaction, COW events and migrations — how far the VM-domain filter
holds up when tenant locality ranges from Zipfian front ends to
sequential backup sweeps.

Cells ride the campaign machinery (``repro-sim experiment patterns
--out DIR`` checkpoints each cell and writes a manifest).

``PATTERN_SMOKE=1`` shrinks the sweep to the cloud-mix suite with a tiny
budget and the coherence sanitizer asserting on every transaction — the
CI pattern-differential configuration.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.core.filter import SnoopPolicy
from repro.experiments.common import normalized_snoops_percent, run_tasks, scaled
from repro.sim import SimConfig, SimTask
from repro.workloads.suites import SUITE_NAMES

POLICIES = tuple(SnoopPolicy)

# The app name is required by the task plumbing but pattern configs
# ignore the profile for memory behaviour; fft keeps task keys stable.
APP = "fft"


def smoke_mode() -> bool:
    """CI pattern smoke: cloud-mix only, tiny budget, sanitizer on."""
    return os.environ.get("PATTERN_SMOKE", "") not in ("", "0")


def pattern_config(
    suite: str,
    policy: SnoopPolicy,
    seed: int = 42,
    accesses: Optional[int] = None,
    warmup: Optional[int] = None,
) -> SimConfig:
    smoke = smoke_mode()
    return SimConfig(
        suite=suite,
        snoop_policy=policy,
        content_sharing_enabled=True,
        hypervisor_activity_enabled=True,
        # The migration-study cache scaling, so maps grow and counters
        # drain within a tractable access budget.
        l1_size=4 * 1024,
        l2_size=32 * 1024,
        cycles_per_ms=84_000,
        migration_period_ms=0.5,
        accesses_per_vcpu=(
            accesses if accesses is not None
            else 1_200 if smoke else scaled(12_000, factor=2)
        ),
        warmup_accesses_per_vcpu=(
            warmup if warmup is not None
            else 400 if smoke else scaled(4_000, factor=2)
        ),
        sanitize=smoke,
        seed=seed,
    )


def run(
    suites: Optional[Sequence[str]] = None,
    policies: Sequence[SnoopPolicy] = POLICIES,
    seed: int = 42,
    accesses: Optional[int] = None,
    warmup: Optional[int] = None,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """suite -> policy-name -> metrics."""
    if suites is None:
        suites = ("cloud-mix",) if smoke_mode() else SUITE_NAMES
    tasks = [
        SimTask(pattern_config(suite, policy, seed, accesses, warmup), APP)
        for suite in suites
        for policy in policies
    ]
    all_stats = iter(run_tasks(tasks, label="patterns"))
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for suite in suites:
        results[suite] = {}
        for policy in policies:
            stats = next(all_stats)
            transactions = stats.total_transactions or 1
            cores = 16
            results[suite][policy.value] = {
                "miss_rate": stats.miss_rate(),
                "snoops_norm_pct": normalized_snoops_percent(stats, cores),
                "filtered_snoop_fraction": (
                    1.0 - stats.total_snoops / (cores * transactions)
                ),
                "traffic_bytes_per_transaction": (
                    stats.network_bytes / transactions
                ),
                "cow_events": float(stats.cow_events),
                "migrations": float(stats.migrations),
            }
    return results


def format_patterns(results) -> str:
    headers = [
        "suite", "policy", "miss rate", "snoops %bcast", "filtered",
        "B/transaction", "cow", "migrations",
    ]
    rows: List[List[str]] = []
    for suite in results:
        for policy in POLICIES:
            cell = results[suite].get(policy.value)
            if cell is None:
                continue
            rows.append([
                suite,
                policy.value,
                f"{cell['miss_rate']:.4f}",
                f"{cell['snoops_norm_pct']:.1f}",
                f"{cell['filtered_snoop_fraction']:.3f}",
                f"{cell['traffic_bytes_per_transaction']:.0f}",
                f"{cell['cow_events']:.0f}",
                f"{cell['migrations']:.0f}",
            ])
    return render_table(
        headers,
        rows,
        title="Workload pattern suites: snoop filtering across service "
        "mixes (16 cores, migrations every 0.5 ms, content sharing on)",
    )


def main() -> None:
    print(format_patterns(run()))


if __name__ == "__main__":
    main()
