"""Figures 7, 8 and 9 — the VM relocation study (Section V-C).

Every ``period`` ms two vCPUs of different VMs exchange physical cores
(the paper's approximation of credit-scheduler churn). Three virtual
snooping variants are compared, normalised to broadcasting TokenB:

* ``vsnoop-base`` — never removes old cores from vCPU maps; degrades
  toward broadcast as maps grow (badly at 0.5/0.1 ms).
* ``counter`` — per-VM residence counters remove a core once drained;
  stays near the ideal 25 % at 5/2.5 ms and still filters at 0.1 ms.
* ``counter-threshold`` — speculative removal below a 10-line threshold
  with TokenB-retry fallback; only slightly better than ``counter``.

Figure 9 is the CDF of the old-core removal period measured in the
``counter`` runs: most removals complete within ~10 ms; blackscholes'
counters never reach zero.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.core.filter import SnoopPolicy
from repro.experiments.common import (
    normalized_snoops_percent,
    run_tasks,
    scaled,
    select_apps,
)
from repro.sim import SimConfig, SimTask
from repro.workloads import COHERENCE_APPS

FIG7_PERIODS_MS = (5.0, 2.5)
FIG8_PERIODS_MS = (0.5, 0.1)
POLICIES = (
    SnoopPolicy.VSNOOP_BASE,
    SnoopPolicy.VSNOOP_COUNTER,
    SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
)


def migration_config(
    policy: SnoopPolicy, period_ms: float, seed: int = 42
) -> SimConfig:
    return SimConfig.migration_study(
        snoop_policy=policy,
        migration_period_ms=period_ms,
        # Fast mode shrinks these only 2x (not the default 4x): the
        # counter mechanism needs enough measured cycles to drain old
        # cores mid-run, or the Figure 7/8 policy gaps collapse to zero.
        accesses_per_vcpu=scaled(50_000, factor=2),
        warmup_accesses_per_vcpu=scaled(8_000, factor=2),
        seed=seed,
    )


def run(
    apps: Optional[List[str]] = None,
    periods_ms: Sequence[float] = FIG7_PERIODS_MS + FIG8_PERIODS_MS,
    policies: Sequence[SnoopPolicy] = POLICIES,
    seed: int = 42,
) -> Dict[str, Dict[float, Dict[str, Dict[str, object]]]]:
    """app -> period -> policy-name -> {snoops_norm_pct, removal_periods_ms}."""
    apps = select_apps(COHERENCE_APPS if apps is None else apps)
    tasks = [
        SimTask(migration_config(policy, period, seed), app)
        for app in apps
        for period in periods_ms
        for policy in policies
    ]
    all_stats = iter(run_tasks(tasks, label="fig7_8_9"))
    results: Dict[str, Dict[float, Dict[str, Dict[str, object]]]] = {}
    for app in apps:
        results[app] = {}
        for period in periods_ms:
            results[app][period] = {}
            for policy in policies:
                config = migration_config(policy, period, seed)
                stats = next(all_stats)
                removal_ms = [
                    cycles / config.cycles_per_ms
                    for cycles in stats.removal_periods_cycles
                ]
                results[app][period][policy.value] = {
                    "snoops_norm_pct": normalized_snoops_percent(
                        stats, config.num_cores
                    ),
                    "removal_periods_ms": removal_ms,
                    "migrations": stats.migrations,
                }
    return results


def format_figures(results, periods_ms: Sequence[float], title: str) -> str:
    headers = ["workload", "period"] + [p.value for p in POLICIES]
    rows = []
    for app, by_period in results.items():
        for period in periods_ms:
            if period not in by_period:
                continue
            row = [app, f"{period}ms"]
            for policy in POLICIES:
                cell = by_period[period].get(policy.value)
                row.append("-" if cell is None else f"{cell['snoops_norm_pct']:.1f}")
            rows.append(row)
    return render_table(
        headers, rows, title=f"{title} (snoops, % of TokenB; ideal = 25)"
    )


def removal_cdf(
    results, period_ms: float = 5.0, policy: SnoopPolicy = SnoopPolicy.VSNOOP_COUNTER
) -> Dict[str, List[float]]:
    """Figure 9 input: app -> sorted removal periods (ms) at ``period_ms``."""
    cdf: Dict[str, List[float]] = {}
    for app, by_period in results.items():
        cell = by_period.get(period_ms, {}).get(policy.value)
        if cell is not None:
            cdf[app] = sorted(cell["removal_periods_ms"])
    return cdf


def format_figure9(cdf: Dict[str, List[float]], markers=(5.0, 10.0, 20.0, 30.0)) -> str:
    headers = ["workload", "removals"] + [f"<= {m:.0f}ms" for m in markers]
    rows = []
    for app, periods in cdf.items():
        total = len(periods)
        row = [app, str(total)]
        for marker in markers:
            if total == 0:
                row.append("-")
            else:
                row.append(f"{100.0 * sum(1 for p in periods if p <= marker) / total:.0f}%")
        rows.append(row)
    return render_table(
        headers,
        rows,
        title="Figure 9: CDF of old-core removal period after relocation "
        "(counter, 5ms migrations)",
    )


def main() -> None:
    results = run()
    print(format_figures(results, FIG7_PERIODS_MS, "Figure 7: 5/2.5ms migrations"))
    print()
    print(format_figures(results, FIG8_PERIODS_MS, "Figure 8: 0.5/0.1ms migrations"))
    print()
    print(format_figure9(removal_cdf(results)))


if __name__ == "__main__":
    main()
