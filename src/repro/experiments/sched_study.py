"""Figure 3 and Table I — the scheduler study (Section III).

Runs the credit-scheduler simulation for each PARSEC application on an
8-core host, undercommitted (2 VMs x 4 vCPUs) and overcommitted (4 VMs x
4 vCPUs), under the two policies the paper compares:

* ``no migration`` — one-to-one vCPU pinning,
* ``full migration`` — the credit scheduler with global load balancing.

Expected shapes: pinning is as good or better when undercommitted
(Figure 3a), migration wins clearly when overcommitted (Figure 3b), and
relocation periods (Table I) are much shorter overcommitted, spanning
milliseconds (pipeline apps like dedup/vips) to seconds (blackscholes,
swaptions, freqmine).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.experiments.common import fast_mode, select_apps
from repro.hypervisor.scheduler import CreditSchedulerSim, SchedulerConfig
from repro.sim import parallel_map
from repro.workloads import PARSEC_APPS, get_profile

UNDERCOMMITTED_VMS = 2
OVERCOMMITTED_VMS = 4


def run_one(app: str, num_vms: int, policy: str, seed: int = 7):
    profile = get_profile(app)
    if fast_mode():
        profile = _shorter(profile)
    config = SchedulerConfig(policy=policy, seed=seed)
    return CreditSchedulerSim(config, profile, num_vms=num_vms).run()


def _run_cell(args):
    """Picklable single-argument adapter for the parallel fan-out."""
    return run_one(*args)


def _shorter(profile):
    from dataclasses import replace

    return replace(profile, work_ms_per_vcpu=profile.work_ms_per_vcpu / 4)


def run(apps: Optional[List[str]] = None, seed: int = 7) -> Dict[str, Dict[str, Dict[str, float]]]:
    """app -> {"under"|"over"} -> metrics.

    Metrics: ``pinned_ms``, ``credit_ms``, ``pinned_norm_pct`` (pinned
    wall time normalised to credit = 100), ``relocation_period_ms`` (of
    the credit run), ``migrations``.
    """
    apps = select_apps(PARSEC_APPS if apps is None else apps)
    commitments = (("under", UNDERCOMMITTED_VMS), ("over", OVERCOMMITTED_VMS))
    cells = [
        (app, num_vms, policy, seed)
        for app in apps
        for _, num_vms in commitments
        for policy in ("pinned", "credit")
    ]
    outcomes = iter(parallel_map(_run_cell, cells))
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for app in apps:
        results[app] = {}
        for label, _ in commitments:
            pinned = next(outcomes)
            credit = next(outcomes)
            results[app][label] = {
                "pinned_ms": pinned.wall_ms,
                "credit_ms": credit.wall_ms,
                "pinned_norm_pct": 100.0 * pinned.wall_ms / credit.wall_ms,
                "relocation_period_ms": credit.relocation_period_ms,
                "migrations": float(credit.guest_migrations),
            }
    return results


def format_figure3(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    rows = [
        (
            app,
            f"{r['under']['pinned_norm_pct']:.0f}",
            f"{r['over']['pinned_norm_pct']:.0f}",
        )
        for app, r in results.items()
    ]
    return render_table(
        ["workload", "undercommitted (a)", "overcommitted (b)"],
        rows,
        title=(
            "Figure 3: 'no migration' execution time, normalised to "
            "'full migration' = 100"
        ),
    )


def format_table1(results: Dict[str, Dict[str, Dict[str, float]]]) -> str:
    rows = []
    for app, r in results.items():
        rows.append(
            (
                app,
                _fmt_period(r["under"]["relocation_period_ms"]),
                _fmt_period(r["over"]["relocation_period_ms"]),
            )
        )
    under = [r["under"]["relocation_period_ms"] for r in results.values()]
    over = [r["over"]["relocation_period_ms"] for r in results.values()]
    finite_under = [p for p in under if p != float("inf")]
    finite_over = [p for p in over if p != float("inf")]
    if finite_under and finite_over:
        rows.append(
            (
                "average",
                f"{sum(finite_under) / len(finite_under):.1f}",
                f"{sum(finite_over) / len(finite_over):.1f}",
            )
        )
    return render_table(
        ["workload", "undercommit. (ms)", "overcommit. (ms)"],
        rows,
        title="Table I: average VM relocation periods",
    )


def _fmt_period(period: float) -> str:
    return "inf" if period == float("inf") else f"{period:.1f}"


def main() -> None:
    results = run()
    print(format_figure3(results))
    print()
    print(format_table1(results))


if __name__ == "__main__":
    main()
