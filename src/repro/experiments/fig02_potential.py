"""Figure 2 — potential snoop reductions vs VM count and hypervisor ratio.

Closed-form (see :mod:`repro.analysis.potential`): with 4 vCPUs per VM
and v VMs on 4v cores, reduction = (1-h)(1 - 1/v). Expected shape: the
ideal 16-VM / 64-core point exceeds 93 %, and 5-10 % hypervisor ratios
keep 84-89 %.
"""

from __future__ import annotations

from typing import Dict, List

from repro.analysis.potential import HYPERVISOR_RATIOS, VM_COUNTS, figure2_series
from repro.analysis.tables import render_table


def run(
    vm_counts=VM_COUNTS, hypervisor_ratios=HYPERVISOR_RATIOS
) -> Dict[float, List[float]]:
    """Curves: hypervisor ratio -> reduction % per VM count (4 vCPUs/VM)."""
    return figure2_series(vm_counts, 4, hypervisor_ratios)


def format_result(series: Dict[float, List[float]], vm_counts=VM_COUNTS) -> str:
    headers = ["hyp ratio"] + [f"{v} VMs ({4*v} cores)" for v in vm_counts]
    rows = []
    for ratio, values in series.items():
        label = "ideal" if ratio == 0.0 else f"{ratio:.0%}"
        rows.append([label] + [f"{value:.1f}" for value in values])
    return render_table(
        headers, rows, title="Figure 2: potential snoop reduction (%)"
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
