"""Table V, Table VI and Figure 10 — content-based sharing (Section VI).

Four VMs run the same application with an ideal content-sharing scanner
(every identical page merged, as the paper's "more aggressive than
commercial hypervisors" setup). Measurements:

* **Table V** — share of L1 accesses and of L2 misses falling on
  content-shared pages. Only fft / blackscholes / canneal / specjbb have
  >30 % content-shared misses.
* **Table VI** — for L2 misses on content-shared pages, where a copy
  could have come from: any cache, a cache of the requesting VM, a cache
  of the friend VM, or only memory.
* **Figure 10** — expected snoops of the three read-only optimisations
  (memory-direct / intra-VM / friend-VM) against vsnoop-broadcast,
  normalised to TokenB. memory-direct snoops least (often below the
  ideal 25 %); all three beat broadcasting content-shared requests.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.experiments.common import (
    normalized_snoops_percent,
    run_tasks,
    scaled,
    select_apps,
)
from repro.mem.pagetype import PageType
from repro.sim import SimConfig, SimTask
from repro.workloads import CONTENT_APPS

CONTENT_POLICIES = (
    ContentPolicy.BROADCAST,
    ContentPolicy.MEMORY_DIRECT,
    ContentPolicy.INTRA_VM,
    ContentPolicy.FRIEND_VM,
)


def content_config(
    content_policy: ContentPolicy = ContentPolicy.BROADCAST, seed: int = 42
) -> SimConfig:
    return SimConfig(
        snoop_policy=SnoopPolicy.VSNOOP_BASE,
        content_policy=content_policy,
        content_sharing_enabled=True,
        accesses_per_vcpu=scaled(12_000),
        warmup_accesses_per_vcpu=scaled(6_000),
        seed=seed,
    )


def run_sharing_stats(
    apps: Optional[List[str]] = None, seed: int = 42
) -> Dict[str, Dict[str, float]]:
    """Tables V and VI from one vsnoop-broadcast run per app."""
    apps = select_apps(CONTENT_APPS if apps is None else apps)
    tasks = [
        SimTask(content_config(ContentPolicy.BROADCAST, seed), app) for app in apps
    ]
    results: Dict[str, Dict[str, float]] = {}
    for app, stats in zip(apps, run_tasks(tasks, label="tab5_tab6")):
        ro_misses = max(stats.coherence.ro_misses, 1)
        results[app] = {
            # Table V
            "l1_access_pct": 100.0 * stats.l1_access_share(PageType.RO_SHARED),
            "l2_miss_pct": 100.0 * stats.l2_miss_share(PageType.RO_SHARED),
            # Table VI
            "holder_cache_pct": 100.0 * stats.coherence.ro_holder_any_cache / ro_misses,
            "holder_intra_pct": 100.0 * stats.coherence.ro_holder_intra_vm / ro_misses,
            "holder_friend_pct": 100.0 * stats.coherence.ro_holder_friend_vm / ro_misses,
            "holder_memory_pct": 100.0 * stats.coherence.ro_holder_memory_only / ro_misses,
        }
    return results


def run_policy_comparison(
    apps: Optional[List[str]] = None, seed: int = 42
) -> Dict[str, Dict[str, float]]:
    """Figure 10: app -> content-policy name -> normalised snoops (%)."""
    apps = select_apps(CONTENT_APPS if apps is None else apps)
    tasks = [
        SimTask(content_config(policy, seed), app)
        for app in apps
        for policy in CONTENT_POLICIES
    ]
    all_stats = iter(run_tasks(tasks, label="fig10"))
    results: Dict[str, Dict[str, float]] = {}
    for app in apps:
        results[app] = {}
        for policy in CONTENT_POLICIES:
            stats = next(all_stats)
            results[app][policy.value] = normalized_snoops_percent(stats, 16)
    return results


def format_table5(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        (app, f"{r['l1_access_pct']:.2f}", f"{r['l2_miss_pct']:.2f}")
        for app, r in results.items()
    ]
    values_a = [r["l1_access_pct"] for r in results.values()]
    values_m = [r["l2_miss_pct"] for r in results.values()]
    if values_a:
        rows.append(
            ("average", f"{sum(values_a)/len(values_a):.2f}", f"{sum(values_m)/len(values_m):.2f}")
        )
    return render_table(
        ["workload", "L1 access (%)", "L2 miss (%)"],
        rows,
        title="Table V: accesses and misses on content-shared pages",
    )


def format_table6(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        (
            app,
            f"{r['holder_cache_pct']:.1f}",
            f"{r['holder_intra_pct']:.1f}",
            f"{r['holder_friend_pct']:.1f}",
            f"{r['holder_memory_pct']:.1f}",
        )
        for app, r in results.items()
    ]
    return render_table(
        ["workload", "cache: all", "cache: intra-VM", "cache: friend-VM", "memory"],
        rows,
        title="Table VI: potential data holders for content-shared misses (%)",
    )


def format_figure10(results: Dict[str, Dict[str, float]]) -> str:
    headers = ["workload"] + [p.value for p in CONTENT_POLICIES]
    rows = []
    for app, by_policy in results.items():
        rows.append([app] + [f"{by_policy[p.value]:.1f}" for p in CONTENT_POLICIES])
    if results:
        avg_row = ["average"]
        for policy in CONTENT_POLICIES:
            values = [r[policy.value] for r in results.values()]
            avg_row.append(f"{sum(values)/len(values):.1f}")
        rows.append(avg_row)
    return render_table(
        headers,
        rows,
        title="Figure 10: snoops under content-shared policies (% of TokenB)",
    )


def main() -> None:
    sharing = run_sharing_stats()
    print(format_table5(sharing))
    print()
    print(format_table6(sharing))
    print()
    print(format_figure10(run_policy_comparison()))


if __name__ == "__main__":
    main()
