"""Shared infrastructure for the per-figure experiment drivers.

Every driver returns plain dicts/lists so tests and the benchmark
harness can assert on them, and exposes a ``main()`` that prints the
same rows/series the paper's figure or table reports.

Drivers fan their simulation matrices out through
:mod:`repro.sim.runner`: build the full (config, app) task list, run it
with :func:`run_tasks`, and zip the (input-ordered) results back. The
job count comes from ``repro-sim --jobs`` / ``REPRO_JOBS``; results are
bit-identical at any job count.

Set ``REPRO_FAST=1`` to shrink run lengths (quarter-size traces, subset
of applications) for quick smoke runs of the benchmark suite.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence

from repro.sim import SimConfig, SimStats, SimTask, run_matrix, run_simulation_task


def fast_mode() -> bool:
    """Whether the benchmark suite runs in reduced-size mode."""
    return os.environ.get("REPRO_FAST", "") not in ("", "0")


def scaled(accesses: int, factor: int = 4) -> int:
    """Shrink an access budget in fast mode."""
    return accesses // factor if fast_mode() else accesses


def select_apps(apps: List[str], fast_subset: int = 3) -> List[str]:
    """Full application list, or a deterministic subset in fast mode."""
    return apps[:fast_subset] if fast_mode() else list(apps)


def run_app(config: SimConfig, app: str) -> SimStats:
    """Build, run, and return the statistics of one configuration."""
    return run_simulation_task(SimTask(config, app))


def run_tasks(
    tasks: Sequence[SimTask],
    jobs: Optional[int] = None,
    label: Optional[str] = None,
) -> List[SimStats]:
    """Run a driver's task matrix; results align index-for-index.

    ``label`` names the matrix in campaign manifests and progress lines
    when a checkpoint directory is active (``repro-sim experiment
    --out`` or ``REPRO_CAMPAIGN_DIR``); checkpointed cells are skipped
    on resume and a failing cell raises
    :class:`~repro.sim.runner.TaskError` identifying the task.
    """
    return run_matrix(tasks, jobs=jobs, label=label)


def normalized_snoops_percent(stats: SimStats, num_cores: int) -> float:
    """Snoops as a percentage of a broadcast protocol's snoops.

    The TokenB baseline snoops every core's tags on every transaction, so
    its snoop count is ``num_cores * transactions``; this normalisation
    avoids re-running the baseline when only the ratio is needed.
    """
    transactions = stats.total_transactions
    if transactions == 0:
        return 0.0
    return 100.0 * stats.total_snoops / (num_cores * transactions)
