"""Extension — virtual snooping vs RegionScout under migration.

The paper's related-work section argues virtual snooping needs no
per-core filtering tables because VM boundaries are free, while
region-based filters (RegionScout et al.) pay hardware but are oblivious
to virtualization. This experiment quantifies the flip side: RegionScout
keys on *addresses*, so vCPU migration does not hurt it, whereas virtual
snooping's vCPU maps dilate until the residence counters catch up.

For each application the two filters run pinned (no migration) and with
aggressive 0.1 ms migrations, reporting snoops normalised to TokenB.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.tables import render_table
from repro.core.filter import SnoopPolicy
from repro.experiments.common import (
    normalized_snoops_percent,
    run_tasks,
    scaled,
    select_apps,
)
from repro.sim import SimConfig, SimTask

DEFAULT_APPS = ["fft", "ocean", "radix", "canneal", "specjbb"]


def _config(filter_kind: str, policy: SnoopPolicy, period_ms: Optional[float], seed: int):
    return SimConfig.migration_study(
        filter_kind=filter_kind,
        snoop_policy=policy,
        migration_period_ms=period_ms,
        accesses_per_vcpu=scaled(30_000),
        seed=seed,
    )


def run(apps: Optional[List[str]] = None, seed: int = 42) -> Dict[str, Dict[str, float]]:
    """app -> {vsnoop_pinned, vsnoop_migrating, regionscout_pinned,
    regionscout_migrating} — snoops, % of TokenB."""
    apps = select_apps(DEFAULT_APPS if apps is None else apps)
    variants = (
        ("vsnoop_pinned", "vsnoop", None),
        ("vsnoop_migrating", "vsnoop", 0.1),
        ("regionscout_pinned", "regionscout", None),
        ("regionscout_migrating", "regionscout", 0.1),
    )
    tasks = []
    for app in apps:
        for _, filter_kind, period in variants:
            config = _config(filter_kind, SnoopPolicy.VSNOOP_COUNTER, period, seed)
            tasks.append(SimTask(config, app))
    pairs = iter(zip(tasks, run_tasks(tasks, label="regionscout")))
    results: Dict[str, Dict[str, float]] = {}
    for app in apps:
        row: Dict[str, float] = {}
        for label, _, _ in variants:
            task, stats = next(pairs)
            row[label] = normalized_snoops_percent(stats, task.config.num_cores)
        results[app] = row
    return results


def format_result(results: Dict[str, Dict[str, float]]) -> str:
    rows = [
        (
            app,
            f"{r['vsnoop_pinned']:.1f}",
            f"{r['vsnoop_migrating']:.1f}",
            f"{r['regionscout_pinned']:.1f}",
            f"{r['regionscout_migrating']:.1f}",
        )
        for app, r in results.items()
    ]
    return render_table(
        [
            "workload",
            "vsnoop (pinned)",
            "vsnoop (0.1ms)",
            "regionscout (pinned)",
            "regionscout (0.1ms)",
        ],
        rows,
        title=(
            "Extension: virtual snooping vs RegionScout "
            "(snoops, % of TokenB; lower is better)"
        ),
    )


def main() -> None:
    print(format_result(run()))


if __name__ == "__main__":
    main()
