"""Cross-run result store: compute each simulation cell once, ever.

The PR 2 checkpoints made one *campaign* resumable; this module makes
results global. A :class:`ResultStore` is a content-addressed directory
(default ``~/.cache/repro``, overridden by the ``REPRO_STORE``
environment variable) holding two kinds of entries:

* **results** — the ``SimStats`` of one (config, app) cell, keyed by the
  same stable ``task_key`` hash the checkpoints use. Any entry point
  that funnels through :func:`repro.sim.runner.run_simulation_task` —
  ``run_matrix``, the CLI ``run``/``experiment`` subcommands, every
  experiment driver, the benchmark harness — reuses them.
* **warm-state snapshots** — the post-warmup architectural state of a
  simulated system (:meth:`repro.sim.system.SimulatedSystem.snapshot`),
  keyed by a *warmup fingerprint*: the config minus fields provably
  inert before measurement begins. A period sweep warms once and forks.

Trust model
-----------

Every entry embeds three things the loader verifies before serving:

1. ``state_version`` — the :data:`STATE_VERSION` stamp below, bumped by
   hand whenever simulation semantics change. A stale entry is *not* a
   cache hit for the new semantics, however well it parses.
2. its own key — guards against files renamed or copied into place.
3. the full identity payload (config dict + app) that produced the key —
   guards against the 64-bit truncated hash colliding: two different
   configs mapping to the same key are detected by comparing the configs
   themselves, and the entry is skipped rather than served to the wrong
   cell.

A failed check is **skipped loudly**: one line on stderr naming the
entry and the reason, a bump of the ``skipped`` counter, and a miss —
mirroring the ``_load_checkpoint`` hardening, but never silent, because
a store serves many campaigns and a corrupt entry would otherwise cost
every one of them a recompute with no trace of why.

Hit/miss/skip counters accumulate per store instance; campaign manifests
and ``repro-sim profile`` surface them so reuse wins are visible instead
of inferred.
"""

from __future__ import annotations

import json
import os
import pickle
import sys
from pathlib import Path
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - typing only
    # Imported lazily at runtime: repro.sim.runner imports this module
    # at import time, so a top-level import of anything under repro.sim
    # would be circular whenever repro.store is imported first.
    from repro.sim.stats import SimStats

STORE_ENV_VAR = "REPRO_STORE"
SNAPSHOT_ENV_VAR = "REPRO_SNAPSHOTS"

# Bump whenever a change alters what any simulation computes (new
# coherence behaviour, workload generation change, stats semantics...).
# Entries stamped with an older version are skipped, never served.
# Performance-only rewrites that are proven bit-identical (e.g. by the
# golden corpus) do NOT need a bump. See DESIGN.md for the convention.
STATE_VERSION = 1

_DISABLED_VALUES = {"0", "off", "none", "disabled"}

_RESULT_FORMAT = 1
_SNAPSHOT_FORMAT = 1


def store_root() -> Optional[Path]:
    """The configured store directory, or ``None`` when disabled.

    Unset/empty ``REPRO_STORE`` means the default ``~/.cache/repro``;
    the sentinels ``0``/``off``/``none``/``disabled`` turn the store off
    entirely; anything else is used as the directory path.
    """
    raw = os.environ.get(STORE_ENV_VAR)
    if raw is None or raw.strip() == "":
        return Path.home() / ".cache" / "repro"
    if raw.strip().lower() in _DISABLED_VALUES:
        return None
    return Path(raw).expanduser()


def snapshots_enabled() -> bool:
    """Warm-state snapshot reuse toggle (``REPRO_SNAPSHOTS``, on by default)."""
    raw = os.environ.get(SNAPSHOT_ENV_VAR)
    if raw is None or raw.strip() == "":
        return True
    return raw.strip().lower() not in _DISABLED_VALUES


_store: Optional["ResultStore"] = None
_store_root: Optional[Path] = None


def get_store() -> Optional["ResultStore"]:
    """The process-wide store for the current ``REPRO_STORE`` setting.

    Memoised per resolved root so counters accumulate across calls, but
    re-resolved when the environment changes (tests repoint the store
    mid-process via monkeypatch).
    """
    # Safe under parallel_map: the memo is idempotent per process (keyed
    # only by the REPRO_STORE environment each worker inherits), and the
    # store itself is content-addressed on disk — workers never need to
    # see each other's in-memory handle.
    global _store, _store_root  # repro-lint: disable=RPL130; per-process env-keyed memo, idempotent
    root = store_root()
    if root is None:
        _store, _store_root = None, None
        return None
    if _store is None or _store_root != root:
        _store = ResultStore(root)
        _store_root = root
    return _store


class ResultStore:
    """One on-disk store directory; see the module docstring."""

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.results_dir = self.root / "results"
        self.snapshots_dir = self.root / "snapshots"
        # Result traffic.
        self.hits = 0
        self.misses = 0
        self.skipped = 0
        # Snapshot traffic (separate: a snapshot hit saves a warm-up, a
        # result hit saves a whole cell; conflating them would hide both).
        self.snapshot_hits = 0
        self.snapshot_misses = 0
        self.snapshot_skipped = 0

    # ------------------------------------------------------------------
    # Results.
    # ------------------------------------------------------------------

    def _result_path(self, key: str) -> Path:
        return self.results_dir / f"{key}.json"

    def has_result(self, key: str) -> bool:
        """Whether an entry file exists (no validation, no counters)."""
        return self._result_path(key).exists()

    def load_result(
        self, key: str, app: str, config_dict: dict
    ) -> Optional["SimStats"]:
        """The stored stats for this exact cell, or ``None``.

        Counts a hit, a miss (no entry), or a loud skip (entry present
        but unservable: wrong version, wrong key, identity mismatch,
        corrupt JSON).
        """
        from repro.sim.stats import SimStats

        path = self._result_path(key)
        try:
            text = path.read_text()
        except OSError:
            self.misses += 1
            return None
        try:
            payload = json.loads(text)
            reason = self._check_result(payload, key, app, config_dict)
            if reason is None:
                return self._hit(SimStats.from_dict(payload["stats"]))
        except (ValueError, KeyError, TypeError) as exc:
            reason = f"corrupt entry ({exc.__class__.__name__}: {exc})"
        self._skip("result", path, reason)
        return None

    @staticmethod
    def _check_result(
        payload: object, key: str, app: str, config_dict: dict
    ) -> Optional[str]:
        if not isinstance(payload, dict):
            return "corrupt entry (not a JSON object)"
        if payload.get("state_version") != STATE_VERSION:
            return (
                f"state_version {payload.get('state_version')!r} != "
                f"current {STATE_VERSION}"
            )
        if payload.get("format") != _RESULT_FORMAT:
            return f"format {payload.get('format')!r} != {_RESULT_FORMAT}"
        if payload.get("key") != key:
            return f"embedded key {payload.get('key')!r} != expected {key!r}"
        if payload.get("app") != app or payload.get("config") != config_dict:
            # The truncated hash collided: same key, different cell.
            return "key collision (embedded config/app differs from requested cell)"
        if "stats" not in payload:
            return "corrupt entry (no stats)"
        return None

    def save_result(self, key: str, app: str, config_dict: dict, stats: "SimStats") -> None:
        """Persist one cell atomically (rename over partial writes)."""
        payload = {
            "format": _RESULT_FORMAT,
            "state_version": STATE_VERSION,
            "key": key,
            "app": app,
            "config": config_dict,
            "stats": stats.to_dict(),
        }
        self.results_dir.mkdir(parents=True, exist_ok=True)
        path = self._result_path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Warm-state snapshots.
    # ------------------------------------------------------------------

    def _snapshot_path(self, fingerprint_key: str) -> Path:
        return self.snapshots_dir / f"{fingerprint_key}.pkl"

    def load_snapshot(
        self, fingerprint_key: str, app: str, fingerprint: dict
    ) -> Optional[dict]:
        """The stored post-warmup state for this fingerprint, or ``None``.

        Snapshots are plain-data dicts (every leaf a builtin type), so
        pickle round-trips them exactly; the same version/key/identity
        checks as results apply before anything is served.
        """
        path = self._snapshot_path(fingerprint_key)
        try:
            raw = path.read_bytes()
        except OSError:
            self.snapshot_misses += 1
            return None
        try:
            payload = pickle.loads(raw)
            reason = self._check_snapshot(payload, fingerprint_key, app, fingerprint)
            if reason is None:
                self.snapshot_hits += 1
                return payload["state"]
        except Exception as exc:  # pickle raises wildly varied types
            reason = f"corrupt entry ({exc.__class__.__name__}: {exc})"
        self.snapshot_skipped += 1
        self._warn("snapshot", path, reason)
        return None

    @staticmethod
    def _check_snapshot(
        payload: object, key: str, app: str, fingerprint: dict
    ) -> Optional[str]:
        if not isinstance(payload, dict):
            return "corrupt entry (not a dict)"
        if payload.get("state_version") != STATE_VERSION:
            return (
                f"state_version {payload.get('state_version')!r} != "
                f"current {STATE_VERSION}"
            )
        if payload.get("format") != _SNAPSHOT_FORMAT:
            return f"format {payload.get('format')!r} != {_SNAPSHOT_FORMAT}"
        if payload.get("key") != key:
            return f"embedded key {payload.get('key')!r} != expected {key!r}"
        if payload.get("app") != app or payload.get("fingerprint") != fingerprint:
            return "key collision (embedded fingerprint/app differs)"
        if "state" not in payload:
            return "corrupt entry (no state)"
        return None

    def save_snapshot(
        self, fingerprint_key: str, app: str, fingerprint: dict, state: dict
    ) -> None:
        payload = {
            "format": _SNAPSHOT_FORMAT,
            "state_version": STATE_VERSION,
            "key": fingerprint_key,
            "app": app,
            "fingerprint": fingerprint,
            "state": state,
        }
        self.snapshots_dir.mkdir(parents=True, exist_ok=True)
        path = self._snapshot_path(fingerprint_key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_bytes(pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL))
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # Accounting.
    # ------------------------------------------------------------------

    def _hit(self, stats: "SimStats") -> "SimStats":
        self.hits += 1
        return stats

    def _skip(self, kind: str, path: Path, reason: Optional[str]) -> None:
        self.skipped += 1
        self._warn(kind, path, reason)

    @staticmethod
    def _warn(kind: str, path: Path, reason: Optional[str]) -> None:
        print(
            f"[repro.store] skipping {kind} {path.name}: {reason or 'unservable'}",
            file=sys.stderr,
        )

    def counters(self) -> dict:
        """Traffic so far, in manifest/profile-ready form."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "skipped": self.skipped,
            "snapshot_hits": self.snapshot_hits,
            "snapshot_misses": self.snapshot_misses,
            "snapshot_skipped": self.snapshot_skipped,
        }
