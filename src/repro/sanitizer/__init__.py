"""Runtime coherence sanitizer: proves snoop-filter safety during runs.

Enable via ``SimConfig(sanitize=True)`` or ``repro-sim run --sanitize``.
See :mod:`repro.sanitizer.core` for the invariant catalogue.
"""

from repro.sanitizer.core import (
    MAX_KEPT_VIOLATIONS,
    CoherenceSanitizer,
    attach_sanitizer,
)
from repro.sanitizer.shadow import ShadowCache
from repro.sanitizer.violation import SanitizerCheck, SanitizerViolation

__all__ = [
    "MAX_KEPT_VIOLATIONS",
    "CoherenceSanitizer",
    "SanitizerCheck",
    "SanitizerViolation",
    "ShadowCache",
    "attach_sanitizer",
]
