"""Ground-truth shadow of every L2's contents.

One :class:`ShadowCache` per core observes the same insert/evict/
invalidate event stream the residence counters see, but keeps the *full*
line inventory (block -> VM tag) rather than mere counts — independent
of both the caches' internal structures and the token registry. The
sanitizer cross-checks all three against each other:

* the per-VM counts derived here are what the filter's
  :class:`~repro.core.residence.ResidenceTracker` counters must equal,
* the per-block holder sets derived here are what the registry's sharer
  sets and every plan's destination set are checked against,
* a full audit recomputes everything from the actual cache lines and
  verifies the shadow itself never drifted.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, FrozenSet, Set

from repro.cache.line import CacheLine
from repro.cache.setassoc import CacheObserver
from repro.core.residence import UNTRACKED_VM
from repro.sanitizer.violation import SanitizerCheck, SanitizerViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sanitizer.core import CoherenceSanitizer

EMPTY: FrozenSet[int] = frozenset()


class ShadowCache(CacheObserver):
    """Shadow inventory of one core's L2, fed by cache observer events."""

    def __init__(self, core: int, sanitizer: "CoherenceSanitizer") -> None:
        self.core = core
        self._sanitizer = sanitizer
        self.blocks: Dict[int, int] = {}  # block -> vm tag at insert time
        self.vm_counts: Dict[int, int] = {}  # vm -> tracked (non-UNTRACKED) lines

    # ------------------------------------------------------------------
    # CacheObserver interface.
    # ------------------------------------------------------------------

    def on_insert(self, line: CacheLine) -> None:
        sanitizer = self._sanitizer
        if line.block in self.blocks:
            sanitizer.report(
                SanitizerViolation(
                    SanitizerCheck.SHADOW,
                    "insert event for a block already resident in the shadow",
                    cycle=sanitizer.clock(),
                    block=line.block,
                    vm_id=line.vm_id,
                    core=self.core,
                )
            )
        self.blocks[line.block] = line.vm_id
        sanitizer.holders_of(line.block, create=True).add(self.core)
        if line.vm_id != UNTRACKED_VM:
            self.vm_counts[line.vm_id] = self.vm_counts.get(line.vm_id, 0) + 1
        sanitizer.check_tracker(self.core, line.vm_id, "insert")

    def on_evict(self, line: CacheLine) -> None:
        self._remove(line, "evict")

    def on_invalidate(self, line: CacheLine) -> None:
        self._remove(line, "invalidate")

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _remove(self, line: CacheLine, event: str) -> None:
        sanitizer = self._sanitizer
        tag = self.blocks.pop(line.block, None)
        if tag is None:
            sanitizer.report(
                SanitizerViolation(
                    SanitizerCheck.SHADOW,
                    f"{event} event for a block the shadow never saw inserted",
                    cycle=sanitizer.clock(),
                    block=line.block,
                    vm_id=line.vm_id,
                    core=self.core,
                )
            )
            return
        holders = sanitizer.holders_of(line.block)
        holders.discard(self.core)
        if not holders:
            sanitizer.drop_holders(line.block)
        if tag != UNTRACKED_VM:
            count = self.vm_counts.get(tag, 0) - 1
            if count < 0:
                sanitizer.report(
                    SanitizerViolation(
                        SanitizerCheck.SHADOW,
                        f"shadow per-VM count underflow on {event}",
                        cycle=sanitizer.clock(),
                        block=line.block,
                        vm_id=tag,
                        core=self.core,
                    )
                )
                count = 0
            if count == 0:
                self.vm_counts.pop(tag, None)
            else:
                self.vm_counts[tag] = count
        sanitizer.check_tracker(self.core, tag, event)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def count(self, vm_id: int) -> int:
        """True number of VM-tagged lines currently resident."""
        return self.vm_counts.get(vm_id, 0)

    def counts(self) -> Dict[int, int]:
        return dict(self.vm_counts)

    def resident_blocks(self) -> Set[int]:
        return set(self.blocks)
