"""Structured sanitizer violations.

Every invariant the coherence sanitizer enforces has a
:class:`SanitizerCheck` identity; a failed check raises (or, in counting
mode, records) a :class:`SanitizerViolation` carrying the full context a
post-mortem needs: cycle, block address, VM, the offending plan, and the
ground-truth holder set at the moment of the violation.

This module is deliberately dependency-free inside the package so that
:mod:`repro.sim.stats` can key its violation counters by
:class:`SanitizerCheck` without an import cycle.
"""

from __future__ import annotations

from enum import Enum
from typing import Any, Dict, Optional


class SanitizerCheck(Enum):
    """The invariant families the sanitizer enforces."""

    SNOOP_SAFETY = "snoop-safety"
    """(a) every plan's destination set covers the true holders."""

    RESIDENCE = "residence-counter"
    """(b) ResidenceTracker counts equal the true per-VM line counts."""

    STATE = "coherence-state"
    """(c) registry sharers/owner/dirty agree with cache contents (SWMR)."""

    DOMAIN = "domain-soundness"
    """(d) a VM's vCPU map covers every core holding its private data."""

    RETRY = "retry-accounting"
    """Threshold-policy filter misses are matched by charged retries."""

    SHADOW = "shadow-integrity"
    """The sanitizer's own shadow state diverged from the caches."""

    # Members are singletons; identity hash matches Enum semantics and
    # keeps violation-counter updates cheap.
    __hash__ = object.__hash__


class SanitizerViolation(AssertionError):
    """One violated coherence invariant, with full diagnostic context."""

    def __init__(
        self,
        check: SanitizerCheck,
        message: str,
        *,
        cycle: Optional[int] = None,
        block: Optional[int] = None,
        vm_id: Optional[int] = None,
        core: Optional[int] = None,
        plan: Any = None,
        holders: Any = None,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.check = check
        self.message = message
        self.cycle = cycle
        self.block = block
        self.vm_id = vm_id
        self.core = core
        self.plan = plan
        self.holders = frozenset(holders) if holders is not None else None
        self.details = dict(details) if details else {}
        super().__init__(self._format())

    def _format(self) -> str:
        parts = [f"[{self.check.value}] {self.message}"]
        context = []
        if self.cycle is not None:
            context.append(f"cycle={self.cycle}")
        if self.block is not None:
            context.append(f"block={self.block:#x}")
        if self.vm_id is not None:
            context.append(f"vm={self.vm_id}")
        if self.core is not None:
            context.append(f"core={self.core}")
        if self.holders is not None:
            context.append(f"holders={sorted(self.holders)}")
        if self.plan is not None:
            context.append(f"plan={self.plan!r}")
        for key, value in self.details.items():
            context.append(f"{key}={value!r}")
        if context:
            parts.append("(" + ", ".join(context) + ")")
        return " ".join(parts)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (for soak-run artifacts)."""
        return {
            "check": self.check.value,
            "message": self.message,
            "cycle": self.cycle,
            "block": self.block,
            "vm_id": self.vm_id,
            "core": self.core,
            "plan": repr(self.plan) if self.plan is not None else None,
            "holders": sorted(self.holders) if self.holders is not None else None,
            # details is str-keyed by construction (kwargs of report()).
            "details": {key: repr(value) for key, value in self.details.items()},  # repro-lint: disable=RPL006
        }
