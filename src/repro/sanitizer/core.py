"""The runtime coherence sanitizer.

An opt-in shadow layer (``SimConfig.sanitize`` / ``repro-sim run
--sanitize``) that maintains ground-truth line residence independently of
the caches and, on every coherence transaction, proves the snoop filter
safe:

(a) **Snoop-filter safety** — the destination sets of every
    :class:`~repro.coherence.plan.RequestPlan` cover the true holders of
    the requested block. For ``BROADCAST``, ``VSNOOP_BASE`` and
    ``VSNOOP_COUNTER`` a single attempt must already cover them; for
    ``VSNOOP_COUNTER_THRESHOLD`` a missed holder is legal only when the
    plan carries the TokenB broadcast-persistent retry path, and the
    sanitizer verifies the retry is actually charged (attempt count and
    the protocol's retry counter both advance).
(b) **Residence-counter consistency** — after every L2 insert, eviction
    and invalidation, each core's :class:`ResidenceTracker` count per VM
    equals the true number of tracked lines of that VM in the L2.
(c) **SWMR / state invariants** — the registry's sharer set for the
    requested block equals the true holder set, the owner token is held
    by a sharer or by memory, and a dirty block always has a cache owner.
(d) **Domain soundness** — under the non-speculative policies, a VM's
    vCPU map covers every core holding the VM's private data.

Content-shared (RO) reads are exempt from (a): memory is guaranteed to
hold a clean copy, so a destination set that misses holders is the
Section VI optimisation working as designed, not a filter bug.

Violations raise a structured :class:`SanitizerViolation` (mode
``"raise"``) or are counted into ``SimStats.sanitizer_violations`` for
soak runs (mode ``"count"``).
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    FrozenSet,
    List,
    Optional,
    Set,
)

from repro.cache.setassoc import CompositeObserver
from repro.coherence.plan import RequestPlan
from repro.coherence.registry import MEMORY
from repro.core.filter import SnoopPolicy, VirtualSnoopFilter
from repro.core.residence import UNTRACKED_VM, ResidenceTracker
from repro.mem.pagetype import PageType
from repro.sanitizer.shadow import ShadowCache
from repro.sanitizer.violation import SanitizerCheck, SanitizerViolation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.system import SimulatedSystem

EMPTY: FrozenSet[int] = frozenset()

#: Bound on the violation objects kept around in counting mode; the
#: counters in ``SimStats`` stay exact beyond it.
MAX_KEPT_VIOLATIONS = 50

_NON_SPECULATIVE = (
    SnoopPolicy.BROADCAST,
    SnoopPolicy.VSNOOP_BASE,
    SnoopPolicy.VSNOOP_COUNTER,
)


class CoherenceSanitizer:
    """Shadow ground truth plus the invariant checks wired around it."""

    def __init__(self, system: "SimulatedSystem", mode: str = "raise") -> None:
        if mode not in ("raise", "count"):
            raise ValueError(f"sanitize_mode must be 'raise' or 'count', got {mode!r}")
        self.system = system
        self.mode = mode
        self.clock: Callable[[], int] = lambda: 0
        self.shadows: Dict[int, ShadowCache] = {}
        self._holders: Dict[int, Set[int]] = {}
        self.violations: List[SanitizerViolation] = []
        self.counters: Dict[str, int] = {
            "plans_checked": 0,
            "transactions_checked": 0,
            "events_checked": 0,
            "filter_misses": 0,
            "retried_filter_misses": 0,
            "audits": 0,
        }
        self._plan_fn: Optional[Callable[..., RequestPlan]] = None
        self._execute_fn: Optional[Callable[..., Any]] = None
        # Observability tap: called with every violation before it is
        # raised or counted (the tracer records a ViolationEvent here).
        self.on_violation: Optional[Callable[[SanitizerViolation], None]] = None

    # ------------------------------------------------------------------
    # Wiring.
    # ------------------------------------------------------------------

    def attach(self) -> "CoherenceSanitizer":
        """Hook a shadow observer behind every L2's existing observer."""
        for core, hierarchy in self.system.caches.items():
            shadow = ShadowCache(core, self)
            self.shadows[core] = shadow
            existing = hierarchy.l2.observer
            observer = (
                CompositeObserver(existing, shadow) if existing is not None else shadow
            )
            hierarchy.l2.observer = observer
            # The hierarchy (and the engine's inlined fill path) cache the
            # observer reference; keep the alias coherent.
            hierarchy._l2_observer = observer
        return self

    def wrap_plan(
        self, plan_fn: Callable[..., RequestPlan]
    ) -> Callable[..., RequestPlan]:
        self._plan_fn = plan_fn
        return self.checked_plan

    def wrap_execute(self, execute_fn: Callable[..., Any]) -> Callable[..., Any]:
        self._execute_fn = execute_fn
        return self.checked_execute

    # ------------------------------------------------------------------
    # Shadow bookkeeping helpers (used by ShadowCache).
    # ------------------------------------------------------------------

    def holders_of(self, block: int, create: bool = False) -> Set[int]:
        """The true holder set of ``block`` (cores whose L2 has a copy)."""
        holders = self._holders.get(block)
        if holders is None:
            if not create:
                return set()
            holders = self._holders[block] = set()
        return holders

    def drop_holders(self, block: int) -> None:
        self._holders.pop(block, None)

    def check_tracker(self, core: int, vm_id: int, event: str) -> None:
        """Check (b) incrementally for the (core, vm) an event touched."""
        self.counters["events_checked"] += 1
        tracker = self._tracker(core)
        if tracker is None:
            return
        if vm_id == UNTRACKED_VM:
            # Hypervisor/dom0 lines must never reach the counters.
            if tracker.count(UNTRACKED_VM) != 0:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.RESIDENCE,
                        "residence counter tracks the UNTRACKED_VM tag",
                        cycle=self.clock(),
                        vm_id=UNTRACKED_VM,
                        core=core,
                        details={"event": event},
                    )
                )
            return
        true_count = self.shadows[core].count(vm_id)
        tracked = tracker.count(vm_id)
        if tracked != true_count:
            self.report(
                SanitizerViolation(
                    SanitizerCheck.RESIDENCE,
                    f"residence counter diverged from true residence on {event}",
                    cycle=self.clock(),
                    vm_id=vm_id,
                    core=core,
                    details={"counter": tracked, "true_count": true_count},
                )
            )

    # ------------------------------------------------------------------
    # Per-transaction checks.
    # ------------------------------------------------------------------

    def checked_plan(
        self,
        core: int,
        vm_id: int,
        page_type: PageType,
        block: Optional[int] = None,
    ) -> RequestPlan:
        """Filter-plan wrapper: produce the plan, then prove it safe."""
        assert self._plan_fn is not None
        plan = self._plan_fn(core, vm_id, page_type, block)
        self.counters["plans_checked"] += 1
        if block is not None:
            self._check_block_state(block)
            if page_type is not PageType.RO_SHARED:
                self._check_plan_safety(core, vm_id, page_type, block, plan)
        return plan

    def checked_execute(
        self,
        core: int,
        vm_id: int,
        block: int,
        is_write: bool,
        plan: RequestPlan,
        cycle: int = 0,
    ) -> Any:
        """Protocol wrapper: predict the attempt count, verify it charged."""
        assert self._execute_fn is not None
        self.counters["transactions_checked"] += 1
        expected = self._expected_attempts(core, block, is_write, plan)
        stats = self.system.protocol.stats
        retries_before = stats.retries
        outcome = self._execute_fn(core, vm_id, block, is_write, plan, cycle=cycle)
        if expected is not None:
            if outcome.attempts_used != expected:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.RETRY,
                        "transaction used a different attempt count than the "
                        "token state requires",
                        cycle=cycle,
                        block=block,
                        vm_id=vm_id,
                        core=core,
                        plan=plan,
                        details={
                            "expected_attempts": expected,
                            "attempts_used": outcome.attempts_used,
                        },
                    )
                )
            elif stats.retries - retries_before != expected - 1:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.RETRY,
                        "retry counter was not charged for a failed attempt",
                        cycle=cycle,
                        block=block,
                        vm_id=vm_id,
                        core=core,
                        plan=plan,
                        details={
                            "expected_retries": expected - 1,
                            "charged_retries": stats.retries - retries_before,
                        },
                    )
                )
            if expected > 1:
                self.counters["retried_filter_misses"] += 1
        return outcome

    # ------------------------------------------------------------------
    # The individual invariants.
    # ------------------------------------------------------------------

    def _check_plan_safety(
        self,
        core: int,
        vm_id: int,
        page_type: PageType,
        block: int,
        plan: RequestPlan,
    ) -> None:
        """(a) destination sets cover true holders; (d) domain soundness."""
        holders = self._holders.get(block)
        if not holders:
            return
        needed = holders - {core}
        if not needed:
            return
        union: FrozenSet[int] = frozenset().union(*plan.attempts)
        missed = needed - union
        if missed:
            self.report(
                SanitizerViolation(
                    SanitizerCheck.SNOOP_SAFETY,
                    "plan misses holders with no attempt that could reach them",
                    cycle=self.clock(),
                    block=block,
                    vm_id=vm_id,
                    core=core,
                    plan=plan,
                    holders=holders,
                    details={"missed": sorted(missed)},
                )
            )
        elif needed - plan.attempts[0]:
            if plan.last_is_persistent:
                # Speculative filtering (counter-threshold): the miss is
                # legal because the broadcast-persistent retry recovers it.
                # checked_execute verifies the retry is actually charged.
                self.counters["filter_misses"] += 1
            else:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.SNOOP_SAFETY,
                        "first attempt misses holders and the plan carries no "
                        "persistent retry path",
                        cycle=self.clock(),
                        block=block,
                        vm_id=vm_id,
                        core=core,
                        plan=plan,
                        holders=holders,
                        details={"missed_first": sorted(needed - plan.attempts[0])},
                    )
                )
        snoop_filter = self.system.snoop_filter
        if (
            page_type is PageType.VM_PRIVATE
            and isinstance(snoop_filter, VirtualSnoopFilter)
            and snoop_filter.policy in _NON_SPECULATIVE
        ):
            domain = snoop_filter.domains.domain(vm_id)
            stray = needed - domain
            if stray:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.DOMAIN,
                        "vCPU map omits cores holding the VM's private data",
                        cycle=self.clock(),
                        block=block,
                        vm_id=vm_id,
                        core=core,
                        holders=holders,
                        details={"domain": sorted(domain), "stray": sorted(stray)},
                    )
                )

    def _check_block_state(self, block: int) -> None:
        """(c) registry record for ``block`` agrees with the true holders."""
        state = self.system.registry.state_of(block)
        holders = self._holders.get(block, EMPTY)
        sharers = state.sharers if state is not None else EMPTY
        if set(sharers) != set(holders):
            self.report(
                SanitizerViolation(
                    SanitizerCheck.STATE,
                    "registry sharer set disagrees with true cache residence",
                    cycle=self.clock(),
                    block=block,
                    holders=holders,
                    details={"sharers": sorted(sharers)},
                )
            )
            return
        if state is None:
            return
        if state.owner != MEMORY and state.owner not in state.sharers:
            self.report(
                SanitizerViolation(
                    SanitizerCheck.STATE,
                    "owner token held by a core without a copy",
                    cycle=self.clock(),
                    block=block,
                    holders=holders,
                    details={"owner": state.owner},
                )
            )
        if state.dirty and state.owner == MEMORY:
            self.report(
                SanitizerViolation(
                    SanitizerCheck.STATE,
                    "block dirty but the owner token is at memory",
                    cycle=self.clock(),
                    block=block,
                    holders=holders,
                )
            )

    def _expected_attempts(
        self, core: int, block: int, is_write: bool, plan: RequestPlan
    ) -> Optional[int]:
        """The attempt index the protocol must succeed on, from token state.

        Returns ``None`` when the check does not apply (content-shared
        reads always succeed on the first attempt via memory). A plan
        that cannot succeed on any attempt is itself a safety violation —
        reported here with full context before the protocol fails
        loudly on it.
        """
        if plan.ro_shared and not is_write:
            return 1
        state = self.system.registry.state_of(block)
        sharers = state.sharers if state is not None else EMPTY
        owner = state.owner if state is not None else MEMORY
        for index, destinations in enumerate(plan.attempts):
            if is_write:
                success = all(
                    sharer == core or sharer in destinations for sharer in sharers
                ) and (owner == MEMORY or owner == core or owner in destinations)
            else:
                success = owner == MEMORY or owner in destinations
            if success:
                return index + 1
        self.report(
            SanitizerViolation(
                SanitizerCheck.SNOOP_SAFETY,
                "no attempt of the plan can complete the transaction",
                cycle=self.clock(),
                block=block,
                core=core,
                plan=plan,
                holders=self._holders.get(block, EMPTY),
                details={"sharers": sorted(sharers), "owner": owner},
            )
        )
        return None

    # ------------------------------------------------------------------
    # Full-state audit (end of run, or on demand).
    # ------------------------------------------------------------------

    def audit(self) -> None:
        """Re-derive every invariant from the actual cache lines.

        Unlike the incremental checks, the audit recomputes ground truth
        directly from ``hierarchy.l2.lines()``, so it also proves the
        sanitizer's own shadow never drifted.
        """
        self.counters["audits"] += 1
        cycle = self.clock()
        true_holders: Dict[int, Set[int]] = {}
        for core, hierarchy in self.system.caches.items():
            counts: Dict[int, int] = {}
            blocks: Set[int] = set()
            for line in hierarchy.l2.lines():
                blocks.add(line.block)
                true_holders.setdefault(line.block, set()).add(core)
                if line.vm_id != UNTRACKED_VM:
                    counts[line.vm_id] = counts.get(line.vm_id, 0) + 1
            shadow = self.shadows.get(core)
            if shadow is not None and (
                shadow.resident_blocks() != blocks or shadow.counts() != counts
            ):
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.SHADOW,
                        "shadow inventory diverged from actual L2 contents",
                        cycle=cycle,
                        core=core,
                        details={
                            "shadow_only": sorted(shadow.resident_blocks() - blocks),
                            "cache_only": sorted(blocks - shadow.resident_blocks()),
                        },
                    )
                )
            tracker = self._tracker(core)
            if tracker is not None and tracker.counts() != counts:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.RESIDENCE,
                        "residence counters diverged from true per-VM residence",
                        cycle=cycle,
                        core=core,
                        details={"counters": tracker.counts(), "true_counts": counts},
                    )
                )
        registry = self.system.registry
        for block, state in registry._blocks.items():
            holders = true_holders.get(block, set())
            if set(state.sharers) != holders:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.STATE,
                        "registry sharer set disagrees with cache contents",
                        cycle=cycle,
                        block=block,
                        holders=holders,
                        details={"sharers": sorted(state.sharers)},
                    )
                )
            if state.owner != MEMORY and state.owner not in state.sharers:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.STATE,
                        "owner token held by a core without a copy",
                        cycle=cycle,
                        block=block,
                        holders=holders,
                        details={"owner": state.owner},
                    )
                )
        for block, holders in true_holders.items():
            if holders and registry.state_of(block) is None:
                self.report(
                    SanitizerViolation(
                        SanitizerCheck.STATE,
                        "cached block has no registry record",
                        cycle=cycle,
                        block=block,
                        holders=holders,
                    )
                )
        self._audit_domains(cycle)

    def _audit_domains(self, cycle: int) -> None:
        """(d) globally: every core with a VM's lines sits in its map."""
        snoop_filter = self.system.snoop_filter
        if not isinstance(snoop_filter, VirtualSnoopFilter):
            return
        if snoop_filter.policy not in _NON_SPECULATIVE:
            return  # speculative removal legally leaves lines behind
        for core, shadow in self.shadows.items():
            for vm_id, count in shadow.counts().items():
                if count and core not in snoop_filter.domains.domain(vm_id):
                    self.report(
                        SanitizerViolation(
                            SanitizerCheck.DOMAIN,
                            "vCPU map omits a core still holding the VM's lines",
                            cycle=cycle,
                            vm_id=vm_id,
                            core=core,
                            details={
                                "resident_lines": count,
                                "domain": sorted(
                                    snoop_filter.domains.domain(vm_id)
                                ),
                            },
                        )
                    )

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def report(self, violation: SanitizerViolation) -> None:
        """Raise or count one violation, per the configured mode."""
        if self.on_violation is not None:
            self.on_violation(violation)
        if self.mode == "raise":
            raise violation
        if len(self.violations) < MAX_KEPT_VIOLATIONS:
            self.violations.append(violation)
        counts = self.system.stats.sanitizer_violations
        counts[violation.check] = counts.get(violation.check, 0) + 1

    @property
    def violation_count(self) -> int:
        """Violations recorded so far (counting mode; 0 in raise mode)."""
        return sum(self.system.stats.sanitizer_violations.values())

    def summary(self) -> Dict[str, int]:
        """Check/violation counters, for CLI output and soak artifacts."""
        out = dict(self.counters)
        out["violations"] = self.violation_count
        return out

    # ------------------------------------------------------------------
    # Internals.
    # ------------------------------------------------------------------

    def _tracker(self, core: int) -> Optional[ResidenceTracker]:
        trackers = getattr(self.system.snoop_filter, "trackers", None)
        if trackers is None:
            return None
        tracker = trackers.get(core)
        return tracker if isinstance(tracker, ResidenceTracker) else None


def attach_sanitizer(
    system: "SimulatedSystem", mode: str = "raise"
) -> CoherenceSanitizer:
    """Create a sanitizer for ``system``, attach it, and register it."""
    sanitizer = CoherenceSanitizer(system, mode=mode).attach()
    system.sanitizer = sanitizer
    return sanitizer
