"""Parallel-task purity pass (RPL130/RPL131).

``parallel_map`` runs its task function in worker processes when
``jobs > 1`` and inline when ``jobs == 1`` — and the repo's contract is
that both paths are bit-identical. Task code that writes a module-level
global (RPL130) or mutates module-level mutable state (RPL131) breaks
that: the write vanishes with the worker process on one path and leaks
across cells on the other.

The pass discovers *submission sites* — every ``parallel_map(fn, ...)``
call's first argument and every ``task_fn=<name>`` keyword — plus the
configured extra entry points (``run_simulation_task``, the default
process-per-cell worker), then walks the project call graph from those
roots. Only statically resolvable calls (module-level functions,
``from x import f`` aliases, one-level module attributes) are followed;
methods and constructors are out of scope, which keeps the pass
precise at the cost of depth.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.checker import Violation
from repro.lint.project import FunctionInfo, ModuleInfo, ProjectIndex
from repro.lint.rules import RULES_BY_CODE

# The process-per-cell worker every campaign funnels through; checked
# even when no parallel_map call site is present in the linted tree.
DEFAULT_ENTRY_POINTS: Tuple[str, ...] = ("repro.sim.runner.run_simulation_task",)

# Submission-site callables whose first positional argument is a task fn.
_SUBMIT_NAMES = {"parallel_map"}

# Keyword argument naming a task fn at any call site.
_TASK_KEYWORD = "task_fn"

# Methods that mutate their receiver in place.
_MUTATOR_METHODS = {
    "append",
    "extend",
    "insert",
    "add",
    "update",
    "setdefault",
    "pop",
    "popitem",
    "clear",
    "remove",
    "discard",
    "appendleft",
    "extendleft",
}


def _call_name(func: ast.expr) -> Optional[str]:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _resolve_task_name(
    index: ProjectIndex, module: ModuleInfo, node: ast.expr
) -> Optional[FunctionInfo]:
    if not isinstance(node, ast.Name):
        return None
    return index.resolve_call_target(module, node)


def find_entry_points(
    index: ProjectIndex, extra: Optional[Sequence[str]] = None
) -> List[Tuple[FunctionInfo, str]]:
    """Every task function submitted to a parallel site, with its origin.

    Returns ``(function, reason)`` pairs, deterministically ordered;
    ``reason`` describes the submission site for use in messages.
    """
    found: Dict[str, Tuple[FunctionInfo, str]] = {}
    for module_name in sorted(index.modules):
        module = index.modules[module_name]
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _call_name(node.func)
            if name in _SUBMIT_NAMES and node.args:
                info = _resolve_task_name(index, module, node.args[0])
                if info is not None and info.qualname not in found:
                    found[info.qualname] = (
                        info,
                        f"{name}() at {module.path}:{node.lineno}",
                    )
            for keyword in node.keywords:
                if keyword.arg == _TASK_KEYWORD:
                    info = _resolve_task_name(index, module, keyword.value)
                    if info is not None and info.qualname not in found:
                        found[info.qualname] = (
                            info,
                            f"task_fn= at {module.path}:{node.lineno}",
                        )
    for qualname in extra if extra is not None else DEFAULT_ENTRY_POINTS:
        info = index.find_function(qualname)
        if info is not None and info.qualname not in found:
            found[info.qualname] = (info, "process-per-cell worker")
    return [found[qualname] for qualname in sorted(found)]


def _written_names(node: ast.FunctionDef) -> Set[str]:
    """Names assigned anywhere in the function (any binding form)."""
    written: Set[str] = set()
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and isinstance(child.ctx, ast.Store):
            written.add(child.id)
        elif isinstance(child, ast.AugAssign) and isinstance(child.target, ast.Name):
            written.add(child.target.id)
    return written


def _check_function(
    index: ProjectIndex,
    info: FunctionInfo,
    entry: str,
) -> Tuple[List[Violation], List[FunctionInfo]]:
    """Findings in one function plus the project callees to visit next."""
    module = index.modules[info.module_name]
    violations: List[Violation] = []
    callees: List[FunctionInfo] = []
    written = _written_names(info.node)
    reported_globals: Set[str] = set()
    reported_mutations: Set[str] = set()

    def mutated_binding(name_node: ast.expr) -> Optional[str]:
        """Qualified name of the module-level mutable this node aliases."""
        if not isinstance(name_node, ast.Name):
            return None
        if name_node.id in written:
            return None  # Shadowed by a local binding.
        origin = index.resolve_binding_origin(module, name_node.id)
        if origin is None:
            return None
        origin_module, origin_name = origin
        if origin_name not in origin_module.mutable_globals:
            return None
        return f"{origin_module.name}.{origin_name}"

    def report(node: ast.AST, code: str, message: str) -> None:
        violations.append(
            Violation(
                path=info.path,
                line=node.lineno,
                col=node.col_offset,
                rule=RULES_BY_CODE[code],
                message=message,
            )
        )

    for node in ast.walk(info.node):
        if isinstance(node, ast.Global):
            names = [n for n in node.names if n in written]
            fresh = [n for n in names if n not in reported_globals]
            if fresh:
                reported_globals.update(fresh)
                report(
                    node,
                    "RPL130",
                    f"{info.qualname} writes module global(s) "
                    f"{', '.join(fresh)} but is reachable from parallel "
                    f"task entry {entry}; worker-process writes vanish "
                    f"and inline writes leak across cells",
                )
        elif isinstance(node, ast.Subscript) and isinstance(
            node.ctx, (ast.Store, ast.Del)
        ):
            target = mutated_binding(node.value)
            if target is not None and target not in reported_mutations:
                reported_mutations.add(target)
                report(
                    node,
                    "RPL131",
                    f"{info.qualname} mutates module-level {target} but is "
                    f"reachable from parallel task entry {entry}; pass "
                    f"data in and return data out instead",
                )
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATOR_METHODS
            ):
                target = mutated_binding(func.value)
                if target is not None and target not in reported_mutations:
                    reported_mutations.add(target)
                    report(
                        node,
                        "RPL131",
                        f"{info.qualname} calls .{func.attr}() on "
                        f"module-level {target} but is reachable from "
                        f"parallel task entry {entry}; pass data in and "
                        f"return data out instead",
                    )
            callee = index.resolve_call_target(module, func)
            if callee is not None:
                callees.append(callee)
    return violations, callees


def run(
    index: ProjectIndex, *, entry_points: Optional[Sequence[str]] = None
) -> List[Violation]:
    """Walk the call graph from every parallel submission site."""
    violations: List[Violation] = []
    visited: Set[str] = set()
    queue: List[Tuple[FunctionInfo, str]] = []
    for info, reason in find_entry_points(index, extra=entry_points):
        queue.append((info, f"{info.qualname} ({reason})"))
    while queue:
        info, entry = queue.pop(0)
        if info.qualname in visited:
            continue
        visited.add(info.qualname)
        found, callees = _check_function(index, info, entry)
        violations.extend(found)
        for callee in callees:
            if callee.qualname not in visited:
                queue.append((callee, entry))
    return violations
