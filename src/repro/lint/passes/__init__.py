"""Cross-module lint passes over a :class:`~repro.lint.project.ProjectIndex`.

Four passes, one invariant family each:

* :mod:`repro.lint.passes.serialization` — RPL100/101/102, the
  ``to_dict``/``from_dict`` round-trip contract.
* :mod:`repro.lint.passes.state_version` — RPL110/111, the
  ``STATE_VERSION`` ratchet against the checked-in fingerprint file.
* :mod:`repro.lint.passes.memo_epoch` — RPL120, epoch-guarded caches
  read without consulting their epoch.
* :mod:`repro.lint.passes.purity` — RPL130/131, functions reachable
  from ``parallel_map``/process-per-cell task submission mutating
  module state.

Each pass is a function ``run(index, **options) -> List[Violation]``;
:func:`run_project_passes` runs them all and returns the merged,
suppression-unfiltered findings (the caller owns suppression and
sorting, see :func:`repro.lint.project_api.lint_project`).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Optional, Sequence

from repro.lint.checker import Violation
from repro.lint.passes import memo_epoch, purity, serialization, state_version
from repro.lint.project import ProjectIndex

PASS_NAMES = ("serialization", "state-version", "memo-epoch", "purity")


def run_project_passes(
    index: ProjectIndex,
    *,
    fingerprints_path: Optional[Path] = None,
    watchlist: Optional[Sequence["state_version.WatchedEntity"]] = None,
    version_symbol: Optional[str] = None,
    entry_points: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """All four cross-module passes over one index, findings merged."""
    violations: List[Violation] = []
    violations.extend(serialization.run(index))
    violations.extend(
        state_version.run(
            index,
            fingerprints_path=fingerprints_path,
            watchlist=watchlist,
            version_symbol=version_symbol,
        )
    )
    violations.extend(memo_epoch.run(index))
    violations.extend(purity.run(index, entry_points=entry_points))
    return violations
