"""Memo-epoch hazard pass (RPL120).

The plan-cache family (``VirtualSnoopFilter._plan_cache`` /
``RegionScoutFilter._plan_cache``) pairs every memoised attribute with
an epoch counter (``*_version`` / ``*_epoch*``) that is bumped when the
underlying mapping changes; every read re-validates against the
counter. A class that carries such a counter has *opted into* that
discipline — so a method of that class reading a ``*_cache`` /
``*_memo*`` attribute without consulting any epoch attribute is serving
entries that may have survived an invalidation.

Scope and known limits (kept deliberately narrow for low noise):

* per-class, syntactic — inherited cache attributes are not attributed
  to subclasses, and classes with caches but *no* epoch counter are out
  of scope (nothing promises invalidation there);
* "consults" means the method references any epoch attribute of the
  class anywhere in its body;
* wholesale reassignment (``self._c = {}``) and ``self._c.clear()``
  are invalidation, not reads, and never flagged.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Set, Tuple

from repro.lint.checker import Violation
from repro.lint.project import ClassInfo, ProjectIndex
from repro.lint.rules import RULES_BY_CODE


def _is_epoch_name(name: str) -> bool:
    return name.endswith("_version") or "_epoch" in name or name == "version"


def _is_cache_name(name: str) -> bool:
    if _is_epoch_name(name):
        return False
    return name.endswith("_cache") or "_memo" in name


def _self_attrs(node: ast.AST) -> List[ast.Attribute]:
    """Every ``self.<attr>`` access inside ``node``, in source order."""
    out: List[ast.Attribute] = []
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Attribute)
            and isinstance(child.value, ast.Name)
            and child.value.id == "self"
        ):
            out.append(child)
    return out


def _class_attr_names(cls: ClassInfo) -> Set[str]:
    """Attributes assigned via ``self.<name> = ...`` plus declared fields."""
    names: Set[str] = set(cls.fields)
    for method in cls.methods.values():
        for attr in _self_attrs(method):
            if isinstance(attr.ctx, ast.Store):
                names.add(attr.attr)
    return names


def _cleared_attrs(method: ast.FunctionDef) -> Set[Tuple[int, int]]:
    """Locations of ``self.<attr>`` inside a ``.clear()`` call."""
    cleared: Set[Tuple[int, int]] = set()
    for node in ast.walk(method):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "clear"
            and isinstance(node.func.value, ast.Attribute)
            and isinstance(node.func.value.value, ast.Name)
            and node.func.value.value.id == "self"
        ):
            inner = node.func.value
            cleared.add((inner.lineno, inner.col_offset))
    return cleared


def _check_class(cls: ClassInfo) -> List[Violation]:
    attrs = _class_attr_names(cls)
    epoch_attrs = sorted(name for name in attrs if _is_epoch_name(name))
    cache_attrs = {name for name in attrs if _is_cache_name(name)}
    if not epoch_attrs or not cache_attrs:
        return []
    violations: List[Violation] = []
    for method_name, method in cls.methods.items():
        accesses = _self_attrs(method)
        if any(attr.attr in epoch_attrs for attr in accesses):
            continue  # The method consults an epoch: discipline upheld.
        cleared = _cleared_attrs(method)
        reported: Dict[str, bool] = {}
        for attr in accesses:
            if attr.attr not in cache_attrs or not isinstance(attr.ctx, ast.Load):
                continue
            if (attr.lineno, attr.col_offset) in cleared:
                continue
            if reported.get(attr.attr):
                continue
            reported[attr.attr] = True
            violations.append(
                Violation(
                    path=cls.path,
                    line=attr.lineno,
                    col=attr.col_offset,
                    rule=RULES_BY_CODE["RPL120"],
                    message=(
                        f"{cls.name}.{method_name} reads self.{attr.attr} "
                        f"without consulting an epoch counter "
                        f"({', '.join(epoch_attrs)} exist on this class); "
                        f"entries may have survived an invalidation"
                    ),
                )
            )
    return violations


def run(index: ProjectIndex) -> List[Violation]:
    """Check every class in the index for epoch-less cache reads."""
    violations: List[Violation] = []
    for module_name in sorted(index.modules):
        module = index.modules[module_name]
        for class_name in sorted(module.classes):
            violations.extend(_check_class(module.classes[class_name]))
    return violations
