"""State-version ratchet pass (RPL110/RPL111).

The content-addressed store and the warm-snapshot cache trust
``repro.store.STATE_VERSION`` to invalidate entries whenever simulation
semantics change. This pass makes that contract checkable: a
*watchlist* of identity-relevant shapes (dataclass field sets, the
``WARMUP_INERT_FIELDS`` collection, the keys of the snapshot payload
dict) is fingerprinted from the AST and compared against a checked-in
fingerprint file.

* Same recorded ``STATE_VERSION`` but a drifted shape → **RPL110**: the
  author changed identity-relevant state without bumping the version.
  The fix is to bump ``STATE_VERSION`` and regenerate; the escape hatch
  for proven bit-identical refactors is regenerating without a bump —
  which shows up as a fingerprint-file change in the PR diff.
* Missing file, unknown format, or a recorded version that no longer
  matches the code → **RPL111**: regenerate with
  ``repro-lint --update-fingerprints`` and commit.

The pass is a no-op when the version symbol is not part of the indexed
tree (e.g. linting a directory that does not contain ``repro.store``),
so ``repro-lint --project`` on arbitrary packages stays quiet.
"""

from __future__ import annotations

import ast
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.lint.checker import Violation
from repro.lint.project import ProjectIndex
from repro.lint.rules import RULES_BY_CODE

FINGERPRINT_FORMAT = 1

# The committed fingerprint file ships as package data next to this
# module so the default works both from a checkout and an installed
# package.
DEFAULT_FINGERPRINTS_PATH = Path(__file__).resolve().parent.parent / "fingerprints.json"

DEFAULT_VERSION_SYMBOL = "repro.store.STATE_VERSION"


class WatchedEntity:
    """One identity-relevant shape the ratchet fingerprints.

    ``kind`` selects how ``target`` is interpreted:

    * ``dataclass-fields`` — ``target`` is a class qualname; the
      fingerprint is its sorted field-name list, minus any names in the
      optional ``exclude`` string-collection constant (this is how
      ``SimConfig`` is watched net of ``WARMUP_INERT_FIELDS``).
    * ``string-collection`` — ``target`` is a module-level constant
      qualname bound to a collection of string literals.
    * ``snapshot-keys`` — ``target`` is a method qualname; the
      fingerprint is the sorted set of constant keys in the dict
      literals the method returns.
    """

    def __init__(
        self,
        key: str,
        kind: str,
        target: str,
        exclude: Optional[str] = None,
    ) -> None:
        if kind not in ("dataclass-fields", "string-collection", "snapshot-keys"):
            raise ValueError(f"unknown watchlist kind {kind!r}")
        self.key = key
        self.kind = kind
        self.target = target
        self.exclude = exclude


DEFAULT_WATCHLIST: Tuple[WatchedEntity, ...] = (
    WatchedEntity(
        key="SimConfig",
        kind="dataclass-fields",
        target="repro.sim.config.SimConfig",
        exclude="repro.sim.runner.WARMUP_INERT_FIELDS",
    ),
    WatchedEntity(
        key="SimStats",
        kind="dataclass-fields",
        target="repro.sim.stats.SimStats",
    ),
    WatchedEntity(
        key="CoherenceStats",
        kind="dataclass-fields",
        target="repro.coherence.stats.CoherenceStats",
    ),
    WatchedEntity(
        key="MetricsWindow",
        kind="dataclass-fields",
        target="repro.obs.series.MetricsWindow",
    ),
    WatchedEntity(
        key="MetricsSeries",
        kind="dataclass-fields",
        target="repro.obs.series.MetricsSeries",
    ),
    WatchedEntity(
        key="WARMUP_INERT_FIELDS",
        kind="string-collection",
        target="repro.sim.runner.WARMUP_INERT_FIELDS",
    ),
    WatchedEntity(
        key="SimulatedSystem.snapshot",
        kind="snapshot-keys",
        target="repro.sim.system.SimulatedSystem.snapshot",
    ),
    WatchedEntity(
        key="SUITES",
        kind="string-collection",
        target="repro.workloads.suites.SUITES",
    ),
)


def _returned_dict_keys(method: ast.FunctionDef) -> List[str]:
    """Sorted constant keys across every dict literal the method returns."""
    keys: List[str] = []
    for node in ast.walk(method):
        if not (isinstance(node, ast.Return) and isinstance(node.value, ast.Dict)):
            continue
        for key in node.value.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                keys.append(key.value)
    return sorted(set(keys))


class _Location:
    """Where a fingerprint entity lives, for anchoring findings."""

    def __init__(self, path: str, line: int) -> None:
        self.path = path
        self.line = line


def _fingerprint_entity(
    index: ProjectIndex, entity: WatchedEntity
) -> Optional[Tuple[List[str], _Location]]:
    """The entity's current shape, or None if it is not in the index."""
    if entity.kind == "dataclass-fields":
        cls = index.find_class(entity.target)
        if cls is None:
            return None
        names = sorted(cls.fields)
        if entity.exclude is not None:
            located = index.find_constant(entity.exclude)
            if located is not None:
                module, value = located
                excluded = index.resolve_string_collection(module, value)
                if excluded is not None:
                    names = [n for n in names if n not in set(excluded)]
        return names, _Location(cls.path, cls.lineno)
    if entity.kind == "string-collection":
        located = index.find_constant(entity.target)
        if located is None:
            return None
        module, value = located
        members = index.resolve_string_collection(module, value)
        if members is None:
            return None
        return sorted(set(members)), _Location(module.path, value.lineno)
    # snapshot-keys
    found = index.find_method(entity.target)
    if found is None:
        return None
    cls, method = found
    return _returned_dict_keys(method), _Location(cls.path, method.lineno)


def _current_version(
    index: ProjectIndex, version_symbol: str
) -> Optional[Tuple[int, _Location]]:
    located = index.find_constant(version_symbol)
    if located is None:
        return None
    module, value = located
    if isinstance(value, ast.Constant) and isinstance(value.value, int):
        return value.value, _Location(module.path, value.lineno)
    return None


def compute_fingerprints(
    index: ProjectIndex,
    *,
    watchlist: Optional[Sequence[WatchedEntity]] = None,
    version_symbol: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """The fingerprint document for the current tree (None: no version)."""
    watchlist = DEFAULT_WATCHLIST if watchlist is None else watchlist
    version_symbol = version_symbol or DEFAULT_VERSION_SYMBOL
    version = _current_version(index, version_symbol)
    if version is None:
        return None
    entities: Dict[str, List[str]] = {}
    for entity in watchlist:
        result = _fingerprint_entity(index, entity)
        if result is not None:
            entities[entity.key] = result[0]
    return {
        "format": FINGERPRINT_FORMAT,
        "version_symbol": version_symbol,
        "state_version": version[0],
        "entities": entities,
    }


def update_fingerprints(
    index: ProjectIndex,
    path: Path,
    *,
    watchlist: Optional[Sequence[WatchedEntity]] = None,
    version_symbol: Optional[str] = None,
) -> Optional[Dict[str, Any]]:
    """Write the current fingerprints to ``path``; returns the document."""
    document = compute_fingerprints(
        index, watchlist=watchlist, version_symbol=version_symbol
    )
    if document is None:
        return None
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return document


def _diff_message(key: str, recorded: List[str], current: List[str]) -> str:
    added = sorted(set(current) - set(recorded))
    removed = sorted(set(recorded) - set(current))
    parts: List[str] = []
    if added:
        parts.append("added " + ", ".join(added))
    if removed:
        parts.append("removed " + ", ".join(removed))
    detail = "; ".join(parts) if parts else "shape changed"
    return (
        f"identity-relevant shape of {key} changed ({detail}) without a "
        f"STATE_VERSION bump; bump it, or regenerate fingerprints via "
        f"repro-lint --update-fingerprints if provably bit-identical"
    )


def run(
    index: ProjectIndex,
    *,
    fingerprints_path: Optional[Path] = None,
    watchlist: Optional[Sequence[WatchedEntity]] = None,
    version_symbol: Optional[str] = None,
) -> List[Violation]:
    """Compare the current tree against the checked-in fingerprints."""
    watchlist = DEFAULT_WATCHLIST if watchlist is None else watchlist
    version_symbol = version_symbol or DEFAULT_VERSION_SYMBOL
    fingerprints_path = (
        DEFAULT_FINGERPRINTS_PATH if fingerprints_path is None else fingerprints_path
    )
    version = _current_version(index, version_symbol)
    if version is None:
        # The version symbol is not part of this tree: nothing to ratchet.
        return []
    current_version, version_loc = version

    def stale(message: str) -> List[Violation]:
        return [
            Violation(
                path=version_loc.path,
                line=version_loc.line,
                col=0,
                rule=RULES_BY_CODE["RPL111"],
                message=message,
            )
        ]

    if not fingerprints_path.is_file():
        return stale(
            f"fingerprint file {fingerprints_path} is missing; run "
            f"repro-lint --update-fingerprints and commit the result"
        )
    try:
        recorded = json.loads(fingerprints_path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return stale(
            f"fingerprint file {fingerprints_path} is unreadable; "
            f"regenerate with repro-lint --update-fingerprints"
        )
    if (
        not isinstance(recorded, dict)
        or recorded.get("format") != FINGERPRINT_FORMAT
        or not isinstance(recorded.get("entities"), dict)
    ):
        return stale(
            f"fingerprint file {fingerprints_path} has an unknown format; "
            f"regenerate with repro-lint --update-fingerprints"
        )
    if recorded.get("state_version") != current_version:
        return stale(
            f"fingerprints record STATE_VERSION "
            f"{recorded.get('state_version')!r} but the code is at "
            f"{current_version}; regenerate with "
            f"repro-lint --update-fingerprints and commit"
        )

    violations: List[Violation] = []
    recorded_entities: Dict[str, List[str]] = recorded["entities"]
    seen_keys = set()
    for entity in watchlist:
        result = _fingerprint_entity(index, entity)
        if result is None:
            continue
        current_shape, location = result
        seen_keys.add(entity.key)
        if entity.key not in recorded_entities:
            violations.extend(
                stale(
                    f"watched entity {entity.key} has no recorded "
                    f"fingerprint; regenerate with "
                    f"repro-lint --update-fingerprints"
                )
            )
            continue
        recorded_shape = list(recorded_entities[entity.key])
        if recorded_shape != current_shape:
            violations.append(
                Violation(
                    path=location.path,
                    line=location.line,
                    col=0,
                    rule=RULES_BY_CODE["RPL110"],
                    message=_diff_message(entity.key, recorded_shape, current_shape),
                )
            )
    for key in sorted(set(recorded_entities) - seen_keys):
        violations.extend(
            stale(
                f"fingerprint entry {key} no longer matches any watched "
                f"entity; regenerate with repro-lint --update-fingerprints"
            )
        )
    return violations
