"""RPL100/101/102 — the ``to_dict``/``from_dict`` round-trip contract.

For every dataclass that defines both ``to_dict`` and ``from_dict``,
prove (statically) that the pair round-trips:

* **RPL100** — every dataclass field is emitted by ``to_dict`` (either
  under its own key or through a ``for f in fields(self)`` catch-all);
* **RPL101** — the key sets agree: ``to_dict`` never emits a key
  ``from_dict`` cannot accept, and ``from_dict`` never reconstructs a
  key ``to_dict`` cannot produce;
* **RPL102** — the omit-when-empty convention is honoured safely: a key
  emitted only conditionally must map to a field with a default (and
  must not be unconditionally required by ``from_dict``), so the
  omitted case still reconstructs.

The analyser understands the two serializer idioms this codebase uses:

1. **literal style** — ``return {"a": self.a, ...}`` (plus
   ``out["k"] = v`` stores on a returned local), as in
   ``MetricsWindow.to_dict``;
2. **fields-loop style** — ``for f in fields(self): out[f.name] = ...``
   with ``if f.name == "k"`` / ``if f.name in _GROUP`` dispatch
   branches, as in ``SimStats.to_dict``; branch keys named by a
   module-level constant collection are resolved through the project
   index (the cross-module part).

A serializer written some other way is skipped rather than guessed at —
the pass reports only what it can prove.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.lint.checker import Violation
from repro.lint.project import ClassInfo, ModuleInfo, ProjectIndex
from repro.lint.rules import RULES_BY_CODE


@dataclass
class _Emit:
    """One key written by to_dict: where, and whether conditionally."""

    lineno: int
    col: int
    conditional: bool


@dataclass
class _ToDictShape:
    understood: bool = False
    emitted: Dict[str, _Emit] = field(default_factory=dict)
    catch_all: bool = False


@dataclass
class _FromDictShape:
    understood: bool = False
    accepts_all: bool = False
    # Keys the method explicitly touches on the payload dict.
    explicit: Dict[str, Tuple[int, int]] = field(default_factory=dict)
    # Subset of ``explicit`` read with a bare subscript (raises if absent).
    required: Set[str] = field(default_factory=set)


def _returned_dict_names(func: ast.FunctionDef) -> Set[str]:
    """Local names returned by the function (candidates for out-dicts)."""
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Return) and isinstance(node.value, ast.Name):
            names.add(node.value.id)
    return names


def _fields_loop_var(func: ast.FunctionDef) -> Optional[str]:
    """Target name of a ``for f in fields(self)`` loop, if present."""
    for node in ast.walk(func):
        if not (isinstance(node, ast.For) and isinstance(node.target, ast.Name)):
            continue
        call = node.iter
        if not isinstance(call, ast.Call):
            continue
        callee = call.func
        name = (
            callee.id
            if isinstance(callee, ast.Name)
            else callee.attr if isinstance(callee, ast.Attribute) else None
        )
        if name == "fields":
            return node.target.id
    return None


def _dispatch_keys(
    index: ProjectIndex, module: ModuleInfo, test: ast.expr, loop_var: Optional[str]
) -> Optional[List[str]]:
    """Keys pinned by an ``f.name == "k"`` / ``f.name in GROUP`` test."""
    if loop_var is None or not isinstance(test, ast.Compare):
        return None
    left = test.left
    if not (
        isinstance(left, ast.Attribute)
        and left.attr == "name"
        and isinstance(left.value, ast.Name)
        and left.value.id == loop_var
        and len(test.ops) == 1
        and len(test.comparators) == 1
    ):
        return None
    comparator = test.comparators[0]
    if isinstance(test.ops[0], ast.Eq):
        if isinstance(comparator, ast.Constant) and isinstance(comparator.value, str):
            return [comparator.value]
        return None
    if isinstance(test.ops[0], ast.In):
        return index.resolve_string_collection(module, comparator)
    return None


def _analyze_to_dict(
    index: ProjectIndex, module: ModuleInfo, func: ast.FunctionDef
) -> _ToDictShape:
    shape = _ToDictShape()
    out_names = _returned_dict_names(func)
    loop_var = _fields_loop_var(func)

    def record(key: str, node: ast.AST, conditional: bool) -> None:
        previous = shape.emitted.get(key)
        # An unconditional emit anywhere wins over a conditional one.
        if previous is None or (previous.conditional and not conditional):
            shape.emitted[key] = _Emit(
                lineno=getattr(node, "lineno", func.lineno),
                col=getattr(node, "col_offset", 0),
                conditional=conditional,
            )

    def record_literal(node: ast.Dict, conditional: bool) -> None:
        for key in node.keys:
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                record(key.value, key, conditional)
        shape.understood = True

    def walk(statements: List[ast.stmt], pinned: Optional[List[str]], guarded: bool) -> None:
        for stmt in statements:
            if isinstance(stmt, ast.If):
                keys = _dispatch_keys(index, module, stmt.test, loop_var)
                if keys is not None:
                    walk(stmt.body, keys, guarded)
                    walk(stmt.orelse, pinned, guarded)
                else:
                    walk(stmt.body, pinned, True)
                    walk(stmt.orelse, pinned, True)
                continue
            if isinstance(stmt, (ast.For, ast.While, ast.With, ast.Try)):
                for body in (
                    getattr(stmt, "body", []),
                    getattr(stmt, "orelse", []),
                    getattr(stmt, "finalbody", []),
                ):
                    walk(list(body), pinned, guarded)
                for handler in getattr(stmt, "handlers", []):
                    walk(list(handler.body), pinned, True)
                continue
            if isinstance(stmt, ast.Return) and isinstance(stmt.value, ast.Dict):
                record_literal(stmt.value, guarded)
                continue
            if isinstance(stmt, ast.Assign):
                if (
                    len(stmt.targets) == 1
                    and isinstance(stmt.targets[0], ast.Name)
                    and stmt.targets[0].id in out_names
                    and isinstance(stmt.value, ast.Dict)
                ):
                    record_literal(stmt.value, guarded)
                    continue
                target = stmt.targets[0] if len(stmt.targets) == 1 else None
                if (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in out_names
                ):
                    shape.understood = True
                    key_node = target.slice
                    if isinstance(key_node, ast.Constant) and isinstance(
                        key_node.value, str
                    ):
                        record(key_node.value, target, guarded)
                    elif (
                        loop_var is not None
                        and isinstance(key_node, ast.Attribute)
                        and key_node.attr == "name"
                        and isinstance(key_node.value, ast.Name)
                        and key_node.value.id == loop_var
                    ):
                        if pinned is None:
                            # ``out[f.name] = ...`` outside any name
                            # dispatch: covers every remaining field.
                            shape.catch_all = True
                        else:
                            for key in pinned:
                                record(key, target, guarded)

    walk(list(func.body), None, False)
    return shape


def _payload_aliases(func: ast.FunctionDef, param: str) -> Set[str]:
    """Names aliasing the payload dict (``kwargs = dict(data)`` style)."""
    aliases = {param}
    changed = True
    while changed:
        changed = False
        for node in ast.walk(func):
            if not (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
            ):
                continue
            target = node.targets[0].id
            if target in aliases:
                continue
            value = node.value
            source: Optional[str] = None
            if isinstance(value, ast.Name):
                source = value.id
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "dict"
                and len(value.args) == 1
                and isinstance(value.args[0], ast.Name)
            ):
                source = value.args[0].id
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Attribute)
                and value.func.attr == "copy"
                and isinstance(value.func.value, ast.Name)
            ):
                source = value.func.value.id
            if source in aliases:
                aliases.add(target)
                changed = True
    return aliases


def _membership_guard_keys(func: ast.FunctionDef, aliases: Set[str]) -> Set[str]:
    """Keys tested with ``"k" in payload`` anywhere in the method."""
    keys: Set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Compare):
            continue
        if (
            len(node.ops) == 1
            and isinstance(node.ops[0], (ast.In, ast.NotIn))
            and isinstance(node.left, ast.Constant)
            and isinstance(node.left.value, str)
            and isinstance(node.comparators[0], ast.Name)
            and node.comparators[0].id in aliases
        ):
            keys.add(node.left.value)
    return keys


def _analyze_from_dict(func: ast.FunctionDef) -> _FromDictShape:
    shape = _FromDictShape()
    args = [a.arg for a in func.args.args]
    # classmethod: (cls, data); tolerate a plain (data) staticmethod too.
    param = args[1] if len(args) > 1 else (args[0] if args else None)
    if param is None:
        return shape
    aliases = _payload_aliases(func, param)
    guarded_keys = _membership_guard_keys(func, aliases)

    def note(key: str, node: ast.AST, required: bool) -> None:
        shape.explicit.setdefault(
            key, (getattr(node, "lineno", func.lineno), getattr(node, "col_offset", 0))
        )
        if required and key not in guarded_keys:
            shape.required.add(key)

    for node in ast.walk(func):
        if isinstance(node, ast.Call):
            callee = node.func
            if isinstance(callee, ast.Name) and callee.id == "cls":
                if any(kw.arg is None for kw in node.keywords):
                    shape.accepts_all = True
                shape.understood = True
            if (
                isinstance(callee, ast.Attribute)
                and callee.attr in ("get", "pop", "setdefault")
                and isinstance(callee.value, ast.Name)
                and callee.value.id in aliases
                and node.args
                and isinstance(node.args[0], ast.Constant)
                and isinstance(node.args[0].value, str)
            ):
                # ``.get(k)``/``.pop(k)`` without a default still raise /
                # return None; only a provided default makes it optional.
                has_default = len(node.args) > 1
                required = callee.attr == "pop" and not has_default
                note(node.args[0].value, node.args[0], required)
        elif isinstance(node, ast.Subscript):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id in aliases
                and isinstance(node.slice, ast.Constant)
                and isinstance(node.slice.value, str)
            ):
                note(node.slice.value, node, isinstance(node.ctx, ast.Load))
                shape.understood = True
        elif isinstance(node, ast.Compare):
            if (
                len(node.ops) == 1
                and isinstance(node.ops[0], (ast.In, ast.NotIn))
                and isinstance(node.left, ast.Constant)
                and isinstance(node.left.value, str)
                and isinstance(node.comparators[0], ast.Name)
                and node.comparators[0].id in aliases
            ):
                note(node.left.value, node.left, False)
                shape.understood = True
    if shape.accepts_all:
        shape.understood = True
    return shape


def _check_class(
    index: ProjectIndex, module: ModuleInfo, cls: ClassInfo
) -> List[Violation]:
    to_dict = cls.methods.get("to_dict")
    from_dict = cls.methods.get("from_dict")
    if to_dict is None or from_dict is None or not cls.fields:
        return []
    emit = _analyze_to_dict(index, module, to_dict)
    accept = _analyze_from_dict(from_dict)
    if not emit.understood or not accept.understood:
        return []
    violations: List[Violation] = []

    def report(code: str, lineno: int, col: int, message: str) -> None:
        violations.append(
            Violation(
                path=module.path,
                line=lineno,
                col=col,
                rule=RULES_BY_CODE[code],
                message=message,
            )
        )

    field_names = set(cls.fields)
    emitted_keys = set(emit.emitted)
    covered = emitted_keys | (field_names if emit.catch_all else set())
    # ``cls(**payload)`` accepts exactly the dataclass fields; explicitly
    # handled keys are accepted either way.
    accepted = (field_names if accept.accepts_all else set()) | set(accept.explicit)

    # RPL100: field never serialized.
    for name, info in sorted(cls.fields.items()):
        if name not in covered:
            report(
                "RPL100",
                info.lineno,
                0,
                f"{cls.name}.{name} is never emitted by {cls.name}.to_dict; "
                f"from_dict(to_dict(x)) silently drops it",
            )

    # RPL101: emitted but unacceptable / accepted but never produced.
    for key, where in sorted(emit.emitted.items()):
        if key not in accepted:
            report(
                "RPL101",
                where.lineno,
                where.col,
                f"{cls.name}.to_dict emits key {key!r} that "
                f"{cls.name}.from_dict cannot accept",
            )
    for key, (lineno, col) in sorted(accept.explicit.items()):
        if key not in covered:
            report(
                "RPL101",
                lineno,
                col,
                f"{cls.name}.from_dict handles key {key!r} that "
                f"{cls.name}.to_dict never emits",
            )

    # RPL102: conditional emit must be reconstructible when omitted.
    for key, where in sorted(emit.emitted.items()):
        if not where.conditional:
            continue
        field = cls.fields.get(key)
        if field is not None and not field.has_default:
            report(
                "RPL102",
                where.lineno,
                where.col,
                f"{cls.name}.to_dict emits {key!r} conditionally but the "
                f"field has no default; from_dict raises when it is omitted",
            )
        elif key in accept.required:
            report(
                "RPL102",
                where.lineno,
                where.col,
                f"{cls.name}.to_dict emits {key!r} conditionally but "
                f"{cls.name}.from_dict requires it unconditionally",
            )
    return violations


def run(index: ProjectIndex) -> List[Violation]:
    """Serialization-contract findings across the whole project."""
    violations: List[Violation] = []
    for module_name in sorted(index.modules):
        module = index.modules[module_name]
        for class_name in sorted(module.classes):
            violations.extend(_check_class(index, module, module.classes[class_name]))
    return violations
