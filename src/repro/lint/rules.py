"""Rule catalogue for repro-lint.

Each rule targets one way a simulation codebase silently loses
reproducibility or correctness. Rules carry a stable code (``RPL###``)
used in reports and in ``# repro-lint: disable=CODE`` suppression
comments (rule *names* are accepted there too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, slug name, and rationale."""

    code: str
    name: str
    summary: str
    rationale: str


RULES: Tuple[Rule, ...] = (
    Rule(
        code="RPL000",
        name="bad-suppression",
        summary="unknown rule code/name in a repro-lint suppression comment",
        rationale=(
            "A typo in a disable= comment would otherwise silently "
            "suppress nothing while the author believes the line is "
            "covered. Unknown tokens are reported so suppressions stay "
            "honest."
        ),
    ),
    Rule(
        code="RPL001",
        name="set-iteration",
        summary="iteration over an unordered set/frozenset literal or call",
        rationale=(
            "Set iteration order depends on element hashes and insertion "
            "history; feeding it into destination ordering, RNG draws or "
            "serialized output makes runs irreproducible. Sort first or "
            "use an ordered container."
        ),
    ),
    Rule(
        code="RPL002",
        name="unseeded-random",
        summary="module-level random.* call (shared, unseeded global RNG)",
        rationale=(
            "The module-level random functions share one hidden global "
            "generator; any import-order change or third-party draw "
            "perturbs every downstream stream. Use a dedicated seeded "
            "random.Random instance."
        ),
    ),
    Rule(
        code="RPL003",
        name="id-keyed-cache",
        summary="id() used as a dict key or cache key",
        rationale=(
            "id() values are memory addresses: they vary across runs and "
            "can be recycled after garbage collection, so id()-keyed "
            "caches alias unrelated objects. Key on stable identity "
            "instead."
        ),
    ),
    Rule(
        code="RPL004",
        name="wall-clock",
        summary="wall-clock time call inside simulation logic",
        rationale=(
            "time.time()/perf_counter()/datetime.now() introduce host "
            "timing into results, breaking determinism and resume. Use "
            "the simulated clock; real-time profiling code must carry an "
            "explicit suppression."
        ),
    ),
    Rule(
        code="RPL005",
        name="mutable-default",
        summary="mutable default argument value",
        rationale=(
            "Default values are evaluated once at definition time, so a "
            "mutable default is shared by every call — state leaks "
            "between invocations. Default to None and construct inside."
        ),
    ),
    Rule(
        code="RPL006",
        name="stats-enum-key",
        summary="dict comprehension in a to_dict/as_dict not keyed by enum .value/.name",
        rationale=(
            "Serialized stats must be keyed by the enum's stable .value "
            "(or .name), not the enum object or arbitrary expressions, or "
            "the JSON artifact is not loadable and not diffable across "
            "runs."
        ),
    ),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in RULES}
RULES_BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in RULES}


def resolve_rule(token: str) -> Rule:
    """Look a rule up by code or name; raise KeyError if unknown."""
    token = token.strip()
    if token in RULES_BY_CODE:
        return RULES_BY_CODE[token]
    if token in RULES_BY_NAME:
        return RULES_BY_NAME[token]
    raise KeyError(token)
