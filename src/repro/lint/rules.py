"""Rule catalogue for repro-lint.

Each rule targets one way a simulation codebase silently loses
reproducibility or correctness. Rules carry a stable code (``RPL###``)
used in reports and in ``# repro-lint: disable=CODE`` suppression
comments (rule *names* are accepted there too).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class Rule:
    """One lint rule: stable code, slug name, and rationale."""

    code: str
    name: str
    summary: str
    rationale: str


RULES: Tuple[Rule, ...] = (
    Rule(
        code="RPL000",
        name="bad-suppression",
        summary="unknown rule code/name in a repro-lint suppression comment",
        rationale=(
            "A typo in a disable= comment would otherwise silently "
            "suppress nothing while the author believes the line is "
            "covered. Unknown tokens are reported so suppressions stay "
            "honest."
        ),
    ),
    Rule(
        code="RPL001",
        name="set-iteration",
        summary="iteration over an unordered set/frozenset literal or call",
        rationale=(
            "Set iteration order depends on element hashes and insertion "
            "history; feeding it into destination ordering, RNG draws or "
            "serialized output makes runs irreproducible. Sort first or "
            "use an ordered container."
        ),
    ),
    Rule(
        code="RPL002",
        name="unseeded-random",
        summary="module-level random.* call (shared, unseeded global RNG)",
        rationale=(
            "The module-level random functions share one hidden global "
            "generator; any import-order change or third-party draw "
            "perturbs every downstream stream. Use a dedicated seeded "
            "random.Random instance."
        ),
    ),
    Rule(
        code="RPL003",
        name="id-keyed-cache",
        summary="id() used as a dict key or cache key",
        rationale=(
            "id() values are memory addresses: they vary across runs and "
            "can be recycled after garbage collection, so id()-keyed "
            "caches alias unrelated objects. Key on stable identity "
            "instead."
        ),
    ),
    Rule(
        code="RPL004",
        name="wall-clock",
        summary="wall-clock time call inside simulation logic",
        rationale=(
            "time.time()/perf_counter()/datetime.now() introduce host "
            "timing into results, breaking determinism and resume. Use "
            "the simulated clock; real-time profiling code must carry an "
            "explicit suppression."
        ),
    ),
    Rule(
        code="RPL005",
        name="mutable-default",
        summary="mutable default argument value",
        rationale=(
            "Default values are evaluated once at definition time, so a "
            "mutable default is shared by every call — state leaks "
            "between invocations. Default to None and construct inside."
        ),
    ),
    Rule(
        code="RPL006",
        name="stats-enum-key",
        summary="dict comprehension in a to_dict/as_dict not keyed by enum .value/.name",
        rationale=(
            "Serialized stats must be keyed by the enum's stable .value "
            "(or .name), not the enum object or arbitrary expressions, or "
            "the JSON artifact is not loadable and not diffable across "
            "runs."
        ),
    ),
    # ------------------------------------------------------------------
    # Cross-module project passes (repro.lint.passes). These need the
    # whole-program index built by repro.lint.project and only run under
    # ``repro-lint --project``.
    # ------------------------------------------------------------------
    Rule(
        code="RPL100",
        name="serialization-missing-field",
        summary="dataclass field never emitted by its to_dict serializer",
        rationale=(
            "A to_dict/from_dict pair is the persistence contract for "
            "checkpoints, the result store and golden artifacts. A field "
            "that to_dict never writes silently disappears from every "
            "artifact: from_dict(to_dict(x)) loses state and resumed or "
            "store-served runs stop being bit-identical."
        ),
    ),
    Rule(
        code="RPL101",
        name="serialization-asymmetry",
        summary="to_dict and from_dict disagree about a serialized key",
        rationale=(
            "to_dict emitting a key from_dict cannot accept (or from_dict "
            "reconstructing a key to_dict never writes) means the round "
            "trip either raises on load or quietly fabricates state. Both "
            "sides of the pair must agree on the key set."
        ),
    ),
    Rule(
        code="RPL102",
        name="omit-requires-default",
        summary="conditionally-omitted serialized field cannot be reconstructed",
        rationale=(
            "The omit-when-empty convention (SimStats.metrics, "
            "snoop_map_sizes, sanitizer_violations) keeps old artifacts "
            "bit-identical, but it only round-trips if the dataclass "
            "field has a default (or from_dict tolerates the key's "
            "absence). A conditional emit of a default-less field makes "
            "from_dict(to_dict(x)) raise exactly when the field is empty."
        ),
    ),
    Rule(
        code="RPL110",
        name="state-version-ratchet",
        summary="snapshot/store-identity-relevant shape changed without a STATE_VERSION bump",
        rationale=(
            "The result store and warm-snapshot cache trust STATE_VERSION "
            "to invalidate entries when simulation semantics change. "
            "Adding or removing a field on an identity-relevant class "
            "without bumping it (or regenerating the fingerprint file "
            "after a proven bit-identical change) lets stale cache "
            "entries be served as current results."
        ),
    ),
    Rule(
        code="RPL111",
        name="stale-fingerprints",
        summary="checked-in fingerprint file out of date; run repro-lint --update-fingerprints",
        rationale=(
            "The ratchet only works while the committed fingerprints "
            "describe the current code. After a STATE_VERSION bump (or a "
            "watchlist change) the file must be regenerated and committed "
            "so the next drift is detected against the right baseline."
        ),
    ),
    Rule(
        code="RPL120",
        name="memo-epoch-hazard",
        summary="cache/memo attribute read without consulting the class's epoch counter",
        rationale=(
            "A class that carries an invalidation epoch (the plan-cache "
            "family: *_version / *_epoch counters) promises its memoised "
            "state is revalidated on every read. A method that reads a "
            "*_cache/*_memo attribute without consulting any epoch serves "
            "entries that survived an invalidation — the exact bug class "
            "the snoop-domain version stamp exists to prevent."
        ),
    ),
    Rule(
        code="RPL130",
        name="parallel-global-write",
        summary="function reachable from a parallel task writes a module-level global",
        rationale=(
            "parallel_map task functions run in worker processes — or "
            "inline when jobs=1 — so a module-global write either "
            "silently vanishes (processes) or leaks between cells "
            "(inline), and the two paths stop being bit-identical. Task "
            "code must keep all state in its arguments and return value."
        ),
    ),
    Rule(
        code="RPL131",
        name="parallel-mutable-capture",
        summary="function reachable from a parallel task mutates captured module state",
        rationale=(
            "Mutating a module-level list/dict/set from task code has the "
            "same split-brain failure as writing a global: each worker "
            "process mutates its own copy while the inline path mutates "
            "shared state, so results depend on the job count. Pass data "
            "in, return data out."
        ),
    ),
)

RULES_BY_CODE: Dict[str, Rule] = {rule.code: rule for rule in RULES}
RULES_BY_NAME: Dict[str, Rule] = {rule.name: rule for rule in RULES}


def resolve_rule(token: str) -> Rule:
    """Look a rule up by code or name; raise KeyError if unknown."""
    token = token.strip()
    if token in RULES_BY_CODE:
        return RULES_BY_CODE[token]
    if token in RULES_BY_NAME:
        return RULES_BY_NAME[token]
    raise KeyError(token)
