"""AST checker behind repro-lint.

Parses each file once, walks the tree with a visitor that tracks import
aliases (so ``import random as rnd`` is still caught), and reports
:class:`Violation` records. A violation on a line carrying
``# repro-lint: disable=CODE`` (comma-separated codes or rule names) is
suppressed; unknown tokens in a suppression are themselves reported so
typos cannot silently disable a rule.
"""

from __future__ import annotations

import ast
import io
import os
import re
import tokenize
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint.rules import RULES_BY_CODE, Rule, resolve_rule

_SUPPRESS_RE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\- ]+)")

# Wall-clock callables, by originating module (RPL004).
_TIME_FUNCS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FUNCS = {"now", "utcnow", "today"}

# Constructors whose result is mutable (RPL005).
_MUTABLE_CALLS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "OrderedDict",
    "defaultdict",
    "Counter",
    "deque",
}

# Method names whose first argument acts as a lookup key (RPL003).
_KEYED_METHODS = {"get", "setdefault", "pop"}

# Serializer method names whose dict comprehensions RPL006 audits.
_SERIALIZER_NAMES = {"to_dict", "as_dict"}

# Enum attribute accesses accepted as stable dict keys (RPL006).
_STABLE_KEY_ATTRS = {"value", "name"}


@dataclass(frozen=True)
class Violation:
    """One rule hit at a source location."""

    path: str
    line: int
    col: int
    rule: Rule
    message: str

    def format(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule.code} [{self.rule.name}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.rule.code,
            "rule": self.rule.name,
            "message": self.message,
        }


def _suppressions(source: str, path: str) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Map line number -> set of suppressed rule codes.

    Unknown rule tokens are themselves reported (RPL000) so a typo in a
    disable= comment cannot silently suppress nothing.
    """
    table: Dict[int, Set[str]] = {}
    bad: List[Violation] = []
    # Tokenize so only real comments count — a docstring or string literal
    # that merely *mentions* the suppression syntax is not a suppression.
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):  # pragma: no cover
        return table, bad
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _SUPPRESS_RE.search(tok.string)
        if not match:
            continue
        lineno = tok.start[0]
        codes: Set[str] = set()
        for token in match.group(1).split(","):
            token = token.strip()
            if not token:
                continue
            try:
                codes.add(resolve_rule(token).code)
            except KeyError:
                bad.append(
                    Violation(
                        path=path,
                        line=lineno,
                        col=tok.start[1],
                        rule=RULES_BY_CODE["RPL000"],
                        message=(
                            f"unknown rule {token!r} in repro-lint "
                            f"suppression (typo would silently disable "
                            f"nothing)"
                        ),
                    )
                )
        if codes:
            table.setdefault(lineno, set()).update(codes)
    return table, bad


def suppressions_for(
    source: str, path: str
) -> Tuple[Dict[int, Set[str]], List[Violation]]:
    """Public suppression-table builder for other lint layers.

    Project-mode passes (:mod:`repro.lint.project_api`) reuse the exact
    same same-line ``disable=`` semantics as the line-local checker, so
    one suppression convention covers every rule family.
    """
    return _suppressions(source, path)


class _Checker(ast.NodeVisitor):
    """Single-file visitor implementing every catalogue rule."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.violations: List[Violation] = []
        # Module aliases: local name -> canonical module ("random", "time",
        # "datetime"). `import random as rnd` maps rnd -> random.
        self.module_aliases: Dict[str, str] = {}
        # From-imported callables: local name -> (module, original name).
        self.from_imports: Dict[str, Tuple[str, str]] = {}
        # Nesting stack of function names, for RPL006's serializer scope.
        self._func_stack: List[str] = []

    # -- helpers -------------------------------------------------------

    def _report(self, node: ast.AST, code: str, message: str) -> None:
        rule = RULES_BY_CODE[code]
        self.violations.append(
            Violation(
                path=self.path,
                line=getattr(node, "lineno", 1),
                col=getattr(node, "col_offset", 0),
                rule=rule,
                message=message,
            )
        )

    def _module_of(self, node: ast.expr) -> Optional[str]:
        """Canonical module behind a Name node, if it aliases one."""
        if isinstance(node, ast.Name):
            return self.module_aliases.get(node.id)
        return None

    def _is_unordered(self, node: ast.expr) -> bool:
        """Does this expression evaluate to a set (unordered)?"""
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        # x | y on set literals etc. is out of scope: only flag the
        # syntactically obvious cases to keep the rule low-noise.
        return False

    # -- imports -------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in ("random", "time", "datetime"):
                self.module_aliases[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module:
            root = node.module.split(".")[0]
            if root in ("random", "time", "datetime"):
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        root,
                        alias.name,
                    )
        self.generic_visit(node)

    # -- RPL001: unordered iteration ----------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_unordered(node.iter):
            self._report(
                node.iter,
                "RPL001",
                "iterating an unordered set; sort or use an ordered container",
            )
        self.generic_visit(node)

    def _check_generators(
        self,
        node: "ast.ListComp | ast.SetComp | ast.GeneratorExp | ast.DictComp",
    ) -> None:
        for gen in node.generators:
            if self._is_unordered(gen.iter):
                self._report(
                    gen.iter,
                    "RPL001",
                    "comprehension over an unordered set; sort or use an "
                    "ordered container",
                )

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_generators(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._check_generators(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._check_generators(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_generators(node)
        self._check_serializer_keys(node)
        self.generic_visit(node)

    # -- RPL002/RPL003/RPL004: calls ----------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        self._check_module_call(node)
        self._check_keyed_method(node)
        self.generic_visit(node)

    def _check_module_call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            module = self._module_of(func.value)
            attr = func.attr
            if module == "random":
                # Constructing a dedicated generator is the fix, not the bug.
                if attr not in ("Random", "SystemRandom"):
                    self._report(
                        node,
                        "RPL002",
                        f"random.{attr}() uses the shared global RNG; use a "
                        f"seeded random.Random instance",
                    )
            elif module == "time" and attr in _TIME_FUNCS:
                self._report(
                    node,
                    "RPL004",
                    f"time.{attr}() reads the wall clock inside simulation "
                    f"code; use the simulated clock",
                )
            elif module == "datetime" and attr in _DATETIME_FUNCS:
                self._report(
                    node,
                    "RPL004",
                    f"datetime {attr}() reads the wall clock; use the "
                    f"simulated clock",
                )
            elif (
                isinstance(func.value, ast.Attribute)
                and self._module_of(func.value.value) == "datetime"
                and attr in _DATETIME_FUNCS
            ):
                # datetime.datetime.now() / datetime.date.today()
                self._report(
                    node,
                    "RPL004",
                    f"datetime {attr}() reads the wall clock; use the "
                    f"simulated clock",
                )
        elif isinstance(func, ast.Name) and func.id in self.from_imports:
            module, original = self.from_imports[func.id]
            if module == "random" and original not in ("Random", "SystemRandom"):
                self._report(
                    node,
                    "RPL002",
                    f"random.{original}() (imported as {func.id}) uses the "
                    f"shared global RNG; use a seeded random.Random instance",
                )
            elif module == "time" and original in _TIME_FUNCS:
                self._report(
                    node,
                    "RPL004",
                    f"time.{original}() (imported as {func.id}) reads the "
                    f"wall clock; use the simulated clock",
                )
            elif module == "datetime" and original in _DATETIME_FUNCS:
                self._report(
                    node,
                    "RPL004",
                    f"datetime {original}() reads the wall clock; use the "
                    f"simulated clock",
                )

    @staticmethod
    def _is_id_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def _check_keyed_method(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _KEYED_METHODS
            and node.args
            and self._is_id_call(node.args[0])
        ):
            self._report(
                node.args[0],
                "RPL003",
                f".{node.func.attr}(id(...)) keys a lookup on an object "
                f"address; addresses vary across runs and can be recycled",
            )

    # -- RPL003: id() as subscript or dict-literal key -----------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if self._is_id_call(node.slice):
            self._report(
                node.slice,
                "RPL003",
                "id(...) used as a subscript key; addresses vary across "
                "runs and can be recycled",
            )
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        for key in node.keys:
            if key is not None and self._is_id_call(key):
                self._report(
                    key,
                    "RPL003",
                    "id(...) used as a dict key; addresses vary across "
                    "runs and can be recycled",
                )
        self.generic_visit(node)

    # -- RPL005: mutable defaults -------------------------------------

    def _check_defaults(
        self, node: "ast.FunctionDef | ast.AsyncFunctionDef | ast.Lambda"
    ) -> None:
        args = node.args
        defaults = list(args.defaults) + [
            d for d in args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(
                default,
                (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
            ):
                self._report(
                    default,
                    "RPL005",
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside",
                )
            elif (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_CALLS
            ):
                self._report(
                    default,
                    "RPL005",
                    f"{default.func.id}() default argument is evaluated "
                    f"once and shared across calls; default to None and "
                    f"construct inside",
                )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._func_stack.append(node.name)
        self.generic_visit(node)
        self._func_stack.pop()

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    # -- RPL006: serializer dict keys ---------------------------------

    def _check_serializer_keys(self, node: ast.DictComp) -> None:
        if not any(name in _SERIALIZER_NAMES for name in self._func_stack):
            return
        key = node.key
        if isinstance(key, ast.Constant):
            return
        if isinstance(key, ast.Attribute) and key.attr in _STABLE_KEY_ATTRS:
            return
        self._report(
            key,
            "RPL006",
            "dict comprehension key in a to_dict/as_dict serializer must "
            "be a constant or an enum's .value/.name so the JSON artifact "
            "is stable",
        )


def lint_source(source: str, path: str = "<string>") -> List[Violation]:
    """Lint one already-read source string."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        raise ValueError(f"{path}: cannot parse: {exc}") from exc
    checker = _Checker(path)
    checker.visit(tree)
    suppressed, bad_suppressions = _suppressions(source, path)
    kept = [
        v
        for v in checker.violations
        if v.rule.code not in suppressed.get(v.line, set())
    ]
    kept.extend(bad_suppressions)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule.code))
    return kept


def lint_file(path: str) -> List[Violation]:
    with open(path, "r", encoding="utf-8") as handle:
        source = handle.read()
    return lint_source(source, path)


def iter_python_files(paths: Sequence[str]) -> Iterable[str]:
    """Expand files/directories into a sorted, deterministic file list."""
    out: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for dirpath, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(
                    d for d in dirnames if d != "__pycache__" and not d.startswith(".")
                )
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        out.append(os.path.join(dirpath, filename))
        else:
            out.append(path)
    return out


def lint_paths(paths: Sequence[str]) -> List[Violation]:
    """Lint every .py file under ``paths``; returns all violations."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path))
    return violations
