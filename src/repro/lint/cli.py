"""Console entry point: ``repro-lint [paths] [--json] [--list-rules]``.

Exit status: 0 when every linted file is clean, 1 when violations were
found, 2 on usage or parse errors — the same contract CI relies on.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.lint.checker import lint_paths
from repro.lint.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Reproducibility lint for the virtual-snooping simulator: "
            "flags unordered-set iteration, global-RNG use, id()-keyed "
            "caches, wall-clock reads, mutable defaults and unstable "
            "stats serialization keys."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit violations as a JSON array (for CI consumption)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        if args.json:
            print(
                json.dumps(
                    [
                        {
                            "code": rule.code,
                            "name": rule.name,
                            "summary": rule.summary,
                            "rationale": rule.rationale,
                        }
                        for rule in RULES
                    ],
                    indent=2,
                )
            )
        else:
            for rule in RULES:
                print(f"{rule.code}  {rule.name}")
                print(f"    {rule.summary}")
                print(f"    {rule.rationale}")
        return 0

    try:
        violations = lint_paths(args.paths)
    except (OSError, ValueError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps([v.to_dict() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.format())
        if violations:
            print(
                f"repro-lint: {len(violations)} violation(s) "
                f"(suppress intentional ones with "
                f"'# repro-lint: disable=CODE')",
                file=sys.stderr,
            )
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
