"""Console entry point: ``repro-lint [paths] [--project] [--json] ...``.

Modes:

* default — the line-local rules (RPL000–RPL006) over each file;
* ``--project`` — additionally build the whole-program index and run
  the four cross-module passes (RPL100s serialization contract, RPL110s
  state-version ratchet, RPL120 memo-epoch hazard, RPL130s parallel
  purity);
* ``--update-fingerprints`` — regenerate the checked-in state-version
  fingerprint file from the current tree and exit;
* ``--baseline FILE`` — ratchet mode: only findings not covered by the
  committed baseline are reported (``--write-baseline`` records the
  current findings as accepted).

Exit status: 0 when clean, 1 when violations were found, 2 on usage or
parse errors — the same contract CI relies on.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint.checker import Violation, lint_paths
from repro.lint.passes.state_version import DEFAULT_FINGERPRINTS_PATH
from repro.lint.rules import RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Reproducibility lint for the virtual-snooping simulator: "
            "line-local rules for unordered-set iteration, global-RNG "
            "use, id()-keyed caches, wall-clock reads, mutable defaults "
            "and unstable stats serialization keys; --project adds "
            "cross-module passes for the to_dict/from_dict contract, the "
            "STATE_VERSION ratchet, memo-epoch hazards and parallel-task "
            "purity."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit violations as a JSON array (for CI consumption)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    parser.add_argument(
        "--project",
        action="store_true",
        help="also run the cross-module passes (RPL100 and up)",
    )
    parser.add_argument(
        "--fingerprints",
        type=Path,
        default=None,
        metavar="FILE",
        help=(
            f"state-version fingerprint file "
            f"(default: {DEFAULT_FINGERPRINTS_PATH})"
        ),
    )
    parser.add_argument(
        "--update-fingerprints",
        action="store_true",
        help="regenerate the fingerprint file from the current tree and exit",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        metavar="FILE",
        help="ratchet mode: report only findings not in this baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="record the current findings into --baseline and exit 0",
    )
    return parser


def _list_rules(as_json: bool) -> int:
    if as_json:
        print(
            json.dumps(
                [
                    {
                        "code": rule.code,
                        "name": rule.name,
                        "summary": rule.summary,
                        "rationale": rule.rationale,
                    }
                    for rule in RULES
                ],
                indent=2,
            )
        )
    else:
        for rule in RULES:
            print(f"{rule.code}  {rule.name}")
            print(f"    {rule.summary}")
            print(f"    {rule.rationale}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        return _list_rules(args.json)
    if args.write_baseline and args.baseline is None:
        parser.error("--write-baseline requires --baseline FILE")

    # Deferred import: project mode pulls in the pass package, which the
    # plain line-local path does not need.
    from repro.lint import project_api
    from repro.lint.passes import state_version
    from repro.lint.project import ProjectIndex

    if args.update_fingerprints:
        try:
            index = ProjectIndex.build(args.paths)
        except (OSError, ValueError) as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        target = args.fingerprints or state_version.DEFAULT_FINGERPRINTS_PATH
        document = state_version.update_fingerprints(index, target)
        if document is None:
            print(
                f"repro-lint: {state_version.DEFAULT_VERSION_SYMBOL} not "
                f"found under {' '.join(args.paths)}; nothing to fingerprint",
                file=sys.stderr,
            )
            return 2
        print(f"repro-lint: wrote {len(document['entities'])} fingerprint(s) to {target}")
        return 0

    try:
        violations: List[Violation] = lint_paths(args.paths)
        if args.project:
            violations.extend(
                project_api.lint_project(
                    args.paths, fingerprints_path=args.fingerprints
                )
            )
            violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule.code))
    except (OSError, ValueError) as exc:
        print(f"repro-lint: {exc}", file=sys.stderr)
        return 2

    if args.baseline is not None:
        if args.write_baseline:
            project_api.write_baseline(args.baseline, violations)
            print(
                f"repro-lint: recorded {len(violations)} finding(s) into "
                f"{args.baseline}"
            )
            return 0
        try:
            accepted = project_api.load_baseline(args.baseline)
        except ValueError as exc:
            print(f"repro-lint: {exc}", file=sys.stderr)
            return 2
        violations = project_api.filter_baseline(violations, accepted)

    if args.json:
        print(json.dumps([v.to_dict() for v in violations], indent=2))
    else:
        for violation in violations:
            print(violation.format())
        if violations:
            print(
                f"repro-lint: {len(violations)} violation(s) "
                f"(suppress intentional ones with "
                f"'# repro-lint: disable=CODE')",
                file=sys.stderr,
            )
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
