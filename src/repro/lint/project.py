"""Project-aware layer under the cross-module lint passes.

A :class:`ProjectIndex` parses every Python file under the given paths
once and builds:

* a **module table** — dotted module names (derived from the package
  structure on disk) to :class:`ModuleInfo`, each carrying the parsed
  tree, import aliases, top-level classes/functions and module-level
  constant bindings;
* an **import graph** — project-internal edges only, for passes that
  reason about reachability across modules;
* **symbol resolution** — ``find_class("repro.sim.stats.SimStats")``,
  ``find_function``, ``find_method``, ``find_constant``, plus
  call-target resolution that follows ``from x import y`` aliases so a
  pass can walk from a call site in one module to the definition in
  another.

Everything is derived deterministically from sorted file walks, so two
runs over the same tree produce identical indices (and therefore
identical reports — the same property the line-local checker has).
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.checker import iter_python_files

# Mutable constructors recognised when classifying module-level bindings
# (the parallel-purity pass flags mutations of these from task code).
_MUTABLE_CONSTRUCTORS = {
    "list",
    "dict",
    "set",
    "bytearray",
    "OrderedDict",
    "defaultdict",
    "Counter",
    "deque",
}


@dataclass(frozen=True)
class FieldInfo:
    """One dataclass field: name, whether it can be omitted on init."""

    name: str
    has_default: bool
    lineno: int


@dataclass
class ClassInfo:
    """One class definition inside a module."""

    name: str
    qualname: str
    module_name: str
    path: str
    node: ast.ClassDef
    is_dataclass: bool
    fields: Dict[str, FieldInfo] = field(default_factory=dict)
    methods: Dict[str, ast.FunctionDef] = field(default_factory=dict)

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class FunctionInfo:
    """One top-level function definition inside a module."""

    name: str
    qualname: str
    module_name: str
    path: str
    node: ast.FunctionDef


@dataclass
class ModuleInfo:
    """One parsed module and its locally-resolvable names."""

    name: str
    path: str
    source: str
    tree: ast.Module
    # ``import x.y as z`` -> {"z": "x.y"}; plain ``import x.y`` -> {"x": "x"}.
    imports: Dict[str, str] = field(default_factory=dict)
    # ``from x.y import f as g`` -> {"g": ("x.y", "f")}.
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    # Module-level ``NAME = <expr>`` bindings (last assignment wins).
    constants: Dict[str, ast.expr] = field(default_factory=dict)
    # Subset of ``constants`` bound to a known-mutable container.
    mutable_globals: Dict[str, int] = field(default_factory=dict)


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.expr) -> bool:
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id == "ClassVar"
    if isinstance(node, ast.Attribute):
        return node.attr == "ClassVar"
    return False


def _field_has_default(value: Optional[ast.expr]) -> bool:
    if value is None:
        return False
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "field"
    ):
        return any(kw.arg in ("default", "default_factory") for kw in value.keywords)
    return True


def _is_mutable_binding(value: ast.expr) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id in _MUTABLE_CONSTRUCTORS
    )


def _class_info(module: "ModuleInfo", node: ast.ClassDef) -> ClassInfo:
    info = ClassInfo(
        name=node.name,
        qualname=f"{module.name}.{node.name}",
        module_name=module.name,
        path=module.path,
        node=node,
        is_dataclass=_is_dataclass_decorated(node),
    )
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if isinstance(stmt, ast.FunctionDef):
                info.methods[stmt.name] = stmt
        elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _is_classvar(stmt.annotation):
                continue
            info.fields[stmt.target.id] = FieldInfo(
                name=stmt.target.id,
                has_default=_field_has_default(stmt.value),
                lineno=stmt.lineno,
            )
    return info


def module_name_for(path: str) -> str:
    """Dotted module name derived from the package structure on disk.

    Walks up from the file while ``__init__.py`` siblings exist, so
    ``src/repro/sim/stats.py`` maps to ``repro.sim.stats`` regardless of
    where the lint was invoked from. A file outside any package keeps
    its bare stem.
    """
    path = os.path.abspath(path)
    directory, filename = os.path.split(path)
    stem = filename[: -len(".py")] if filename.endswith(".py") else filename
    parts: List[str] = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


class ProjectIndex:
    """Symbol tables and the import graph over one set of source paths."""

    def __init__(self) -> None:
        self.modules: Dict[str, ModuleInfo] = {}

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str]) -> "ProjectIndex":
        """Parse every .py file under ``paths`` into an index.

        Files that fail to parse raise ``ValueError`` (same contract as
        :func:`repro.lint.checker.lint_file`): a syntactically broken
        module would otherwise silently drop whole-program findings.
        """
        index = cls()
        for path in iter_python_files(paths):
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            try:
                tree = ast.parse(source, filename=path)
            except SyntaxError as exc:
                raise ValueError(f"{path}: cannot parse: {exc}") from exc
            index._add_module(path, source, tree)
        return index

    def _add_module(self, path: str, source: str, tree: ast.Module) -> None:
        module = ModuleInfo(
            name=module_name_for(path), path=path, source=source, tree=tree
        )
        for stmt in tree.body:
            if isinstance(stmt, ast.Import):
                for alias in stmt.names:
                    if alias.asname:
                        module.imports[alias.asname] = alias.name
                    else:
                        # ``import x.y`` binds the root package name.
                        root = alias.name.split(".")[0]
                        module.imports[root] = root
            elif isinstance(stmt, ast.ImportFrom):
                origin = self._from_origin(module.name, stmt)
                if origin is None:
                    continue
                for alias in stmt.names:
                    module.from_imports[alias.asname or alias.name] = (
                        origin,
                        alias.name,
                    )
            elif isinstance(stmt, ast.ClassDef):
                module.classes[stmt.name] = _class_info(module, stmt)
            elif isinstance(stmt, ast.FunctionDef):
                module.functions[stmt.name] = FunctionInfo(
                    name=stmt.name,
                    qualname=f"{module.name}.{stmt.name}",
                    module_name=module.name,
                    path=path,
                    node=stmt,
                )
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        module.constants[target.id] = stmt.value
                        if _is_mutable_binding(stmt.value):
                            module.mutable_globals[target.id] = stmt.lineno
            elif isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                if stmt.value is not None:
                    module.constants[stmt.target.id] = stmt.value
                    if _is_mutable_binding(stmt.value):
                        module.mutable_globals[stmt.target.id] = stmt.lineno
        self.modules[module.name] = module

    @staticmethod
    def _from_origin(module_name: str, node: ast.ImportFrom) -> Optional[str]:
        """Absolute origin module of a ``from ... import`` statement."""
        if node.level == 0:
            return node.module
        # Relative import: resolve against this module's package.
        parts = module_name.split(".")
        # ``from . import x`` inside pkg.sub strips one level for the
        # module itself, plus (level - 1) further packages.
        base = parts[: len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    # ------------------------------------------------------------------
    # Import graph.
    # ------------------------------------------------------------------

    def import_graph(self) -> Dict[str, Set[str]]:
        """module name -> project-internal modules it imports."""
        graph: Dict[str, Set[str]] = {name: set() for name in self.modules}
        for name, module in self.modules.items():
            edges = graph[name]
            for target in module.imports.values():
                resolved = self._closest_module(target)
                if resolved is not None and resolved != name:
                    edges.add(resolved)
            for origin, symbol in module.from_imports.values():
                # ``from pkg import module`` names a module, not a symbol.
                resolved = self._closest_module(f"{origin}.{symbol}")
                if resolved is None:
                    resolved = self._closest_module(origin)
                if resolved is not None and resolved != name:
                    edges.add(resolved)
        return graph

    def _closest_module(self, dotted: Optional[str]) -> Optional[str]:
        """The longest indexed module that prefixes ``dotted``."""
        if not dotted:
            return None
        parts = dotted.split(".")
        for end in range(len(parts), 0, -1):
            candidate = ".".join(parts[:end])
            if candidate in self.modules:
                return candidate
        return None

    # ------------------------------------------------------------------
    # Symbol resolution.
    # ------------------------------------------------------------------

    def _split(self, qualname: str) -> Optional[Tuple[ModuleInfo, List[str]]]:
        module_name = self._closest_module(qualname)
        if module_name is None:
            return None
        rest = qualname[len(module_name) :].lstrip(".")
        return self.modules[module_name], rest.split(".") if rest else []

    def find_class(self, qualname: str) -> Optional[ClassInfo]:
        located = self._split(qualname)
        if located is None:
            return None
        module, rest = located
        if len(rest) != 1:
            return None
        return module.classes.get(rest[0])

    def find_function(self, qualname: str) -> Optional[FunctionInfo]:
        located = self._split(qualname)
        if located is None:
            return None
        module, rest = located
        if len(rest) != 1:
            return None
        # Follow one level of re-export (``from x import f`` in __init__).
        info = module.functions.get(rest[0])
        if info is not None:
            return info
        target = module.from_imports.get(rest[0])
        if target is not None:
            return self.find_function(f"{target[0]}.{target[1]}")
        return None

    def find_method(self, qualname: str) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        located = self._split(qualname)
        if located is None:
            return None
        module, rest = located
        if len(rest) != 2:
            return None
        cls = module.classes.get(rest[0])
        if cls is None:
            return None
        method = cls.methods.get(rest[1])
        if method is None:
            return None
        return cls, method

    def find_constant(self, qualname: str) -> Optional[Tuple[ModuleInfo, ast.expr]]:
        located = self._split(qualname)
        if located is None:
            return None
        module, rest = located
        if len(rest) != 1:
            return None
        value = module.constants.get(rest[0])
        if value is None:
            return None
        return module, value

    def resolve_call_target(
        self, module: ModuleInfo, func: ast.expr
    ) -> Optional[FunctionInfo]:
        """The project function a call expression targets, if resolvable.

        Handles direct names (local defs and ``from x import f`` aliases)
        and one-level attribute access on an imported module
        (``runner.parallel_map``). Methods, constructors and anything
        dynamic resolve to ``None``.
        """
        if isinstance(func, ast.Name):
            local = module.functions.get(func.id)
            if local is not None:
                return local
            target = module.from_imports.get(func.id)
            if target is not None:
                return self.find_function(f"{target[0]}.{target[1]}")
            return None
        if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
            origin = module.imports.get(func.value.id)
            if origin is None:
                imported = module.from_imports.get(func.value.id)
                if imported is not None:
                    origin = f"{imported[0]}.{imported[1]}"
            if origin is not None:
                return self.find_function(f"{origin}.{func.attr}")
        return None

    def resolve_binding_origin(
        self, module: ModuleInfo, name: str
    ) -> Optional[Tuple[ModuleInfo, str]]:
        """Where a module-level name is actually bound, following imports."""
        if name in module.constants:
            return module, name
        target = module.from_imports.get(name)
        if target is not None:
            origin_module = self.modules.get(target[0])
            if origin_module is not None and target[1] in origin_module.constants:
                return origin_module, target[1]
        return None

    def resolve_string_collection(
        self, module: ModuleInfo, node: ast.expr
    ) -> Optional[List[str]]:
        """Constant strings behind a literal/constructor/named collection.

        Understands set/tuple/list literals, ``frozenset({...})`` style
        wrapping, dict literals (their keys), and ``Name`` references to
        module-level constants (followed through from-imports). Returns
        ``None`` when any element is not a string constant.
        """
        if isinstance(node, ast.Name):
            origin = self.resolve_binding_origin(module, node.id)
            if origin is None:
                return None
            origin_module, origin_name = origin
            return self.resolve_string_collection(
                origin_module, origin_module.constants[origin_name]
            )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("frozenset", "set", "tuple", "list")
            and len(node.args) == 1
        ):
            return self.resolve_string_collection(module, node.args[0])
        elements: List[ast.expr]
        if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
            elements = list(node.elts)
        elif isinstance(node, ast.Dict):
            elements = [key for key in node.keys if key is not None]
        else:
            return None
        out: List[str] = []
        for element in elements:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            out.append(element.value)
        return out
