"""Whole-program lint entry points: index build, passes, suppressions.

:func:`lint_project` is the project-mode twin of
:func:`repro.lint.checker.lint_paths`: build a
:class:`~repro.lint.project.ProjectIndex` over the paths, run the four
cross-module passes, then apply the same same-line
``# repro-lint: disable=CODE`` suppression convention the line-local
checker uses — anchored at each finding's *reported* line. RPL000
(bad suppression tokens) is deliberately **not** re-reported here: the
line-local checker already owns that rule, and project mode is meant to
compose with it, not duplicate its output.

The baseline helpers implement CI's ratchet mode: a committed baseline
records pre-existing ``(code, path)`` findings, and only findings *not*
covered by the baseline fail the build — so the catalogue can grow
without a flag day, while new regressions are still caught.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.lint.checker import Violation, suppressions_for
from repro.lint.passes import run_project_passes
from repro.lint.passes.state_version import WatchedEntity
from repro.lint.project import ProjectIndex

BASELINE_FORMAT = 1


def lint_project(
    paths: Sequence[str],
    *,
    fingerprints_path: Optional[Path] = None,
    watchlist: Optional[Sequence[WatchedEntity]] = None,
    version_symbol: Optional[str] = None,
    entry_points: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Cross-module findings over ``paths``, suppression-filtered, sorted."""
    index = ProjectIndex.build(paths)
    return lint_index(
        index,
        fingerprints_path=fingerprints_path,
        watchlist=watchlist,
        version_symbol=version_symbol,
        entry_points=entry_points,
    )


def lint_index(
    index: ProjectIndex,
    *,
    fingerprints_path: Optional[Path] = None,
    watchlist: Optional[Sequence[WatchedEntity]] = None,
    version_symbol: Optional[str] = None,
    entry_points: Optional[Sequence[str]] = None,
) -> List[Violation]:
    """Like :func:`lint_project` over an already-built index."""
    raw = run_project_passes(
        index,
        fingerprints_path=fingerprints_path,
        watchlist=watchlist,
        version_symbol=version_symbol,
        entry_points=entry_points,
    )
    tables: Dict[str, Dict[int, Set[str]]] = {}
    for module in index.modules.values():
        table, _bad = suppressions_for(module.source, module.path)
        tables[module.path] = table
    kept: List[Violation] = []
    seen: Set[Tuple[str, int, int, str, str]] = set()
    for violation in raw:
        table = tables.get(violation.path, {})
        if violation.rule.code in table.get(violation.line, set()):
            continue
        key = (
            violation.path,
            violation.line,
            violation.col,
            violation.rule.code,
            violation.message,
        )
        if key in seen:
            continue
        seen.add(key)
        kept.append(violation)
    kept.sort(key=lambda v: (v.path, v.line, v.col, v.rule.code))
    return kept


# ----------------------------------------------------------------------
# Baseline ratchet.
# ----------------------------------------------------------------------


def _normalize_path(path: str) -> str:
    """Invocation-independent form of a finding path for baseline keys."""
    if os.path.isabs(path):
        try:
            path = os.path.relpath(path)
        except ValueError:  # pragma: no cover - different drive on win32
            pass
    return os.path.normpath(path).replace(os.sep, "/")


def write_baseline(path: Path, violations: Sequence[Violation]) -> None:
    """Record current findings as the accepted pre-existing set."""
    entries = sorted(
        {
            (v.rule.code, _normalize_path(v.path), v.message)
            for v in violations
        }
    )
    document = {
        "format": BASELINE_FORMAT,
        "findings": [
            {"code": code, "path": norm, "message": message}
            for code, norm, message in entries
        ],
    }
    path.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def load_baseline(path: Path) -> Set[Tuple[str, str]]:
    """The accepted ``(code, path)`` pairs from a baseline file.

    Raises ``ValueError`` on an unreadable or unknown-format file — a
    broken baseline must fail CI loudly, not silently accept everything.
    """
    try:
        document = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise ValueError(f"{path}: cannot read baseline: {exc}") from exc
    if (
        not isinstance(document, dict)
        or document.get("format") != BASELINE_FORMAT
        or not isinstance(document.get("findings"), list)
    ):
        raise ValueError(f"{path}: unknown baseline format")
    accepted: Set[Tuple[str, str]] = set()
    for entry in document["findings"]:
        if isinstance(entry, dict) and "code" in entry and "path" in entry:
            accepted.add((str(entry["code"]), str(entry["path"])))
    return accepted


def filter_baseline(
    violations: Sequence[Violation], accepted: Set[Tuple[str, str]]
) -> List[Violation]:
    """Only the findings not covered by the baseline (the *new* ones).

    Matching is by ``(code, normalized path)``: coarser than exact
    line/message so pre-existing findings survive unrelated edits to the
    same file, which is what a ratchet wants — fail only on a rule
    firing somewhere it never fired before.
    """
    return [
        v
        for v in violations
        if (v.rule.code, _normalize_path(v.path)) not in accepted
    ]
