"""repro-lint: a small AST lint for simulation reproducibility hazards.

Six rules (``repro-lint --list-rules``) catch the specific ways this
codebase could silently lose run-to-run determinism: unordered set
iteration feeding ordered decisions, the shared global RNG, id()-keyed
caches, wall-clock reads in simulation logic, mutable default arguments,
and stats serializers not keyed by enum ``.value``. Suppress a
deliberate use with a same-line ``# repro-lint: disable=CODE`` comment.
"""

from repro.lint.checker import (
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
)
from repro.lint.rules import RULES, RULES_BY_CODE, RULES_BY_NAME, Rule, resolve_rule

__all__ = [
    "RULES",
    "RULES_BY_CODE",
    "RULES_BY_NAME",
    "Rule",
    "Violation",
    "iter_python_files",
    "lint_file",
    "lint_paths",
    "lint_source",
    "resolve_rule",
]
