"""repro-lint: AST lint for simulation reproducibility hazards.

Two layers share one rule catalogue and one suppression convention:

* **line-local** (RPL000–RPL006) — per-file rules for unordered set
  iteration, the shared global RNG, id()-keyed caches, wall-clock reads,
  mutable default arguments and unstable stats serializer keys;
* **project** (RPL100 and up, ``repro-lint --project``) — whole-program
  passes over the :class:`~repro.lint.project.ProjectIndex`: the
  ``to_dict``/``from_dict`` round-trip contract, the ``STATE_VERSION``
  fingerprint ratchet, memo-epoch hazards and parallel-task purity.

Suppress a deliberate use with a same-line
``# repro-lint: disable=CODE`` comment (codes or rule names, comma
separated); project findings anchor suppressions at the reported line.
"""

from repro.lint.checker import (
    Violation,
    iter_python_files,
    lint_file,
    lint_paths,
    lint_source,
    suppressions_for,
)
from repro.lint.project import ProjectIndex
from repro.lint.project_api import (
    filter_baseline,
    lint_index,
    lint_project,
    load_baseline,
    write_baseline,
)
from repro.lint.rules import RULES, RULES_BY_CODE, RULES_BY_NAME, Rule, resolve_rule

__all__ = [
    "ProjectIndex",
    "RULES",
    "RULES_BY_CODE",
    "RULES_BY_NAME",
    "Rule",
    "Violation",
    "filter_baseline",
    "iter_python_files",
    "lint_file",
    "lint_index",
    "lint_paths",
    "lint_project",
    "lint_source",
    "load_baseline",
    "resolve_rule",
    "suppressions_for",
    "write_baseline",
]
