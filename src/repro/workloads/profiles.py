"""Application profiles: the workload parameter catalogue.

Each :class:`AppProfile` condenses one benchmark application into the
statistics the paper's experiments depend on. The *targets* (miss rate,
content-shared access/miss shares, hypervisor/dom0 miss shares) are taken
from the paper's own measurements — Figure 1, Table I, Table V — so the
synthetic generator reproduces the distributions the real traces had,
which is the substitution DESIGN.md documents: filtering results depend
on where misses fall and when vCPUs move, not on instruction semantics.

Scheduler-behaviour fields (run bursts, blocking, I/O wakes) drive the
Section III credit-scheduler study; memory-behaviour fields drive the
Section V/VI coherence simulations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class AppProfile:
    """Workload model parameters for one application.

    Memory-behaviour targets (coherence simulation):

    Attributes:
        name: application name as the paper spells it.
        suite: "splash2", "parsec", or "server".
        miss_rate: target L2 miss+upgrade rate per L1 access.
        content_access_fraction: fraction of L1 accesses to content-shared
            pages (Table V "Access %").
        content_miss_share: fraction of L2 misses on content-shared pages
            (Table V "L2 miss %").
        hyp_miss_share: hypervisor share of L2 misses (Figure 1).
        dom0_miss_share: dom0 share of L2 misses (Figure 1).
        vm_shared_access_fraction: fraction of accesses to pages shared by
            the vCPUs of one VM (intra-VM communication).
        write_fraction: store probability on private / VM-shared pools.
        hot_private_pages: per-vCPU hot working set, in pages.
        hot_shared_pages: per-VM hot intra-VM-shared pool, in pages.
        hot_content_pages: per-VM hot content-shared pool, in pages
            (identical across VMs running the same application).
        stream_pages: span of each cold streaming region, in pages.

    Scheduler-behaviour parameters (Section III study):

    Attributes:
        run_burst_ms: mean CPU burst before a vCPU blocks.
        block_ms: mean blocked time per blocking event.
        io_wakes_per_sec: dom0 wake-up rate induced per running VM
            (I/O intensity; drives preemption churn).
        work_ms_per_vcpu: CPU work each vCPU must complete.
        migration_warmup_ms: cold-cache warm-up time after a migration.
        warmup_efficiency: work rate during warm-up (0..1).
    """

    name: str
    suite: str
    # Memory behaviour.
    miss_rate: float = 0.02
    content_access_fraction: float = 0.02
    content_miss_share: float = 0.02
    hyp_miss_share: float = 0.01
    dom0_miss_share: float = 0.01
    vm_shared_access_fraction: float = 0.08
    write_fraction: float = 0.25
    hot_private_pages: int = 8
    hot_shared_pages: int = 4
    hot_content_pages: int = 4
    stream_pages: int = 4096
    content_stream_pages: int = 192
    content_write_fraction: float = 0.0
    shared_write_fraction: float = 0.02
    # Scheduler behaviour.
    run_burst_ms: float = 30.0
    block_ms: float = 2.0
    io_wakes_per_sec: float = 50.0
    work_ms_per_vcpu: float = 3000.0
    migration_warmup_ms: float = 0.5
    warmup_efficiency: float = 0.6

    def __post_init__(self) -> None:
        fractions = {
            "miss_rate": self.miss_rate,
            "content_access_fraction": self.content_access_fraction,
            "content_miss_share": self.content_miss_share,
            "hyp_miss_share": self.hyp_miss_share,
            "dom0_miss_share": self.dom0_miss_share,
            "vm_shared_access_fraction": self.vm_shared_access_fraction,
            "write_fraction": self.write_fraction,
            "warmup_efficiency": self.warmup_efficiency,
        }
        for field_name, value in fractions.items():
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {field_name}={value} not in [0,1]")
        if self.content_miss_share + self.hyp_miss_share + self.dom0_miss_share > 1.0:
            raise ValueError(f"{self.name}: miss shares exceed 100%")
        if self.content_access_fraction < self.content_miss_share * self.miss_rate:
            raise ValueError(
                f"{self.name}: content accesses cannot be fewer than content misses"
            )

    @property
    def hyp_dom0_miss_share(self) -> float:
        """Combined hypervisor + dom0 share of misses (Figure 1 stack)."""
        return self.hyp_miss_share + self.dom0_miss_share


def _splash2(name: str, **kw) -> AppProfile:
    return AppProfile(name=name, suite="splash2", **kw)


def _parsec(name: str, **kw) -> AppProfile:
    return AppProfile(name=name, suite="parsec", **kw)


def _server(name: str, **kw) -> AppProfile:
    return AppProfile(name=name, suite="server", **kw)


# ----------------------------------------------------------------------
# Catalogue. Targets follow the paper: Figure 1 (hyp/dom0 miss shares),
# Table I (relocation behaviour, via burst/block/io parameters), and
# Table V (content-shared access and miss shares). Working-set sizes are
# plausible values consistent with each application's character; they
# control eviction speed, which Figures 7-9 depend on.
# ----------------------------------------------------------------------

PROFILES: Dict[str, AppProfile] = {
    profile.name: profile
    for profile in [
        # ---- SPLASH-2 (coherence simulation, Tables IV-VI, Figs 6-10) ----
        _splash2(
            "cholesky",
            miss_rate=0.012,
            content_access_fraction=0.0145,
            content_miss_share=0.0266,
            vm_shared_access_fraction=0.10,
            hot_private_pages=10,
            hot_content_pages=1,
        ),
        _splash2(
            "fft",
            miss_rate=0.030,
            content_access_fraction=0.0543,
            content_miss_share=0.3064,
            vm_shared_access_fraction=0.12,
            hot_private_pages=8,
            hot_content_pages=2,
            stream_pages=8192,
        ),
        _splash2(
            "lu",
            miss_rate=0.012,
            content_access_fraction=0.0043,
            content_miss_share=0.0887,
            vm_shared_access_fraction=0.14,
            hot_private_pages=12,
            hot_content_pages=1,
        ),
        _splash2(
            "ocean",
            miss_rate=0.045,
            content_access_fraction=0.0040,
            content_miss_share=0.0083,
            vm_shared_access_fraction=0.12,
            hot_private_pages=12,
            hot_content_pages=2,
            stream_pages=8192,
        ),
        _splash2(
            "radix",
            miss_rate=0.035,
            content_access_fraction=0.2047,
            content_miss_share=0.0096,
            vm_shared_access_fraction=0.10,
            hot_private_pages=6,
            hot_content_pages=10,
            stream_pages=8192,
        ),
        # ---- PARSEC ----
        _parsec(
            "blackscholes",
            miss_rate=0.006,
            content_access_fraction=0.4616,
            content_miss_share=0.4110,
            hyp_miss_share=0.008,
            dom0_miss_share=0.010,
            vm_shared_access_fraction=0.04,
            hot_private_pages=3,
            hot_content_pages=10,
            run_burst_ms=400.0,
            block_ms=4.0,
            io_wakes_per_sec=4.0,
            work_ms_per_vcpu=1500.0,
        ),
        _parsec(
            "bodytrack",
            hyp_miss_share=0.018,
            dom0_miss_share=0.022,
            run_burst_ms=6.0,
            block_ms=1.2,
            io_wakes_per_sec=60.0,
        ),
        _parsec(
            "canneal",
            miss_rate=0.050,
            content_access_fraction=0.2516,
            content_miss_share=0.5149,
            hyp_miss_share=0.012,
            dom0_miss_share=0.015,
            vm_shared_access_fraction=0.06,
            hot_private_pages=6,
            hot_content_pages=10,
            stream_pages=16384,
            run_burst_ms=7.0,
            block_ms=1.5,
            io_wakes_per_sec=45.0,
        ),
        _parsec(
            "dedup",
            miss_rate=0.030,
            content_access_fraction=0.020,
            content_miss_share=0.030,
            hyp_miss_share=0.035,
            dom0_miss_share=0.075,
            vm_shared_access_fraction=0.18,
            hot_private_pages=8,
            run_burst_ms=1.0,
            block_ms=0.5,
            io_wakes_per_sec=500.0,
            work_ms_per_vcpu=1800.0,
        ),
        _parsec(
            "facesim",
            hyp_miss_share=0.018,
            dom0_miss_share=0.020,
            run_burst_ms=8.0,
            block_ms=1.5,
            io_wakes_per_sec=50.0,
        ),
        _parsec(
            "ferret",
            miss_rate=0.020,
            content_access_fraction=0.0364,
            content_miss_share=0.0513,
            hyp_miss_share=0.022,
            dom0_miss_share=0.028,
            vm_shared_access_fraction=0.16,
            hot_private_pages=10,
            hot_content_pages=1,
            run_burst_ms=60.0,
            block_ms=3.0,
            io_wakes_per_sec=25.0,
        ),
        _parsec(
            "fluidanimate",
            hyp_miss_share=0.013,
            dom0_miss_share=0.015,
            run_burst_ms=12.0,
            block_ms=1.2,
            io_wakes_per_sec=35.0,
        ),
        _parsec(
            "freqmine",
            hyp_miss_share=0.035,
            dom0_miss_share=0.045,
            run_burst_ms=900.0,
            block_ms=2.0,
            io_wakes_per_sec=2.0,
            work_ms_per_vcpu=2500.0,
        ),
        _parsec(
            "raytrace",
            hyp_miss_share=0.030,
            dom0_miss_share=0.040,
            run_burst_ms=120.0,
            block_ms=3.0,
            io_wakes_per_sec=12.0,
        ),
        _parsec(
            "streamcluster",
            hyp_miss_share=0.015,
            dom0_miss_share=0.018,
            run_burst_ms=7.5,
            block_ms=1.0,
            io_wakes_per_sec=45.0,
        ),
        _parsec(
            "swaptions",
            hyp_miss_share=0.008,
            dom0_miss_share=0.010,
            run_burst_ms=500.0,
            block_ms=4.0,
            io_wakes_per_sec=3.0,
        ),
        _parsec(
            "vips",
            hyp_miss_share=0.020,
            dom0_miss_share=0.028,
            run_burst_ms=2.5,
            block_ms=0.8,
            io_wakes_per_sec=220.0,
        ),
        _parsec(
            "x264",
            hyp_miss_share=0.016,
            dom0_miss_share=0.022,
            run_burst_ms=7.0,
            block_ms=1.8,
            io_wakes_per_sec=70.0,
        ),
        # ---- Servers ----
        _server(
            "specjbb",
            miss_rate=0.025,
            content_access_fraction=0.0948,
            content_miss_share=0.3774,
            hyp_miss_share=0.030,
            dom0_miss_share=0.045,
            vm_shared_access_fraction=0.20,
            hot_private_pages=10,
            hot_content_pages=5,
            stream_pages=16384,
            run_burst_ms=15.0,
            block_ms=2.0,
            io_wakes_per_sec=80.0,
        ),
        _server(
            "oltp",
            miss_rate=0.030,
            content_access_fraction=0.05,
            content_miss_share=0.08,
            hyp_miss_share=0.050,
            dom0_miss_share=0.100,
            vm_shared_access_fraction=0.25,
            run_burst_ms=2.0,
            block_ms=1.5,
            io_wakes_per_sec=600.0,
        ),
        _server(
            "specweb",
            miss_rate=0.028,
            content_access_fraction=0.06,
            content_miss_share=0.10,
            hyp_miss_share=0.060,
            dom0_miss_share=0.130,
            vm_shared_access_fraction=0.22,
            run_burst_ms=1.5,
            block_ms=1.2,
            io_wakes_per_sec=800.0,
        ),
    ]
}

# The application sets each experiment uses, as the paper lists them.
COHERENCE_APPS: List[str] = [
    "cholesky", "fft", "lu", "ocean", "radix",
    "blackscholes", "canneal", "dedup", "ferret", "specjbb",
]
"""Tables IV, Figs 6-8: SPLASH-2 + PARSEC subset + SPECjbb."""

CONTENT_APPS: List[str] = [
    "cholesky", "fft", "lu", "ocean", "radix",
    "blackscholes", "canneal", "ferret", "specjbb",
]
"""Table V / VI, Fig 10 (dedup excluded, as in the paper)."""

PARSEC_APPS: List[str] = [
    "blackscholes", "bodytrack", "canneal", "dedup", "facesim", "ferret",
    "fluidanimate", "freqmine", "raytrace", "streamcluster", "swaptions",
    "vips", "x264",
]
"""Figure 3 / Table I: the 13 PARSEC applications."""

FIG1_APPS: List[str] = PARSEC_APPS + ["oltp", "specweb"]
"""Figure 1: PARSEC + OLTP + SPECweb."""


def get_profile(name: str) -> AppProfile:
    """Look up a profile by name; raises ``KeyError`` with suggestions."""
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown application {name!r}; known: {known}") from None
