"""Synthetic per-VM access-stream generators.

A :class:`VmWorkload` turns an :class:`~repro.workloads.profiles.AppProfile`
into deterministic memory-access streams, one per vCPU. The address space
of a VM is laid out in pools, each with a *hot* set (cache-resident,
reused) and a *streaming* region (cold, one-touch per pass):

====================  =========================================  =========
pool                  guest pages                                 sharing
====================  =========================================  =========
private hot/stream    per-vCPU regions                            VM-private
VM-shared hot/stream  one region per VM                           VM-private
                      (shared among the VM's vCPUs)
content hot/stream    identical page numbers and content labels   RO-shared
                      in every VM running the same application
hypervisor pool       hypervisor address space                    RW-shared
dom0 pool             dom0 address space                          RW-shared
====================  =========================================  =========

Hot accesses nearly always hit; streaming accesses nearly always miss.
The per-category probabilities are solved from the profile's targets so
that the *shares* of L1 accesses and L2 misses land on the paper's
measured values (see DESIGN.md §2). Streaming through the content region
is what creates the cross-VM holder distribution of Table VI: several
VMs walk the same region, so a block missed by one VM is often still
resident in another VM's cache.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Iterator, List, Tuple

from repro.workloads.profiles import AppProfile
from repro.workloads.trace import Initiator, MemoryAccess

BLOCKS_PER_PAGE = 64
_PAGE_SHIFT = BLOCKS_PER_PAGE.bit_length() - 1  # block number -> page offset
_BLOCK_MASK = BLOCKS_PER_PAGE - 1
_tuple_new = tuple.__new__

# Guest-page-number bases of each pool (disjoint by construction).
SHARED_HOT_BASE = 0x20000
SHARED_STREAM_BASE = 0x28000
CONTENT_HOT_BASE = 0x40000
CONTENT_STREAM_BASE = 0x48000
PRIVATE_BASE = 0x100000
PRIVATE_VCPU_STRIDE = 0x20000
PRIVATE_STREAM_OFFSET = 0x10000

# Pages in the hypervisor's and dom0's own address spaces.
HYP_POOL_BASE = 0x1000
HYP_POOL_PAGES = 512
DOM0_POOL_BASE = 0x2000
DOM0_POOL_PAGES = 512

# Category indices (order defines the cumulative-probability table).
_CONTENT_STREAM = 0
_CONTENT_HOT = 1
_HYP = 2
_DOM0 = 3
_SHARED_STREAM = 4
_SHARED_HOT = 5
_PRIVATE_STREAM = 6
_PRIVATE_HOT = 7


class _StreamCursor:
    """A wrapping sequential walk over ``pages`` pages of one region."""

    __slots__ = ("base", "pages", "page", "block")

    def __init__(self, base: int, pages: int, start_page: int = 0) -> None:
        self.base = base
        self.pages = pages
        self.page = start_page % pages
        self.block = 0

    def next(self) -> Tuple[int, int]:
        location = (self.base + self.page, self.block)
        self.block += 1
        if self.block == BLOCKS_PER_PAGE:
            self.block = 0
            self.page = (self.page + 1) % self.pages
        return location


class CategoryMix:
    """Solved per-access category probabilities plus derived knobs."""

    __slots__ = ("probabilities", "shared_write_fraction")

    def __init__(self, probabilities: List[float], shared_write_fraction: float) -> None:
        self.probabilities = probabilities
        self.shared_write_fraction = shared_write_fraction


# A store to a hot VM-shared block costs roughly this many coherence
# transactions once re-reads and upgrades by the other vCPUs are counted
# (measured empirically on the simulator with 4 vCPUs per VM).
PINGPONG_FACTOR = 8.0


def solve_category_mix(
    profile: AppProfile, include_hypervisor: bool = True
) -> CategoryMix:
    """Per-access probabilities of the eight access categories.

    Streaming categories are sized so each pool's share of *misses* hits
    the profile target (stream accesses miss with probability ~1, hot
    accesses hit with probability ~1); hot categories absorb the rest of
    the pool's *access* share.

    ``include_hypervisor=False`` reproduces the paper's Section V
    simulator, which runs neither the hypervisor nor dom0: their miss
    mass is folded back into the guest pools.
    """
    m = profile.miss_rate
    hyp_share = profile.hyp_miss_share if include_hypervisor else 0.0
    dom0_share = profile.dom0_miss_share if include_hypervisor else 0.0
    p_content_stream = profile.content_miss_share * m
    p_content_hot = profile.content_access_fraction - p_content_stream
    p_hyp = hyp_share * m
    p_dom0 = dom0_share * m
    rest_access = 1.0 - profile.content_access_fraction - p_hyp - p_dom0
    if rest_access <= 0.0:
        raise ValueError(f"{profile.name}: no access mass left for private pools")
    rest_miss = m * (1.0 - profile.content_miss_share - hyp_share - dom0_share)
    a_shared = min(profile.vm_shared_access_fraction, rest_access)
    a_private = rest_access - a_shared
    shared_budget = rest_miss * (a_shared / rest_access)
    # Stores to hot VM-shared blocks trigger invalidation ping-pong; its
    # expected coherence-transaction mass must come out of the shared
    # pool's miss budget or the totals overshoot. Cap the effective
    # write fraction so ping-pong consumes at most ~30% of the budget.
    a_shared_hot = max(a_shared - shared_budget, 1e-12)
    write_cap = 0.3 * shared_budget / (PINGPONG_FACTOR * a_shared_hot)
    shared_write = min(profile.shared_write_fraction, write_cap)
    pingpong_mass = PINGPONG_FACTOR * shared_write * a_shared_hot
    p_shared_stream = max(shared_budget - pingpong_mass, 0.0)
    p_private_stream = rest_miss - shared_budget
    p_shared_hot = a_shared - p_shared_stream
    p_private_hot = a_private - p_private_stream
    probabilities = [
        p_content_stream,
        p_content_hot,
        p_hyp,
        p_dom0,
        p_shared_stream,
        p_shared_hot,
        p_private_stream,
        p_private_hot,
    ]
    if any(p < 0 for p in probabilities):
        raise ValueError(
            f"{profile.name}: inconsistent targets produced negative "
            f"category probability {probabilities}"
        )
    return CategoryMix(probabilities, shared_write)


def solve_category_probabilities(
    profile: AppProfile, include_hypervisor: bool = True
) -> List[float]:
    """Back-compat helper: just the probability list of the mix."""
    return solve_category_mix(profile, include_hypervisor).probabilities


class VmWorkload:
    """Deterministic access streams for one VM running one application."""

    def __init__(
        self,
        profile: AppProfile,
        vm_id: int,
        num_vcpus: int,
        seed: int = 0,
        include_hypervisor: bool = True,
        working_set_scale: float = 1.0,
        coverage_accesses: int = 6000,
    ) -> None:
        if working_set_scale <= 0:
            raise ValueError(f"working_set_scale must be positive, got {working_set_scale}")
        self.profile = profile
        self.vm_id = vm_id
        self.num_vcpus = num_vcpus
        self._rng = random.Random(f"{seed}/{profile.name}/{vm_id}")
        # Bound methods, hoisted: next_access is the single hottest call in
        # the simulator and method lookup on the Random instance is a
        # measurable fraction of it.
        self._random = self._rng.random
        self._randrange = self._rng.randrange
        self._getrandbits = self._rng.getrandbits
        mix = solve_category_mix(profile, include_hypervisor)
        self.shared_write_fraction = mix.shared_write_fraction
        probabilities = mix.probabilities
        # Hot-pool sizes, in blocks. The profile's page counts are upper
        # bounds, additionally scaled for migration studies and capped so
        # each pool is touched ~3x per core within ``coverage_accesses``
        # (the warm-up budget) — a pool too large for its access rate
        # would stay partially cold and leak uncalibrated misses.
        scale = working_set_scale

        def pool_blocks(pages: int, touch_probability: float) -> int:
            bound = max(1, round(pages * scale)) * BLOCKS_PER_PAGE
            coverage_cap = int(touch_probability * coverage_accesses / 3)
            return max(16, min(bound, coverage_cap)) if coverage_cap > 0 else 16

        self.private_hot_blocks = pool_blocks(
            profile.hot_private_pages, probabilities[_PRIVATE_HOT]
        )
        self.shared_hot_blocks = pool_blocks(
            profile.hot_shared_pages, probabilities[_SHARED_HOT]
        )
        self.content_hot_blocks = pool_blocks(
            profile.hot_content_pages, probabilities[_CONTENT_HOT]
        )
        self.hot_content_pages = -(-self.content_hot_blocks // BLOCKS_PER_PAGE)
        # Bit widths for the inlined ``Random._randbelow_with_getrandbits``
        # in next_access (pool sizes are fixed for the workload's lifetime).
        self._private_hot_bits = self.private_hot_blocks.bit_length()
        self._shared_hot_bits = self.shared_hot_blocks.bit_length()
        self._content_hot_bits = self.content_hot_blocks.bit_length()
        self.content_stream_pages = max(4, round(profile.content_stream_pages * scale))
        self._cumulative: List[float] = []
        total = 0.0
        for p in probabilities:
            total += p
            self._cumulative.append(total)
        # Flat attributes for next_access (skip the per-access profile
        # attribute chain and the cumulative[-1] index).
        self._cum_total = self._cumulative[-1]
        self._write_fraction = profile.write_fraction
        self._content_write_fraction = profile.content_write_fraction
        # Streaming cursors. Private streams are per-vCPU; the VM-shared
        # and content streams are walked jointly by all vCPUs of the VM.
        # Content cursors start at a per-VM random phase so the VMs'
        # positions in the (identical) region partially overlap — that
        # overlap is the source of cross-VM cache holders (Table VI).
        self._private_streams = [
            _StreamCursor(
                PRIVATE_BASE + v * PRIVATE_VCPU_STRIDE + PRIVATE_STREAM_OFFSET,
                profile.stream_pages,
            )
            for v in range(num_vcpus)
        ]
        self._shared_stream = _StreamCursor(SHARED_STREAM_BASE, profile.stream_pages)
        # Content-stream phase: VMs running the same application start
        # together in reality, so their walks through the (identical)
        # content region are loosely aligned. VMs are phased in *pairs* —
        # a pair shares a nearby position (a few pages apart), pairs are
        # half a region apart — so the trailing VM of a pair frequently
        # misses onto blocks its partner fetched moments earlier. That
        # partner is also the VM sharing the most content pages in time,
        # i.e. the natural friend VM (Table VI, Figure 10).
        # The pair offset must be small relative to how far a VM streams
        # during a run, or the trailing VM never reaches its partner's
        # footprint; scale it to ~half the expected warm-up advance.
        advance_blocks = probabilities[_CONTENT_STREAM] * num_vcpus * coverage_accesses
        pair_jitter = min(
            max(1, int(advance_blocks / 2) // BLOCKS_PER_PAGE + 1),
            max(1, self.content_stream_pages // 8),
        )
        pair_index = max(vm_id - 1, 0) // 2
        member = max(vm_id - 1, 0) % 2
        self.content_stream_phase = (
            pair_index * (self.content_stream_pages // 2) + member * pair_jitter
        ) % self.content_stream_pages
        self._content_stream = _StreamCursor(
            CONTENT_STREAM_BASE,
            self.content_stream_pages,
            start_page=self.content_stream_phase,
        )
        self._hyp_stream = _StreamCursor(HYP_POOL_BASE, HYP_POOL_PAGES)
        self._dom0_stream = _StreamCursor(DOM0_POOL_BASE, DOM0_POOL_PAGES)
        # Per-vCPU hot-path closures, built lazily by stepper_for().
        self._steppers: dict = {}

    # ------------------------------------------------------------------
    # Content-sharing registration.
    # ------------------------------------------------------------------

    def content_pages(self) -> Iterator[Tuple[int, int]]:
        """(guest_page, content_label) pairs for the content pools.

        Labels equal the page number, so every VM running the same
        application produces identical labels and the scanner merges them.
        """
        for i in range(self.hot_content_pages):
            page = CONTENT_HOT_BASE + i
            yield page, page
        for i in range(self.content_stream_pages):
            page = CONTENT_STREAM_BASE + i
            yield page, page

    # ------------------------------------------------------------------
    # Stream generation.
    # ------------------------------------------------------------------

    def stepper_for(self, vcpu_index: int):
        """The cached hot-path closure for ``vcpu_index`` (see make_stepper)."""
        step = self._steppers.get(vcpu_index)
        if step is None:
            step = self._steppers[vcpu_index] = self.make_stepper(vcpu_index)
        return step

    def make_stepper(self, vcpu_index: int):
        """Build the per-vCPU access-generation closure.

        Returns a zero-argument callable producing ``(initiator,
        guest_page, block_index, is_write)``. Every piece of workload
        state is captured in closure cells, so the simulation engine's
        inner loop can call it with no attribute traffic and no
        :class:`MemoryAccess` allocation. :meth:`next_access` delegates
        here, so the RNG draw sequence is identical whichever entry point
        a caller uses — that sequence is part of the deterministic
        contract: reordering or eliding draws changes every downstream
        statistic, so optimisations must keep the exact draw order of
        each branch.

        The hot-pool branches inline ``random.Random._randbelow_with_
        getrandbits`` for the pool's fixed size: the getrandbits call
        sequence — and therefore the RNG stream — is exactly what
        ``randrange(n)`` would consume. Streaming branches inline the
        :class:`_StreamCursor` walk (shared cursor objects keep vCPUs of
        one VM jointly walking the shared/content regions).
        """
        random = self._random
        getrandbits = self._getrandbits
        cumulative = self._cumulative
        cum_total = self._cum_total
        write_fraction = self._write_fraction
        shared_write_fraction = self.shared_write_fraction
        content_write_fraction = self._content_write_fraction
        private_hot_blocks = self.private_hot_blocks
        private_hot_bits = self._private_hot_bits
        shared_hot_blocks = self.shared_hot_blocks
        shared_hot_bits = self._shared_hot_bits
        content_hot_blocks = self.content_hot_blocks
        content_hot_bits = self._content_hot_bits
        private_base = PRIVATE_BASE + vcpu_index * PRIVATE_VCPU_STRIDE
        private_stream = self._private_streams[vcpu_index]
        shared_stream = self._shared_stream
        content_stream = self._content_stream
        hyp_stream = self._hyp_stream
        dom0_stream = self._dom0_stream
        guest = Initiator.GUEST
        hypervisor = Initiator.HYPERVISOR
        dom0 = Initiator.DOM0

        def step():
            category = bisect_right(cumulative, random() * cum_total)
            if category > _PRIVATE_HOT:
                category = _PRIVATE_HOT
            initiator = guest
            is_write = random() < write_fraction
            if category == _PRIVATE_HOT:
                r = getrandbits(private_hot_bits)
                while r >= private_hot_blocks:
                    r = getrandbits(private_hot_bits)
                page = private_base + (r >> _PAGE_SHIFT)
                block = r & _BLOCK_MASK
            elif category == _PRIVATE_STREAM:
                cursor = private_stream
                page = cursor.base + cursor.page
                block = cursor.block
                nxt = block + 1
                if nxt == BLOCKS_PER_PAGE:
                    cursor.block = 0
                    cursor.page = (cursor.page + 1) % cursor.pages
                else:
                    cursor.block = nxt
            elif category == _SHARED_HOT:
                r = getrandbits(shared_hot_bits)
                while r >= shared_hot_blocks:
                    r = getrandbits(shared_hot_bits)
                page = SHARED_HOT_BASE + (r >> _PAGE_SHIFT)
                block = r & _BLOCK_MASK
                is_write = random() < shared_write_fraction
            elif category == _SHARED_STREAM:
                cursor = shared_stream
                page = cursor.base + cursor.page
                block = cursor.block
                nxt = block + 1
                if nxt == BLOCKS_PER_PAGE:
                    cursor.block = 0
                    cursor.page = (cursor.page + 1) % cursor.pages
                else:
                    cursor.block = nxt
                is_write = random() < shared_write_fraction
            elif category == _CONTENT_STREAM:
                cursor = content_stream
                page = cursor.base + cursor.page
                block = cursor.block
                nxt = block + 1
                if nxt == BLOCKS_PER_PAGE:
                    cursor.block = 0
                    cursor.page = (cursor.page + 1) % cursor.pages
                else:
                    cursor.block = nxt
                is_write = random() < content_write_fraction
            elif category == _CONTENT_HOT:
                r = getrandbits(content_hot_bits)
                while r >= content_hot_blocks:
                    r = getrandbits(content_hot_bits)
                page = CONTENT_HOT_BASE + (r >> _PAGE_SHIFT)
                block = r & _BLOCK_MASK
                is_write = random() < content_write_fraction
            elif category == _HYP:
                cursor = hyp_stream
                page = cursor.base + cursor.page
                block = cursor.block
                nxt = block + 1
                if nxt == BLOCKS_PER_PAGE:
                    cursor.block = 0
                    cursor.page = (cursor.page + 1) % cursor.pages
                else:
                    cursor.block = nxt
                initiator = hypervisor
                is_write = random() < 0.2
            else:
                cursor = dom0_stream
                page = cursor.base + cursor.page
                block = cursor.block
                nxt = block + 1
                if nxt == BLOCKS_PER_PAGE:
                    cursor.block = 0
                    cursor.page = (cursor.page + 1) % cursor.pages
                else:
                    cursor.block = nxt
                initiator = dom0
                is_write = random() < 0.2
            return initiator, page, block, is_write

        return step

    @property
    def stream_chunk_independent(self) -> bool:
        """Whether :meth:`stream_chunk` is exact under the engine's
        interleaving. The VM's vCPUs share one RNG (and the shared /
        content / hyp / dom0 cursors), so materialising one vCPU's run
        ahead of time reorders draws against its siblings — chunking is
        only interleaving-exact when the VM has a single vCPU. The
        batched kernel replays multi-vCPU VMs through a
        :class:`~repro.sim.mtstream.WordStream` instead, which preserves
        the engine's exact draw interleaving."""
        return self.num_vcpus == 1

    def stream_chunk(self, vcpu_index: int, count: int) -> List[tuple]:
        """Materialise ``count`` accesses of one vCPU in bulk.

        Returns a list of ``(initiator, guest_page, block_index,
        is_write)`` tuples — the next ``count`` results of the vCPU's
        stepper, consuming the VM RNG as if this vCPU ran alone. See
        :attr:`stream_chunk_independent` for when that equals the
        per-access interleaved sequence.
        """
        step = self._steppers.get(vcpu_index)
        if step is None:
            step = self._steppers[vcpu_index] = self.make_stepper(vcpu_index)
        return [step() for _ in range(count)]

    def snapshot_state(self) -> dict:
        """Mutable generator state as plain data (RNG word state plus the
        stream-cursor positions) for the warm-state snapshot layer. The
        dict shape is frozen: it is what existing stored snapshots carry
        (see ``SimulatedSystem.snapshot``)."""
        return {
            "rng": self._rng.getstate(),
            "private": [(c.page, c.block) for c in self._private_streams],
            "shared": (self._shared_stream.page, self._shared_stream.block),
            "content": (self._content_stream.page, self._content_stream.block),
            "hyp": (self._hyp_stream.page, self._hyp_stream.block),
            "dom0": (self._dom0_stream.page, self._dom0_stream.block),
        }

    def restore_state(self, captured: dict) -> None:
        """Transplant a :meth:`snapshot_state` capture, in place (stepper
        closures alias the cursor and RNG objects, so identities must
        survive)."""
        self._rng.setstate(captured["rng"])
        for cursor, (page, block) in zip(self._private_streams, captured["private"]):
            cursor.page, cursor.block = page, block
        for name, cursor in (
            ("shared", self._shared_stream),
            ("content", self._content_stream),
            ("hyp", self._hyp_stream),
            ("dom0", self._dom0_stream),
        ):
            cursor.page, cursor.block = captured[name]

    def next_access(self, vcpu_index: int) -> MemoryAccess:
        """Generate the next access of ``vcpu_index``.

        Delegates to the vCPU's stepper closure (the single source of the
        generation logic and RNG draw order; see :meth:`make_stepper`)
        and wraps the result in a :class:`MemoryAccess`. tuple.__new__
        skips the namedtuple's Python-level __new__ wrapper.
        """
        step = self._steppers.get(vcpu_index)
        if step is None:
            step = self._steppers[vcpu_index] = self.make_stepper(vcpu_index)
        initiator, page, block, is_write = step()
        return _tuple_new(
            MemoryAccess,
            (self.vm_id, vcpu_index, initiator, page, block, is_write),
        )

    def stream(self, vcpu_index: int, count: int) -> Iterator[MemoryAccess]:
        """Yield ``count`` accesses for one vCPU."""
        for _ in range(count):
            yield self.next_access(vcpu_index)
