"""Trace records: the memory accesses fed to the simulation engine.

The paper drives GEMS with Simics full-system traces. Our substitute is a
stream of :class:`MemoryAccess` records produced by the synthetic
generators in :mod:`repro.workloads.generator`. Each record carries who
issued it (guest VM, dom0, or the hypervisor — the Figure 1 attribution),
which guest page and block it touches, and whether it stores.
"""

from __future__ import annotations

from enum import Enum
from typing import NamedTuple


class Initiator(Enum):
    """Who executed the instruction that produced the access."""

    GUEST = "guest"
    DOM0 = "dom0"
    HYPERVISOR = "hypervisor"

    # Identity hash (C-level) — members are singletons, so this matches
    # Enum's semantics while keeping per-access stats updates cheap.
    __hash__ = object.__hash__


class MemoryAccess(NamedTuple):
    """One memory reference.

    Attributes:
        vm_id: the VM whose vCPU context issued the access. Hypervisor
            accesses keep the interrupted VM's id (the hypervisor runs in
            whatever vCPU context trapped) but translate through the
            hypervisor's own address space.
        vcpu_index: index of the issuing vCPU within the VM.
        initiator: GUEST, DOM0, or HYPERVISOR.
        guest_page: guest-physical page number (or hypervisor-space page
            for non-guest initiators).
        block_index: block within the page (0..blocks_per_page-1).
        is_write: store vs load.
    """

    vm_id: int
    vcpu_index: int
    initiator: Initiator
    guest_page: int
    block_index: int
    is_write: bool
