"""Service-style VM profiles: pool mix + per-pool access patterns.

Where :class:`~repro.workloads.profiles.AppProfile` reproduces the
paper's 13 measured applications, a :class:`ServiceProfile` models a
cloud *service* the way storage-system workload tables do (bleepstore's
web / data-lake / backup split, SNIPPETS.md §3): how its accesses divide
across the VM-private / VM-shared / content-shared / hypervisor / dom0
pools, how write-heavy each pool is, how large each pool's footprint
is, and which :mod:`~repro.workloads.patterns` pattern walks each pool.

Profiles are consumed by
:class:`~repro.workloads.pattern_workload.PatternWorkload`; the catalogue
is selected per VM by :mod:`~repro.workloads.suites`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict

from repro.workloads.patterns import AccessPattern, parse_pattern

__all__ = ["SERVICES", "ServiceProfile", "generic_service", "get_service"]


@dataclass(frozen=True)
class ServiceProfile:
    """One service's pool mix, write behaviour, footprint and patterns.

    Pool *fractions* are relative access weights (normalised by their
    sum at workload build; hypervisor/dom0 weight is dropped when the
    config disables hypervisor activity, as the paper's Section V
    simulator does). Pool *pages* are footprints before
    ``working_set_scale``. Pattern fields are spec strings
    (:func:`~repro.workloads.patterns.parse_pattern` grammar).
    """

    name: str
    description: str
    # Relative access weight per pool.
    private_fraction: float = 0.6
    shared_fraction: float = 0.18
    content_fraction: float = 0.12
    hyp_fraction: float = 0.06
    dom0_fraction: float = 0.04
    # Store probability per guest pool (hypervisor/dom0 use the
    # generator's fixed 0.2, matching VmWorkload's streams).
    write_fraction: float = 0.2
    shared_write_fraction: float = 0.1
    content_write_fraction: float = 0.0
    # Pool footprints, in pages (scaled by the config's working-set
    # scale; content pages are merged across VMs by the sharing scan).
    private_pages: int = 192
    shared_pages: int = 96
    content_pages: int = 96
    # Per-pool access patterns (spec strings).
    private_pattern: str = "zipfian"
    shared_pattern: str = "uniform"
    content_pattern: str = "sequential"

    def __post_init__(self) -> None:
        fractions = (
            self.private_fraction,
            self.shared_fraction,
            self.content_fraction,
            self.hyp_fraction,
            self.dom0_fraction,
        )
        if any(fraction < 0 for fraction in fractions):
            raise ValueError(f"{self.name}: pool fractions must be >= 0")
        if self.private_fraction + self.shared_fraction + self.content_fraction <= 0:
            raise ValueError(f"{self.name}: guest pools need positive access weight")
        for label, value in (
            ("write_fraction", self.write_fraction),
            ("shared_write_fraction", self.shared_write_fraction),
            ("content_write_fraction", self.content_write_fraction),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {label} must be in [0, 1], got {value}")
        for label, pages in (
            ("private_pages", self.private_pages),
            ("shared_pages", self.shared_pages),
            ("content_pages", self.content_pages),
        ):
            if pages < 1:
                raise ValueError(f"{self.name}: {label} must be >= 1, got {pages}")
        # Parse every pattern spec now so a bad catalogue entry (or CLI
        # override) fails at construction, not mid-simulation.
        for spec in (self.private_pattern, self.shared_pattern, self.content_pattern):
            parse_pattern(spec)

    def pattern_for(self, pool: str) -> AccessPattern:
        """The parsed pattern of one guest pool ('private'/'shared'/'content')."""
        spec = getattr(self, f"{pool}_pattern")
        return parse_pattern(spec)

    def with_patterns(self, spec: str) -> "ServiceProfile":
        """A copy with every guest pool walked by ``spec``."""
        parse_pattern(spec)  # validate before constructing the copy
        return replace(
            self,
            private_pattern=spec,
            shared_pattern=spec,
            content_pattern=spec,
        )


SERVICES: Dict[str, ServiceProfile] = {
    # Read-heavy front end: Zipfian-popular session/private state, a hot
    # shared cache, content (images/templates) identical across VMs.
    "web": ServiceProfile(
        name="web",
        description="read-heavy web frontend (80/20 reads, Zipfian popularity)",
        private_fraction=0.5,
        shared_fraction=0.2,
        content_fraction=0.2,
        hyp_fraction=0.06,
        dom0_fraction=0.04,
        write_fraction=0.05,
        shared_write_fraction=0.1,
        content_write_fraction=0.0,
        private_pages=160,
        shared_pages=96,
        content_pages=128,
        private_pattern="zipfian(alpha=1.1)",
        shared_pattern="hotspot(hot_fraction=0.1,hot_probability=0.9)",
        content_pattern="sequential",
    ),
    # Write-heavy ingest: bulk appends over wide private regions, bursty
    # shared staging buffers.
    "datalake": ServiceProfile(
        name="datalake",
        description="write-heavy data-lake ingest (40/60 writes, scan+burst)",
        private_fraction=0.62,
        shared_fraction=0.22,
        content_fraction=0.06,
        hyp_fraction=0.06,
        dom0_fraction=0.04,
        write_fraction=0.6,
        shared_write_fraction=0.5,
        content_write_fraction=0.0,
        private_pages=320,
        shared_pages=128,
        content_pages=48,
        private_pattern="sequential(stride=2)",
        shared_pattern="bursty(mean_burst=32.0)",
        content_pattern="uniform",
    ),
    # Backup window: almost pure sequential writes walking everything.
    "backup": ServiceProfile(
        name="backup",
        description="backup/archival sweep (sequential, ~95% writes)",
        private_fraction=0.78,
        shared_fraction=0.06,
        content_fraction=0.08,
        hyp_fraction=0.05,
        dom0_fraction=0.03,
        write_fraction=0.95,
        shared_write_fraction=0.9,
        content_write_fraction=0.0,
        private_pages=384,
        shared_pages=48,
        content_pages=64,
        private_pattern="sequential",
        shared_pattern="sequential",
        content_pattern="sequential",
    ),
    # In-memory KV cache: extreme key-popularity skew, small hot set.
    "kvcache": ServiceProfile(
        name="kvcache",
        description="in-memory KV cache (hotspot keys, moderate writes)",
        private_fraction=0.56,
        shared_fraction=0.26,
        content_fraction=0.08,
        hyp_fraction=0.06,
        dom0_fraction=0.04,
        write_fraction=0.25,
        shared_write_fraction=0.3,
        content_write_fraction=0.0,
        private_pages=128,
        shared_pages=112,
        content_pages=48,
        private_pattern="hotspot(hot_fraction=0.05,hot_probability=0.95)",
        shared_pattern="zipfian(alpha=1.3)",
        content_pattern="uniform",
    ),
}


def get_service(name: str) -> ServiceProfile:
    try:
        return SERVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown service {name!r} (known: {', '.join(sorted(SERVICES))})"
        ) from None


def generic_service(pattern_spec: str) -> ServiceProfile:
    """The ``--pattern SPEC`` service: a balanced mix with every guest
    pool walked by ``pattern_spec`` — the single-knob way to put one
    pattern under the full classification machinery."""
    return ServiceProfile(
        name=f"mixed[{pattern_spec}]",
        description=f"generic mix, all pools on {pattern_spec}",
        private_pattern=pattern_spec,
        shared_pattern=pattern_spec,
        content_pattern=pattern_spec,
    )
