"""Named scenario suites: which service each VM of a host runs.

A :class:`ScenarioSuite` maps VM slots onto
:class:`~repro.workloads.service.ServiceProfile` entries (wiscsee's
``patternsuite`` registry shape): each entry is a service name,
optionally with a pattern override after a colon —

    ``"web"``                        the catalogue profile as-is
    ``"web:zipfian(alpha=1.4)"``     every guest pool on that pattern

Suites cycle over the host's VMs, so one suite serves any ``num_vms``.
They are selected by ``SimConfig.suite`` / ``repro-sim run --suite`` and
swept by ``repro-sim experiment patterns``.

``SUITES``' keys are part of the store/snapshot identity surface (a
suite name in a config determines the workload byte-for-byte), so the
dict literal is on the repro-lint RPL110 fingerprint watchlist — adding
or renaming a suite requires regenerating fingerprints (or a
STATE_VERSION bump if existing suites change meaning).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.workloads.service import ServiceProfile, generic_service, get_service

__all__ = [
    "SUITES",
    "SUITE_NAMES",
    "ScenarioSuite",
    "get_suite",
    "resolve_entry",
    "resolve_services",
    "suite_services",
]


@dataclass(frozen=True)
class ScenarioSuite:
    """One named multi-tenant scenario: per-VM-slot service entries."""

    name: str
    description: str
    vm_services: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.vm_services:
            raise ValueError(f"suite {self.name!r} needs at least one VM entry")
        for entry in self.vm_services:
            resolve_entry(entry)  # fail at registration, not mid-build


def resolve_entry(entry: str) -> ServiceProfile:
    """One suite entry -> its (possibly pattern-overridden) profile."""
    name, _, override = entry.partition(":")
    profile = get_service(name.strip())
    if override.strip():
        profile = profile.with_patterns(override.strip())
    return profile


SUITES: Dict[str, ScenarioSuite] = {
    # Homogeneous read-heavy farm: the content-sharing best case.
    "web-farm": ScenarioSuite(
        name="web-farm",
        description="identical read-heavy web frontends on every VM",
        vm_services=("web",),
    ),
    # The mixed-tenant host Virtual Snooping targets: every service
    # class colocated.
    "cloud-mix": ScenarioSuite(
        name="cloud-mix",
        description="mixed tenants: web + data-lake + backup + KV cache",
        vm_services=("web", "datalake", "backup", "kvcache"),
    ),
    # Nightly backups saturating the host next to latency-sensitive web.
    "backup-window": ScenarioSuite(
        name="backup-window",
        description="backup sweeps interleaved with web frontends",
        vm_services=("backup", "web"),
    ),
    # Phase-changing tenants: interactive Zipfian serving alternating
    # with batch scans inside each VM (DynamicMix).
    "phase-shift": ScenarioSuite(
        name="phase-shift",
        description="VMs alternating Zipfian serving and batch-scan phases",
        vm_services=(
            "web:dynamicmix(phases=zipfian(alpha=1.1)@2000+sequential@2000)",
            "datalake:dynamicmix(phases=bursty(mean_burst=24.0)@1500+sequential@1500)",
        ),
    ),
    # Skew stress: extreme hotspot tenants beside plain web VMs.
    "hot-neighbors": ScenarioSuite(
        name="hot-neighbors",
        description="hotspot-skewed KV caches colocated with web VMs",
        vm_services=("kvcache:hotspot(hot_fraction=0.05,hot_probability=0.95)", "web"),
    ),
}

SUITE_NAMES: Tuple[str, ...] = tuple(sorted(SUITES))


def get_suite(name: str) -> ScenarioSuite:
    try:
        return SUITES[name]
    except KeyError:
        raise KeyError(
            f"unknown suite {name!r} (known: {', '.join(SUITE_NAMES)})"
        ) from None


def suite_services(name: str, num_vms: int) -> List[ServiceProfile]:
    """The suite's per-VM profiles for a ``num_vms`` host (cycled)."""
    suite = get_suite(name)
    entries = suite.vm_services
    return [resolve_entry(entries[i % len(entries)]) for i in range(num_vms)]


def resolve_services(pattern, suite, num_vms: int) -> List[ServiceProfile]:
    """Per-VM profiles for a config's ``pattern``/``suite`` selection.

    Exactly one of ``pattern`` (a spec string: every VM runs the generic
    mixed service on that pattern) and ``suite`` (a registry name) must
    be set; ``SimConfig.__post_init__`` enforces the mutual exclusion.
    """
    if pattern is not None:
        return [generic_service(pattern)] * num_vms
    if suite is None:
        raise ValueError("resolve_services needs a pattern or a suite")
    return suite_services(suite, num_vms)
