"""Trace persistence: record, save, load and replay access streams.

The simulator is trace-driven, so any source of
:class:`~repro.workloads.trace.MemoryAccess` records can drive it — the
synthetic generators, or real traces captured elsewhere. This module
provides a simple line-oriented text format and a
:class:`TraceReplayWorkload` that satisfies the same interface the
engine expects from :class:`~repro.workloads.generator.VmWorkload`.

Format (one access per line, space-separated)::

    vm_id vcpu_index initiator guest_page block_index is_write

with ``initiator`` in {g, d, h} and ``is_write`` in {0, 1}. Lines
starting with ``#`` are comments.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Tuple, Union

from repro.workloads.trace import Initiator, MemoryAccess

_INITIATOR_CODE = {
    Initiator.GUEST: "g",
    Initiator.DOM0: "d",
    Initiator.HYPERVISOR: "h",
}
_CODE_INITIATOR = {code: initiator for initiator, code in _INITIATOR_CODE.items()}


class TraceFormatError(ValueError):
    """A trace file line could not be parsed."""


def format_access(access: MemoryAccess) -> str:
    """One access as a trace-file line (without newline)."""
    return (
        f"{access.vm_id} {access.vcpu_index} "
        f"{_INITIATOR_CODE[access.initiator]} "
        f"{access.guest_page} {access.block_index} "
        f"{1 if access.is_write else 0}"
    )


def parse_access(line: str) -> MemoryAccess:
    """Parse one trace-file line."""
    fields = line.split()
    if len(fields) != 6:
        raise TraceFormatError(f"expected 6 fields, got {len(fields)}: {line!r}")
    try:
        initiator = _CODE_INITIATOR[fields[2]]
    except KeyError:
        raise TraceFormatError(f"unknown initiator code {fields[2]!r}") from None
    try:
        vm_id = int(fields[0])
        vcpu_index = int(fields[1])
        guest_page = int(fields[3])
        block_index = int(fields[4])
        is_write = fields[5] == "1"
    except ValueError as error:
        raise TraceFormatError(f"bad numeric field in {line!r}") from error
    if not 0 <= block_index < 64:
        raise TraceFormatError(f"block_index {block_index} out of range")
    return MemoryAccess(vm_id, vcpu_index, initiator, guest_page, block_index, is_write)


def save_trace(path: Union[str, Path], accesses: Iterable[MemoryAccess]) -> int:
    """Write accesses to ``path``; returns the number written."""
    count = 0
    with open(path, "w") as handle:
        handle.write("# repro trace v1: vm vcpu initiator page block write\n")
        for access in accesses:
            handle.write(format_access(access) + "\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> List[MemoryAccess]:
    """Read every access from ``path``."""
    accesses: List[MemoryAccess] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            accesses.append(parse_access(line))
    return accesses


def record_workload(workload, accesses_per_vcpu: int) -> List[MemoryAccess]:
    """Capture a synthetic workload's streams, round-robin interleaved.

    Accepts any generator with the engine's workload interface
    (``VmWorkload``, ``PatternWorkload``, ...): only ``num_vcpus`` and
    ``next_access`` are used.
    """
    captured: List[MemoryAccess] = []
    for _ in range(accesses_per_vcpu):
        for vcpu in range(workload.num_vcpus):
            captured.append(workload.next_access(vcpu))
    return captured


class TraceReplayWorkload:
    """Replays a recorded trace through the engine's workload interface.

    Accesses are partitioned per vCPU, preserving their relative order.
    When a vCPU's stream runs out the replay wraps around (``loop=True``,
    the default) or raises ``StopIteration``.
    """

    def __init__(
        self,
        vm_id: int,
        accesses: Iterable[MemoryAccess],
        num_vcpus: int,
        loop: bool = True,
        content_page_labels: Iterable[Tuple[int, int]] = (),
    ) -> None:
        self.vm_id = vm_id
        self.num_vcpus = num_vcpus
        self.loop = loop
        self.content_stream_phase = 0  # interface parity with VmWorkload
        self._streams: Dict[int, List[MemoryAccess]] = {
            vcpu: [] for vcpu in range(num_vcpus)
        }
        self._positions = [0] * num_vcpus
        self._content_pages = list(content_page_labels)
        for access in accesses:
            if access.vm_id != vm_id:
                continue
            if not 0 <= access.vcpu_index < num_vcpus:
                raise ValueError(
                    f"trace access for vCPU {access.vcpu_index} but VM has "
                    f"{num_vcpus} vCPUs"
                )
            self._streams[access.vcpu_index].append(access)
        if all(not stream for stream in self._streams.values()):
            raise ValueError(f"trace contains no accesses for VM {vm_id}")

    # Per-vCPU streams are fully independent (separate lists, separate
    # positions, no RNG), so materialising one vCPU's run in bulk is
    # exact under any engine interleaving — the batched kernel keys its
    # chunked generation path on this flag.
    stream_chunk_independent = True

    def next_access(self, vcpu_index: int) -> MemoryAccess:
        stream = self._streams[vcpu_index]
        if not stream:
            raise StopIteration(f"vCPU {vcpu_index} has no trace accesses")
        position = self._positions[vcpu_index]
        if position >= len(stream):
            if not self.loop:
                raise StopIteration(f"vCPU {vcpu_index} trace exhausted")
            position = 0
        self._positions[vcpu_index] = position + 1
        return stream[position]

    def stream_chunk(
        self, vcpu_index: int, count: int
    ) -> List[Tuple[Initiator, int, int, bool]]:
        """Up to ``count`` accesses of one vCPU as ``(initiator,
        guest_page, block_index, is_write)`` tuples.

        Pure position arithmetic over the vCPU's recorded list — exactly
        ``count`` repeated :meth:`next_access` calls, including wrap
        semantics. A non-looping stream returns a short (possibly empty)
        list at exhaustion; the caller decides when that becomes the
        ``StopIteration`` the per-access API would raise.
        """
        stream = self._streams[vcpu_index]
        if not stream:
            raise StopIteration(f"vCPU {vcpu_index} has no trace accesses")
        out: List[Tuple[Initiator, int, int, bool]] = []
        position = self._positions[vcpu_index]
        length = len(stream)
        for _ in range(count):
            if position >= length:
                if not self.loop:
                    break
                position = 0
            access = stream[position]
            position += 1
            out.append(
                (
                    access.initiator,
                    access.guest_page,
                    access.block_index,
                    access.is_write,
                )
            )
        self._positions[vcpu_index] = position
        return out

    def stream(self, vcpu_index: int, count: int) -> Iterator[MemoryAccess]:
        for _ in range(count):
            yield self.next_access(vcpu_index)

    def snapshot_state(self) -> dict:
        """Replay positions as plain data (warm-state snapshot layer)."""
        return {"kind": "trace", "positions": list(self._positions)}

    def restore_state(self, captured: dict) -> None:
        self._positions[:] = captured["positions"]

    def content_pages(self) -> Iterator[Tuple[int, int]]:
        """Content labels are not derivable from a raw trace; callers may
        supply them at construction (``content_page_labels``)."""
        return iter(self._content_pages)
