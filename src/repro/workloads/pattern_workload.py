"""Pattern-driven per-VM workload: service profiles on the pool layout.

:class:`PatternWorkload` is the pattern library's counterpart of
:class:`~repro.workloads.generator.VmWorkload`. It keeps the generator's
*pool composition contract* — guest addresses come from the same
VM-private / VM-shared / content-shared bases, hypervisor and dom0
accesses walk the same hypervisor-space pools — so page classification,
the content-sharing scan, COW dedup and the holder accounting all work
unchanged; only the *within-pool* locality is delegated to
:mod:`~repro.workloads.patterns` samplers, selected per pool by a
:class:`~repro.workloads.service.ServiceProfile`.

Determinism and chunking (DESIGN.md §10): every vCPU owns its RNG
(seeded ``{seed}/pattern/{service}/{vm_id}/{vcpu}``) and its own
sampler instances, sharing *no* mutable state with its siblings — so
materialising one vCPU's accesses ahead of time cannot reorder another
vCPU's draws, and :attr:`stream_chunk_independent` is True for any vCPU
count. That puts every pattern on the batched kernel's chunk path
natively (``VmWorkload`` only qualifies single-vCPU; its multi-vCPU VMs
need the word path). Per access, in fixed order: one category draw, one
write draw, then the pool sampler's draws.

The flip side of per-vCPU independence: a VM's vCPUs walk the shared
and content pools *independently* (same addresses, separate sampler
state), rather than jointly as ``VmWorkload``'s shared cursors do.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from typing import Dict, Iterator, List, Tuple

from repro.workloads.generator import (
    BLOCKS_PER_PAGE,
    CONTENT_HOT_BASE,
    DOM0_POOL_BASE,
    DOM0_POOL_PAGES,
    HYP_POOL_BASE,
    HYP_POOL_PAGES,
    PRIVATE_BASE,
    PRIVATE_VCPU_STRIDE,
    SHARED_HOT_BASE,
)
from repro.workloads.patterns import SequentialPattern
from repro.workloads.service import ServiceProfile
from repro.workloads.trace import Initiator, MemoryAccess

_PAGE_SHIFT = BLOCKS_PER_PAGE.bit_length() - 1
_BLOCK_MASK = BLOCKS_PER_PAGE - 1
_tuple_new = tuple.__new__

# Pool indices (order defines the cumulative category table).
_PRIVATE = 0
_SHARED = 1
_CONTENT = 2
_HYP = 3
_DOM0 = 4

# The hypervisor/dom0 pools mirror VmWorkload's streams: a sequential
# walk with its fixed 0.2 write fraction.
_HYP_WRITE_FRACTION = 0.2

# Footprint ceilings, in pages, keeping each pool inside its address
# region (private per-vCPU stride; shared below the content base;
# content below the generator's content-stream base).
_MAX_PRIVATE_PAGES = PRIVATE_VCPU_STRIDE
_MAX_SHARED_PAGES = CONTENT_HOT_BASE - SHARED_HOT_BASE
_MAX_CONTENT_PAGES = 0x8000


def _scaled_pages(pages: int, scale: float, ceiling: int) -> int:
    return max(1, min(round(pages * scale), ceiling))


class PatternWorkload:
    """Deterministic pattern-driven access streams for one VM."""

    # Per-vCPU RNGs and samplers share nothing across vCPUs, so bulk
    # materialisation is exact under any engine interleaving — the
    # batched kernel keys its chunk path on this flag.
    stream_chunk_independent = True

    # Interface parity with VmWorkload (content friend tie-breaking);
    # pattern VMs have no streaming phase offset.
    content_stream_phase = 0

    def __init__(
        self,
        service: ServiceProfile,
        vm_id: int,
        num_vcpus: int,
        seed: int = 0,
        include_hypervisor: bool = True,
        working_set_scale: float = 1.0,
    ) -> None:
        if working_set_scale <= 0:
            raise ValueError(
                f"working_set_scale must be positive, got {working_set_scale}"
            )
        if num_vcpus < 1:
            raise ValueError(f"need at least one vCPU, got {num_vcpus}")
        self.service = service
        self.vm_id = vm_id
        self.num_vcpus = num_vcpus
        scale = working_set_scale
        self.private_pool_pages = _scaled_pages(
            service.private_pages, scale, _MAX_PRIVATE_PAGES
        )
        self.shared_pool_pages = _scaled_pages(
            service.shared_pages, scale, _MAX_SHARED_PAGES
        )
        self.content_pool_pages = _scaled_pages(
            service.content_pages, scale, _MAX_CONTENT_PAGES
        )
        pool_blocks = [
            self.private_pool_pages * BLOCKS_PER_PAGE,
            self.shared_pool_pages * BLOCKS_PER_PAGE,
            self.content_pool_pages * BLOCKS_PER_PAGE,
            HYP_POOL_PAGES * BLOCKS_PER_PAGE,
            DOM0_POOL_PAGES * BLOCKS_PER_PAGE,
        ]
        weights = [
            service.private_fraction,
            service.shared_fraction,
            service.content_fraction,
            service.hyp_fraction if include_hypervisor else 0.0,
            service.dom0_fraction if include_hypervisor else 0.0,
        ]
        total = sum(weights)
        self._cumulative: List[float] = []
        running = 0.0
        for weight in weights:
            running += weight / total
            self._cumulative.append(running)
        self._write_fractions = [
            service.write_fraction,
            service.shared_write_fraction,
            service.content_write_fraction,
            _HYP_WRITE_FRACTION,
            _HYP_WRITE_FRACTION,
        ]
        self._initiators = [
            Initiator.GUEST,
            Initiator.GUEST,
            Initiator.GUEST,
            Initiator.HYPERVISOR,
            Initiator.DOM0,
        ]
        patterns = [
            service.pattern_for("private"),
            service.pattern_for("shared"),
            service.pattern_for("content"),
            SequentialPattern(),
            SequentialPattern(),
        ]
        # Per-vCPU state: one RNG and one sampler per pool, built
        # eagerly so snapshot_state works before the first access.
        self._rngs = [
            random.Random(f"{seed}/pattern/{service.name}/{vm_id}/{vcpu}")
            for vcpu in range(num_vcpus)
        ]
        self._samplers = [
            [
                pattern.sampler(blocks, rng)
                for pattern, blocks in zip(patterns, pool_blocks)
            ]
            for rng in self._rngs
        ]
        self._bases = [
            [
                PRIVATE_BASE + vcpu * PRIVATE_VCPU_STRIDE,
                SHARED_HOT_BASE,
                CONTENT_HOT_BASE,
                HYP_POOL_BASE,
                DOM0_POOL_BASE,
            ]
            for vcpu in range(num_vcpus)
        ]
        self._steppers: dict = {}

    # ------------------------------------------------------------------
    # Content-sharing registration (same label scheme as VmWorkload:
    # label == page number, so identical services' pools merge — and
    # heterogeneous services merge on the common prefix of their pools).
    # ------------------------------------------------------------------

    def content_pages(self) -> Iterator[Tuple[int, int]]:
        for i in range(self.content_pool_pages):
            page = CONTENT_HOT_BASE + i
            yield page, page

    # ------------------------------------------------------------------
    # Stream generation.
    # ------------------------------------------------------------------

    def stepper_for(self, vcpu_index: int):
        step = self._steppers.get(vcpu_index)
        if step is None:
            step = self._steppers[vcpu_index] = self.make_stepper(vcpu_index)
        return step

    def make_stepper(self, vcpu_index: int):
        """The vCPU's zero-argument ``(initiator, page, block, is_write)``
        closure. Draw order per access — category draw, write draw,
        sampler draws — is part of the deterministic contract
        (:meth:`stream_chunk` and the reference loop both consume it)."""
        rng_random = self._rngs[vcpu_index].random
        cumulative = self._cumulative
        top = len(cumulative) - 1
        samplers = [sampler.next for sampler in self._samplers[vcpu_index]]
        bases = self._bases[vcpu_index]
        write_fractions = self._write_fractions
        initiators = self._initiators

        def step():
            category = bisect_right(cumulative, rng_random())
            if category > top:
                category = top
            is_write = rng_random() < write_fractions[category]
            offset = samplers[category]()
            return (
                initiators[category],
                bases[category] + (offset >> _PAGE_SHIFT),
                offset & _BLOCK_MASK,
                is_write,
            )

        return step

    def stream_chunk(self, vcpu_index: int, count: int) -> List[tuple]:
        """``count`` accesses of one vCPU in bulk — exactly ``count``
        stepper calls, exact under any interleaving (per-vCPU state)."""
        step = self.stepper_for(vcpu_index)
        return [step() for _ in range(count)]

    def next_access(self, vcpu_index: int) -> MemoryAccess:
        initiator, page, block, is_write = self.stepper_for(vcpu_index)()
        return _tuple_new(
            MemoryAccess,
            (self.vm_id, vcpu_index, initiator, page, block, is_write),
        )

    def stream(self, vcpu_index: int, count: int) -> Iterator[MemoryAccess]:
        for _ in range(count):
            yield self.next_access(vcpu_index)

    # ------------------------------------------------------------------
    # Warm-state snapshots (plain data; see SimulatedSystem.snapshot).
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        return {
            "kind": "pattern",
            "rngs": [rng.getstate() for rng in self._rngs],
            "samplers": [
                [sampler.snapshot_state() for sampler in per_vcpu]
                for per_vcpu in self._samplers
            ],
        }

    def restore_state(self, captured: dict) -> None:
        if captured.get("kind") != "pattern":
            raise ValueError(
                f"snapshot kind {captured.get('kind')!r} is not a "
                f"pattern-workload capture"
            )
        for rng, state in zip(self._rngs, captured["rngs"]):
            rng.setstate(state)
        for per_vcpu, states in zip(self._samplers, captured["samplers"]):
            for sampler, state in zip(per_vcpu, states):
                sampler.restore_state(state)


def workloads_for_config(config, vms) -> Dict[int, PatternWorkload]:
    """One :class:`PatternWorkload` per VM for a pattern/suite config.

    ``vms`` are the built :class:`~repro.hypervisor.vm.VirtualMachine`
    objects in creation order; suite entries cycle over them.
    """
    from repro.workloads.suites import resolve_services

    services = resolve_services(config.pattern, config.suite, len(vms))
    return {
        vm.vm_id: PatternWorkload(
            services[index],
            vm.vm_id,
            config.vcpus_per_vm,
            seed=config.seed,
            include_hypervisor=config.hypervisor_activity_enabled,
            working_set_scale=config.working_set_scale,
        )
        for index, vm in enumerate(vms)
    }
