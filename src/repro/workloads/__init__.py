"""Workload substrate: profiles, trace records, synthetic generators."""

from repro.workloads.generator import VmWorkload, solve_category_probabilities
from repro.workloads.profiles import (
    COHERENCE_APPS,
    CONTENT_APPS,
    FIG1_APPS,
    PARSEC_APPS,
    PROFILES,
    AppProfile,
    get_profile,
)
from repro.workloads.trace import Initiator, MemoryAccess

__all__ = [
    "AppProfile",
    "COHERENCE_APPS",
    "CONTENT_APPS",
    "FIG1_APPS",
    "Initiator",
    "MemoryAccess",
    "PARSEC_APPS",
    "PROFILES",
    "VmWorkload",
    "get_profile",
    "solve_category_probabilities",
]
