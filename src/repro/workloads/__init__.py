"""Workload substrate: profiles, trace records, synthetic generators,
composable access patterns, service profiles and scenario suites."""

from repro.workloads.generator import VmWorkload, solve_category_probabilities
from repro.workloads.patterns import (
    PATTERNS,
    AccessPattern,
    PatternError,
    parse_pattern,
    pattern_names,
)
from repro.workloads.pattern_workload import PatternWorkload
from repro.workloads.profiles import (
    COHERENCE_APPS,
    CONTENT_APPS,
    FIG1_APPS,
    PARSEC_APPS,
    PROFILES,
    AppProfile,
    get_profile,
)
from repro.workloads.service import SERVICES, ServiceProfile, generic_service, get_service
from repro.workloads.suites import (
    SUITE_NAMES,
    SUITES,
    ScenarioSuite,
    get_suite,
    suite_services,
)
from repro.workloads.trace import Initiator, MemoryAccess

__all__ = [
    "AccessPattern",
    "AppProfile",
    "COHERENCE_APPS",
    "CONTENT_APPS",
    "FIG1_APPS",
    "Initiator",
    "MemoryAccess",
    "PARSEC_APPS",
    "PATTERNS",
    "PROFILES",
    "PatternError",
    "PatternWorkload",
    "SERVICES",
    "SUITES",
    "SUITE_NAMES",
    "ScenarioSuite",
    "ServiceProfile",
    "VmWorkload",
    "generic_service",
    "get_profile",
    "get_service",
    "get_suite",
    "parse_pattern",
    "pattern_names",
    "solve_category_probabilities",
    "suite_services",
]
