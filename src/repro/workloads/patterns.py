"""Composable access patterns: *which block inside a pool* gets touched.

The synthetic :class:`~repro.workloads.generator.VmWorkload` bakes the
paper's hot/stream split into every pool. This module factors the
locality decision out into small, composable :class:`AccessPattern`
objects so arbitrary service behaviours (Zipfian caches, scan-heavy
backups, phase-changing mixes) can ride the same pool layout — and
therefore the same VM-private / VM-shared / content-shared / hypervisor
classification, COW machinery and holder accounting — unchanged.

A pattern is an immutable *configuration*; :meth:`AccessPattern.sampler`
binds it to a pool size and an externally-owned ``random.Random`` and
returns a stateful :class:`Sampler` whose ``next()`` yields block
offsets in ``[0, blocks)``.

Determinism contract (see DESIGN.md §10): a sampler draws from *only*
the RNG it was handed, in a fixed per-call draw order —

=============  =================================================
pattern        draws per ``next()``
=============  =================================================
uniform        1 ``randrange``
zipfian        1 ``random`` (bisect into a cumulative table)
hotspot        1 ``random`` then 1 ``randrange``
sequential     none
bursty         1 ``random``, plus 1 ``randrange`` on a jump
dynamicmix     exactly its current child's draws
=============  =================================================

— so a pattern-driven workload that gives each vCPU its own RNG is
exact under any engine interleaving (the batched kernel's chunk-path
requirement). Samplers expose ``snapshot_state``/``restore_state`` as
plain data for the warm-state snapshot layer.

Spec grammar (the CLI/config surface)::

    name                     zipfian
    name:k=v,...             zipfian:alpha=1.2
    name(k=v,...)            hotspot(hot_fraction=0.1,hot_probability=0.9)
    dynamicmix(phases=child@N+child@N[+...])
                             dynamicmix(phases=zipfian(alpha=1.2)@2000+sequential@2000)

:func:`parse_pattern` accepts all forms; :meth:`AccessPattern.spec`
renders the canonical one (parenthesised, keys sorted), and
``parse_pattern(p.spec()).spec() == p.spec()`` round-trips for every
pattern.
"""

from __future__ import annotations

import random
from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type, Union

__all__ = [
    "AccessPattern",
    "BurstyPattern",
    "DynamicMixPattern",
    "HotspotPattern",
    "PATTERNS",
    "PatternError",
    "Sampler",
    "SequentialPattern",
    "UniformPattern",
    "ZipfianPattern",
    "parse_pattern",
    "pattern_names",
]


class PatternError(ValueError):
    """A pattern spec could not be parsed or validated."""


def _format_value(value: Union[int, float, str]) -> str:
    if isinstance(value, float):
        # repr keeps round-trip exactness ("0.1" -> 0.1 -> "0.1").
        return repr(value)
    return str(value)


class Sampler:
    """Stateful block-offset source bound to one pool and one RNG."""

    __slots__ = ()

    def next(self) -> int:
        raise NotImplementedError

    def snapshot_state(self) -> tuple:
        """Mutable sampler state as plain data (RNG state excluded: the
        owning workload snapshots its RNGs itself)."""
        return ()

    def restore_state(self, state: tuple) -> None:
        if state != ():
            raise ValueError(f"stateless sampler got state {state!r}")


@dataclass(frozen=True)
class AccessPattern:
    """Immutable pattern configuration; subclasses add parameters."""

    kind = "abstract"

    def sampler(self, blocks: int, rng: random.Random) -> Sampler:
        """A fresh sampler over ``blocks`` offsets drawing from ``rng``."""
        raise NotImplementedError

    def params(self) -> Dict[str, Union[int, float, str]]:
        """Parameters as rendered by :meth:`spec` (empty: bare name)."""
        return {}

    def spec(self) -> str:
        """Canonical spec string (parse_pattern round-trips it)."""
        params = self.params()
        if not params:
            return self.kind
        inner = ",".join(
            f"{key}={_format_value(value)}" for key, value in sorted(params.items())
        )
        return f"{self.kind}({inner})"


# ----------------------------------------------------------------------
# Uniform.
# ----------------------------------------------------------------------


class _UniformSampler(Sampler):
    __slots__ = ("_randrange", "_blocks")

    def __init__(self, blocks: int, rng: random.Random) -> None:
        self._randrange = rng.randrange
        self._blocks = blocks

    def next(self) -> int:
        return self._randrange(self._blocks)


@dataclass(frozen=True)
class UniformPattern(AccessPattern):
    """Every block equally likely — the no-locality baseline."""

    kind = "uniform"

    def sampler(self, blocks: int, rng: random.Random) -> Sampler:
        return _UniformSampler(blocks, rng)


# ----------------------------------------------------------------------
# Zipfian.
# ----------------------------------------------------------------------

# Cumulative Zipf tables are pure functions of (alpha, blocks); they are
# shared across samplers so a 64-VM suite builds each table once.
_zipf_tables: Dict[Tuple[float, int], List[float]] = {}


def _zipf_table(alpha: float, blocks: int) -> List[float]:
    table = _zipf_tables.get((alpha, blocks))
    if table is None:
        total = 0.0
        table = []
        for rank in range(1, blocks + 1):
            total += rank**-alpha
            table.append(total)
        _zipf_tables[(alpha, blocks)] = table
    return table


class _ZipfianSampler(Sampler):
    __slots__ = ("_random", "_cumulative", "_total", "_top")

    def __init__(self, alpha: float, blocks: int, rng: random.Random) -> None:
        self._random = rng.random
        self._cumulative = _zipf_table(alpha, blocks)
        self._total = self._cumulative[-1]
        self._top = blocks - 1

    def next(self) -> int:
        draw = bisect_right(self._cumulative, self._random() * self._total)
        return draw if draw <= self._top else self._top


@dataclass(frozen=True)
class ZipfianPattern(AccessPattern):
    """Rank-frequency popularity: offset ``r`` drawn with weight
    ``(r+1) ** -alpha`` — offset equals popularity rank, so shape tests
    (and cache behaviour) read directly off the offset distribution."""

    kind = "zipfian"
    alpha: float = 1.1

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha <= 8.0:
            raise PatternError(f"zipfian alpha must be in (0, 8], got {self.alpha}")

    def params(self) -> Dict[str, Union[int, float, str]]:
        return {"alpha": self.alpha}

    def sampler(self, blocks: int, rng: random.Random) -> Sampler:
        return _ZipfianSampler(self.alpha, blocks, rng)


# ----------------------------------------------------------------------
# Hotspot.
# ----------------------------------------------------------------------


class _HotspotSampler(Sampler):
    __slots__ = ("_random", "_randrange", "_hot_blocks", "_cold_blocks", "_hot_p")

    def __init__(
        self, hot_fraction: float, hot_probability: float, blocks: int, rng: random.Random
    ) -> None:
        self._random = rng.random
        self._randrange = rng.randrange
        hot = max(1, int(blocks * hot_fraction))
        hot = min(hot, blocks)
        self._hot_blocks = hot
        self._cold_blocks = blocks - hot
        self._hot_p = hot_probability

    def next(self) -> int:
        if self._cold_blocks == 0 or self._random() < self._hot_p:
            return self._randrange(self._hot_blocks)
        return self._hot_blocks + self._randrange(self._cold_blocks)


@dataclass(frozen=True)
class HotspotPattern(AccessPattern):
    """A hot prefix of the pool absorbs ``hot_probability`` of accesses;
    the cold remainder is uniform. (The hot/cold draw happens even when
    the pool is all hot, keeping the draw count shape-independent.)"""

    kind = "hotspot"
    hot_fraction: float = 0.1
    hot_probability: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise PatternError(
                f"hotspot hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if not 0.0 <= self.hot_probability <= 1.0:
            raise PatternError(
                f"hotspot hot_probability must be in [0, 1], got "
                f"{self.hot_probability}"
            )

    def params(self) -> Dict[str, Union[int, float, str]]:
        return {"hot_fraction": self.hot_fraction, "hot_probability": self.hot_probability}

    def sampler(self, blocks: int, rng: random.Random) -> Sampler:
        return _HotspotSampler(self.hot_fraction, self.hot_probability, blocks, rng)


# ----------------------------------------------------------------------
# Sequential scan.
# ----------------------------------------------------------------------


class _SequentialSampler(Sampler):
    __slots__ = ("_blocks", "_stride", "_position")

    def __init__(self, stride: int, blocks: int) -> None:
        self._blocks = blocks
        self._stride = stride
        self._position = 0

    def next(self) -> int:
        position = self._position
        self._position = (position + self._stride) % self._blocks
        return position

    def snapshot_state(self) -> tuple:
        return (self._position,)

    def restore_state(self, state: tuple) -> None:
        (self._position,) = state


@dataclass(frozen=True)
class SequentialPattern(AccessPattern):
    """A wrapping scan in ``stride``-block steps; draws no randomness."""

    kind = "sequential"
    stride: int = 1

    def __post_init__(self) -> None:
        if self.stride < 1:
            raise PatternError(f"sequential stride must be >= 1, got {self.stride}")

    def params(self) -> Dict[str, Union[int, float, str]]:
        return {} if self.stride == 1 else {"stride": self.stride}

    def sampler(self, blocks: int, rng: random.Random) -> Sampler:
        return _SequentialSampler(self.stride, blocks)


# ----------------------------------------------------------------------
# Bursty / periodic.
# ----------------------------------------------------------------------


class _BurstySampler(Sampler):
    __slots__ = ("_random", "_randrange", "_blocks", "_jump_p", "_position")

    def __init__(self, mean_burst: float, blocks: int, rng: random.Random) -> None:
        self._random = rng.random
        self._randrange = rng.randrange
        self._blocks = blocks
        self._jump_p = 1.0 / mean_burst
        self._position = 0

    def next(self) -> int:
        if self._random() < self._jump_p:
            self._position = self._randrange(self._blocks)
        else:
            self._position = (self._position + 1) % self._blocks
        return self._position

    def snapshot_state(self) -> tuple:
        return (self._position,)

    def restore_state(self, state: tuple) -> None:
        (self._position,) = state


@dataclass(frozen=True)
class BurstyPattern(AccessPattern):
    """Sequential bursts punctuated by random jumps: each access jumps
    with probability ``1/mean_burst``, else continues the current run —
    geometric run lengths with mean ``mean_burst`` (CV -> 1)."""

    kind = "bursty"
    mean_burst: float = 16.0

    def __post_init__(self) -> None:
        if self.mean_burst < 1.0:
            raise PatternError(f"bursty mean_burst must be >= 1, got {self.mean_burst}")

    def params(self) -> Dict[str, Union[int, float, str]]:
        return {"mean_burst": self.mean_burst}

    def sampler(self, blocks: int, rng: random.Random) -> Sampler:
        return _BurstySampler(self.mean_burst, blocks, rng)


# ----------------------------------------------------------------------
# Dynamic phase-changing mix.
# ----------------------------------------------------------------------


class _DynamicMixSampler(Sampler):
    __slots__ = ("_children", "_counts", "_phase", "_used")

    def __init__(
        self,
        segments: Tuple[Tuple[AccessPattern, int], ...],
        blocks: int,
        rng: random.Random,
    ) -> None:
        self._children = [pattern.sampler(blocks, rng) for pattern, _ in segments]
        self._counts = [count for _, count in segments]
        self._phase = 0
        self._used = 0

    def next(self) -> int:
        phase = self._phase
        if self._used >= self._counts[phase]:
            phase = (phase + 1) % len(self._counts)
            self._phase = phase
            self._used = 0
        self._used += 1
        return self._children[phase].next()

    def snapshot_state(self) -> tuple:
        return (
            self._phase,
            self._used,
            tuple(child.snapshot_state() for child in self._children),
        )

    def restore_state(self, state: tuple) -> None:
        self._phase, self._used, children = state
        for child, child_state in zip(self._children, children):
            child.restore_state(child_state)


@dataclass(frozen=True)
class DynamicMixPattern(AccessPattern):
    """Phase-changing mix: run each child pattern for exactly its access
    count, then switch (cycling back to the first after the last).

    Child sampler state persists across revisits — a sequential phase
    resumes where its previous visit stopped, mirroring a service whose
    scan survives an interactive interlude.
    """

    kind = "dynamicmix"
    segments: Tuple[Tuple[AccessPattern, int], ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if not self.segments:
            raise PatternError("dynamicmix needs at least one phases= segment")
        for pattern, count in self.segments:
            if isinstance(pattern, DynamicMixPattern):
                raise PatternError("dynamicmix phases cannot nest another dynamicmix")
            if count < 1:
                raise PatternError(f"dynamicmix phase count must be >= 1, got {count}")

    def spec(self) -> str:
        phases = "+".join(
            f"{pattern.spec()}@{count}" for pattern, count in self.segments
        )
        return f"{self.kind}(phases={phases})"

    def sampler(self, blocks: int, rng: random.Random) -> Sampler:
        return _DynamicMixSampler(self.segments, blocks, rng)


# ----------------------------------------------------------------------
# Registry and spec parsing.
# ----------------------------------------------------------------------

PATTERNS: Dict[str, Type[AccessPattern]] = {
    "uniform": UniformPattern,
    "zipfian": ZipfianPattern,
    "hotspot": HotspotPattern,
    "sequential": SequentialPattern,
    "bursty": BurstyPattern,
    "dynamicmix": DynamicMixPattern,
}


def pattern_names() -> List[str]:
    """Registered pattern kinds, sorted."""
    return sorted(PATTERNS)


def _split_top_level(text: str, separator: str) -> List[str]:
    """Split on ``separator`` outside parentheses (params may nest)."""
    parts: List[str] = []
    depth = 0
    start = 0
    for position, char in enumerate(text):
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
            if depth < 0:
                raise PatternError(f"unbalanced parentheses in {text!r}")
        elif char == separator and depth == 0:
            parts.append(text[start:position])
            start = position + 1
    if depth != 0:
        raise PatternError(f"unbalanced parentheses in {text!r}")
    parts.append(text[start:])
    return parts


def _parse_scalar(raw: str) -> Union[int, float, str]:
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def _parse_segments(raw: str) -> Tuple[Tuple[AccessPattern, int], ...]:
    segments: List[Tuple[AccessPattern, int]] = []
    for chunk in _split_top_level(raw, "+"):
        chunk = chunk.strip()
        if "@" not in chunk:
            raise PatternError(
                f"dynamicmix phase {chunk!r} needs the form pattern@count"
            )
        child_spec, _, count_text = chunk.rpartition("@")
        try:
            count = int(count_text)
        except ValueError:
            raise PatternError(
                f"dynamicmix phase count {count_text!r} is not an integer"
            ) from None
        segments.append((parse_pattern(child_spec), count))
    return tuple(segments)


def parse_pattern(spec: str) -> AccessPattern:
    """Parse a pattern spec string (see the module docstring grammar)."""
    if not isinstance(spec, str) or not spec.strip():
        raise PatternError(f"empty pattern spec {spec!r}")
    text = spec.strip()
    if "(" in text:
        name, _, rest = text.partition("(")
        if not rest.endswith(")"):
            raise PatternError(f"unbalanced parentheses in {spec!r}")
        params_text = rest[:-1]
    else:
        name, _, params_text = text.partition(":")
    name = name.strip()
    cls = PATTERNS.get(name)
    if cls is None:
        raise PatternError(
            f"unknown pattern {name!r} (known: {', '.join(pattern_names())})"
        )
    kwargs: Dict[str, object] = {}
    if params_text.strip():
        for item in _split_top_level(params_text, ","):
            item = item.strip()
            if not item:
                continue
            key, equals, raw_value = item.partition("=")
            if not equals:
                raise PatternError(f"pattern parameter {item!r} needs key=value")
            key = key.strip()
            raw_value = raw_value.strip()
            if cls is DynamicMixPattern and key == "phases":
                kwargs["segments"] = _parse_segments(raw_value)
            else:
                kwargs[key] = _parse_scalar(raw_value)
    try:
        return cls(**kwargs)  # type: ignore[arg-type]
    except TypeError as error:
        raise PatternError(f"bad parameters for {name!r}: {error}") from None
