"""Cache line metadata.

Virtual snooping extends each cache tag with the **VM identifier** of the
VM that brought the block in (Section IV-B of the paper): the per-VM cache
residence counters are maintained from these tags. The line also carries a
dirty bit so evictions know whether to write back.

Coherence *state* (tokens, ownership, sharers) is deliberately not stored
here — the token registry in :mod:`repro.coherence` is the single source
of truth for protocol state, and caches only track residence/recency.
"""

from __future__ import annotations


class CacheLine:
    """One resident cache block.

    Attributes:
        block: global block number (see :class:`repro.mem.AddressLayout`).
        vm_id: identifier of the VM whose access allocated the line.
        dirty: whether the local copy has been modified.
    """

    __slots__ = ("block", "vm_id", "dirty")

    def __init__(self, block: int, vm_id: int, dirty: bool = False) -> None:
        self.block = block
        self.vm_id = vm_id
        self.dirty = dirty

    def __repr__(self) -> str:
        flag = "D" if self.dirty else "C"
        return f"CacheLine(block={self.block:#x}, vm={self.vm_id}, {flag})"
