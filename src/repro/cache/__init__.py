"""Cache substrate: lines, set-associative arrays, per-core hierarchies."""

from repro.cache.hierarchy import AccessResult, PrivateHierarchy
from repro.cache.line import CacheLine
from repro.cache.setassoc import CacheObserver, SetAssociativeCache

__all__ = [
    "AccessResult",
    "CacheLine",
    "CacheObserver",
    "PrivateHierarchy",
    "SetAssociativeCache",
]
