"""Per-core private cache hierarchy (L1 data cache + private L2).

The paper assumes a private L1 and L2 per core (Section IV-A) with
coherence maintained among the private L2s. The L1 here is strictly
inclusive in the L2: filling the L2 fills the L1, evicting or invalidating
an L2 line removes any L1 copy. Only the L2 carries the virtual-snooping
residence observer, matching the paper's per-L2 residence counters.

Latencies follow Table II: 2-cycle L1, 10-cycle L2.
"""

from __future__ import annotations

from typing import Optional

from repro.cache.line import CacheLine
from repro.cache.setassoc import CacheObserver, SetAssociativeCache


class AccessResult:
    """Outcome of a local hierarchy access (before any coherence action)."""

    __slots__ = ("level", "latency", "hit")

    L1 = "l1"
    L2 = "l2"
    MISS = "miss"

    def __init__(self, level: str, latency: int) -> None:
        self.level = level
        self.latency = latency
        # Plain attribute, not a property: `hit` is read on every access
        # and a Python-level property call would dominate the fast path.
        self.hit = level != AccessResult.MISS

    def __repr__(self) -> str:
        return f"AccessResult({self.level}, {self.latency}cyc)"


class PrivateHierarchy:
    """L1 + private L2 for one core."""

    def __init__(
        self,
        core_id: int,
        l1_size: int = 32 * 1024,
        l1_ways: int = 4,
        l2_size: int = 256 * 1024,
        l2_ways: int = 8,
        block_size: int = 64,
        l1_latency: int = 2,
        l2_latency: int = 10,
        l2_observer: Optional[CacheObserver] = None,
    ) -> None:
        self.core_id = core_id
        self.l1 = SetAssociativeCache.from_size(l1_size, l1_ways, block_size)
        self.l2 = SetAssociativeCache.from_size(
            l2_size, l2_ways, block_size, observer=l2_observer
        )
        self.l1_latency = l1_latency
        self.l2_latency = l2_latency
        self.l1_hits = 0
        self.l2_hits = 0
        self.misses = 0
        # The three possible access outcomes are value-identical for the
        # hierarchy's lifetime; reusing them avoids one allocation per
        # simulated access (callers never mutate results).
        self._l1_result = AccessResult(AccessResult.L1, l1_latency)
        self._l2_result = AccessResult(AccessResult.L2, l1_latency + l2_latency)
        self._miss_result = AccessResult(AccessResult.MISS, l1_latency + l2_latency)
        # Direct references into both caches' set arrays: `access` is the
        # per-simulated-access hot path and routing every lookup through
        # SetAssociativeCache.lookup costs a Python call per level. The
        # set list and mask are fixed for the cache's lifetime.
        self._l1_sets = self.l1._sets
        self._l1_mask = self.l1._set_mask
        self._l1_ways = self.l1.ways
        self._l2_sets = self.l2._sets
        self._l2_mask = self.l2._set_mask
        self._l2_ways = self.l2.ways
        self._l2_observer = self.l2.observer
        # The inlined L1 promote in `access` assumes the L1 carries no
        # observer (only the L2 has one — the residence counters).
        assert self.l1.observer is None

    def access(self, block: int, vm_id: int, is_write: bool) -> AccessResult:
        """Look up ``block`` locally, updating recency and hit counters.

        On an L2 hit the block is promoted into the L1. A miss performs no
        allocation — the caller runs the coherence transaction and then
        calls :meth:`fill`.

        Inlined equivalent of ``l1.lookup`` / ``l2.lookup`` (see __init__).
        """
        l1_set = self._l1_sets[block & self._l1_mask]
        l1_line = l1_set.get(block)
        if l1_line is not None:
            del l1_set[block]
            l1_set[block] = l1_line
            self.l1_hits += 1
            if is_write:
                l1_line.dirty = True
                self.l2.mark_dirty(block)
            return self._l1_result
        l2_set = self._l2_sets[block & self._l2_mask]
        l2_line = l2_set.get(block)
        if l2_line is not None:
            del l2_set[block]
            l2_set[block] = l2_line
            self.l2_hits += 1
            if is_write:
                l2_line.dirty = True
            # Inlined `l1.insert` for the promote: the block is known
            # absent (the L1 lookup above missed), the L1 has no observer,
            # and its victim is dropped silently under inclusion.
            if len(l1_set) >= self._l1_ways:
                del l1_set[next(iter(l1_set))]
            l1_set[block] = CacheLine(block, vm_id, is_write)
            return self._l2_result
        self.misses += 1
        return self._miss_result

    def fill(self, block: int, vm_id: int, dirty: bool = False) -> Optional[CacheLine]:
        """Install ``block`` after a coherence transaction completed.

        Returns the L2 victim line if the fill caused a replacement; the
        caller is responsible for writing back dirty victims and returning
        their tokens. Inclusion is enforced: the victim's L1 copy is
        dropped silently.
        """
        victim = self.l2.insert(block, vm_id, dirty=dirty)
        if victim is not None:
            self.l1.invalidate(victim.block)
        self.l1.insert(block, vm_id, dirty=dirty)
        return victim

    def fill_victim(self, block: int) -> Optional[CacheLine]:
        """The L2 line :meth:`fill` of ``block`` would evict, or ``None``.

        Pure prediction (no state change) — the canonical, readable
        version of the victim peek the batched kernel's bulk-miss seam
        performs to prove a fill is legal before committing it.
        """
        return self.l2.peek_victim(block)

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Invalidate ``block`` in both levels (coherence invalidation)."""
        self.l1.invalidate(block)
        return self.l2.invalidate(block)

    def contains(self, block: int) -> bool:
        """Whether ``block`` is resident (L2 inclusion makes L2 decisive)."""
        return self.l2.contains(block)

    def is_dirty(self, block: int) -> bool:
        line = self.l2.lookup(block, touch=False)
        return line is not None and line.dirty

    @property
    def total_accesses(self) -> int:
        return self.l1_hits + self.l2_hits + self.misses
