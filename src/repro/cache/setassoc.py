"""Set-associative cache with true-LRU replacement.

Each set is a plain ``dict`` from block number to :class:`CacheLine`;
insertion order (guaranteed for dicts since Python 3.7) *is* the LRU
order, least- to most-recently used. A recency touch is therefore a
delete + reinsert, and the LRU victim is the first key in iteration
order. Plain dicts beat ``OrderedDict`` here: the doubly-linked list
``OrderedDict`` maintains costs ~2.5x per delete/reinsert pair, and the
touch is the single hottest cache operation in the simulator.

An optional :class:`CacheObserver` receives insert/evict/invalidate
events; the virtual-snooping residence counters
(:mod:`repro.core.residence`) are implemented as an observer so the
cache substrate stays protocol-agnostic.

:meth:`SetAssociativeCache.packed` exports an array-backed mirror of the
tag/LRU/dirty state (NumPy arrays when available, lists otherwise) for
vectorised consumers and for the structural self-check
(:meth:`validate_packed`) the kernel differential suite runs.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.cache.line import CacheLine

try:  # pragma: no cover - exercised via both CI variants
    import numpy as _np

    _HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    _HAVE_NUMPY = False


class CacheObserver:
    """Callback interface for cache content changes.

    Subclasses override any subset of the hooks. All hooks receive the
    affected :class:`CacheLine` after the change has been applied.
    """

    def on_insert(self, line: CacheLine) -> None:
        """Called after a new line becomes resident."""

    def on_evict(self, line: CacheLine) -> None:
        """Called after a line is evicted by replacement."""

    def on_invalidate(self, line: CacheLine) -> None:
        """Called after a line is invalidated by a coherence action."""


class CompositeObserver(CacheObserver):
    """Fans cache events out to several observers (e.g. the virtual-
    snooping residence tracker plus a RegionScout region tracker)."""

    def __init__(self, *observers: CacheObserver) -> None:
        self.observers = list(observers)

    def on_insert(self, line: CacheLine) -> None:
        for observer in self.observers:
            observer.on_insert(line)

    def on_evict(self, line: CacheLine) -> None:
        for observer in self.observers:
            observer.on_evict(line)

    def on_invalidate(self, line: CacheLine) -> None:
        for observer in self.observers:
            observer.on_invalidate(line)


class SetAssociativeCache:
    """A single-level set-associative cache with LRU replacement.

    Capacity and geometry are specified directly in sets and ways; use
    :meth:`from_size` to derive geometry from a byte capacity.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        block_size: int = 64,
        observer: Optional[CacheObserver] = None,
    ) -> None:
        if num_sets <= 0 or (num_sets & (num_sets - 1)) != 0:
            raise ValueError(f"num_sets must be a positive power of two, got {num_sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self.block_size = block_size
        self.observer = observer
        self._sets: List[Dict[int, CacheLine]] = [{} for _ in range(num_sets)]
        self._set_mask = num_sets - 1

    @classmethod
    def from_size(
        cls,
        size_bytes: int,
        ways: int,
        block_size: int = 64,
        observer: Optional[CacheObserver] = None,
    ) -> "SetAssociativeCache":
        """Build a cache of ``size_bytes`` total capacity."""
        lines = size_bytes // block_size
        if lines % ways != 0:
            raise ValueError(
                f"{size_bytes} bytes / {block_size} B blocks is not divisible "
                f"by {ways} ways"
            )
        return cls(lines // ways, ways, block_size, observer)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def _set_for(self, block: int) -> Dict[int, CacheLine]:
        return self._sets[block & self._set_mask]

    def lookup(self, block: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for ``block``, or ``None`` on miss.

        ``touch`` updates LRU recency on a hit.
        """
        cache_set = self._sets[block & self._set_mask]
        line = cache_set.get(block)
        if line is not None and touch:
            del cache_set[block]
            cache_set[block] = line
        return line

    def contains(self, block: int) -> bool:
        return block in self._set_for(block)

    def insert(self, block: int, vm_id: int, dirty: bool = False) -> Optional[CacheLine]:
        """Make ``block`` resident; return the evicted victim, if any.

        If the block is already resident its metadata is refreshed in
        place (no eviction, no insert event).
        """
        cache_set = self._sets[block & self._set_mask]
        existing = cache_set.get(block)
        if existing is not None:
            # Refresh recency/dirtiness but keep the allocating VM's tag:
            # retagging would silently desynchronise the per-VM residence
            # counters that observe insert/evict events.
            existing.dirty = existing.dirty or dirty
            del cache_set[block]
            cache_set[block] = existing
            return None
        victim = None
        if len(cache_set) >= self.ways:
            victim = cache_set.pop(next(iter(cache_set)))
            if self.observer is not None:
                self.observer.on_evict(victim)
        line = CacheLine(block, vm_id, dirty)
        cache_set[block] = line
        if self.observer is not None:
            self.observer.on_insert(line)
        return victim

    def peek_victim(self, block: int) -> Optional[CacheLine]:
        """The line :meth:`insert` of ``block`` would evict, or ``None``.

        Pure prediction: no LRU touch, no observer events, no state
        change. The batched kernel's bulk-miss seam uses this to prove a
        fill's replacement victim is legal (same-VM and clean) before
        committing to the fast path.
        """
        cache_set = self._sets[block & self._set_mask]
        if block in cache_set or len(cache_set) < self.ways:
            return None
        return next(iter(cache_set.values()))

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove ``block`` if resident; return the removed line."""
        cache_set = self._set_for(block)
        line = cache_set.pop(block, None)
        if line is not None and self.observer is not None:
            self.observer.on_invalidate(line)
        return line

    def mark_dirty(self, block: int) -> None:
        """Set the dirty bit of a resident block."""
        line = self._set_for(block).get(block)
        if line is None:
            raise KeyError(f"block {block:#x} not resident")
        line.dirty = True

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines (unspecified order)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines_of_vm(self, vm_id: int) -> List[CacheLine]:
        """All resident lines tagged with ``vm_id`` (for selective flush)."""
        return [line for line in self.lines() if line.vm_id == vm_id]

    def flush_vm(self, vm_id: int) -> List[CacheLine]:
        """Invalidate every line of ``vm_id``; return the removed lines."""
        removed = self.lines_of_vm(vm_id)
        for line in removed:
            self.invalidate(line.block)
        return removed

    # ------------------------------------------------------------------
    # Array-backed mirror.
    # ------------------------------------------------------------------

    def packed(self):
        """Array-backed mirror of the tag/LRU/dirty/VM state.

        Returns ``(tags, vm_ids, dirty)``, each of shape
        ``num_sets * ways`` flattened set-major: entry ``s * ways + w``
        describes the line at LRU position ``w`` (least- to most-recent)
        of set ``s``; empty ways hold ``-1`` tags. NumPy ``int64``/
        ``bool_`` arrays when NumPy is installed, plain lists otherwise.

        The dict sets stay the source of truth — the mirror is built on
        demand for vectorised consumers and for :meth:`validate_packed`.
        """
        ways = self.ways
        size = self.num_sets * ways
        tags = [-1] * size
        vm_ids = [-1] * size
        dirty = [False] * size
        for set_index, cache_set in enumerate(self._sets):
            base = set_index * ways
            for way, line in enumerate(cache_set.values()):
                tags[base + way] = line.block
                vm_ids[base + way] = line.vm_id
                dirty[base + way] = line.dirty
        if _HAVE_NUMPY:
            return (
                _np.asarray(tags, dtype=_np.int64),
                _np.asarray(vm_ids, dtype=_np.int64),
                _np.asarray(dirty, dtype=_np.bool_),
            )
        return tags, vm_ids, dirty

    def validate_packed(self) -> None:
        """Structural self-check through the packed mirror.

        Rebuilds :meth:`packed` and asserts the invariants any correct
        set-associative state satisfies: every resident tag indexes its
        own set, no set exceeds its way count, no tag appears twice in a
        set, and occupied ways are packed before empty ones (LRU order
        is a prefix). Raises ``AssertionError`` with a diagnostic on the
        first violation.
        """
        tags, _vm_ids, _dirty = self.packed()
        ways = self.ways
        mask = self._set_mask
        for set_index in range(self.num_sets):
            base = set_index * ways
            row = tags[base : base + ways]
            seen_empty = False
            occupied = []
            for way in range(ways):
                tag = int(row[way])
                if tag < 0:
                    seen_empty = True
                    continue
                assert not seen_empty, (
                    f"set {set_index}: occupied way {way} after an empty way"
                )
                assert (tag & mask) == set_index, (
                    f"set {set_index}: tag {tag:#x} belongs to set {tag & mask}"
                )
                occupied.append(tag)
            assert len(set(occupied)) == len(occupied), (
                f"set {set_index}: duplicate tags {occupied}"
            )
            assert len(occupied) == len(self._sets[set_index]), (
                f"set {set_index}: mirror has {len(occupied)} lines, "
                f"dict has {len(self._sets[set_index])}"
            )
