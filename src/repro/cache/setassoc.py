"""Set-associative cache with true-LRU replacement.

Each set is an ``OrderedDict`` from block number to :class:`CacheLine`,
ordered least- to most-recently used. An optional :class:`CacheObserver`
receives insert/evict/invalidate events; the virtual-snooping residence
counters (:mod:`repro.core.residence`) are implemented as an observer so
the cache substrate stays protocol-agnostic.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator, List, Optional

from repro.cache.line import CacheLine


class CacheObserver:
    """Callback interface for cache content changes.

    Subclasses override any subset of the hooks. All hooks receive the
    affected :class:`CacheLine` after the change has been applied.
    """

    def on_insert(self, line: CacheLine) -> None:
        """Called after a new line becomes resident."""

    def on_evict(self, line: CacheLine) -> None:
        """Called after a line is evicted by replacement."""

    def on_invalidate(self, line: CacheLine) -> None:
        """Called after a line is invalidated by a coherence action."""


class CompositeObserver(CacheObserver):
    """Fans cache events out to several observers (e.g. the virtual-
    snooping residence tracker plus a RegionScout region tracker)."""

    def __init__(self, *observers: CacheObserver) -> None:
        self.observers = list(observers)

    def on_insert(self, line: CacheLine) -> None:
        for observer in self.observers:
            observer.on_insert(line)

    def on_evict(self, line: CacheLine) -> None:
        for observer in self.observers:
            observer.on_evict(line)

    def on_invalidate(self, line: CacheLine) -> None:
        for observer in self.observers:
            observer.on_invalidate(line)


class SetAssociativeCache:
    """A single-level set-associative cache with LRU replacement.

    Capacity and geometry are specified directly in sets and ways; use
    :meth:`from_size` to derive geometry from a byte capacity.
    """

    def __init__(
        self,
        num_sets: int,
        ways: int,
        block_size: int = 64,
        observer: Optional[CacheObserver] = None,
    ) -> None:
        if num_sets <= 0 or (num_sets & (num_sets - 1)) != 0:
            raise ValueError(f"num_sets must be a positive power of two, got {num_sets}")
        if ways <= 0:
            raise ValueError(f"ways must be positive, got {ways}")
        self.num_sets = num_sets
        self.ways = ways
        self.block_size = block_size
        self.observer = observer
        self._sets: List["OrderedDict[int, CacheLine]"] = [
            OrderedDict() for _ in range(num_sets)
        ]
        self._set_mask = num_sets - 1

    @classmethod
    def from_size(
        cls,
        size_bytes: int,
        ways: int,
        block_size: int = 64,
        observer: Optional[CacheObserver] = None,
    ) -> "SetAssociativeCache":
        """Build a cache of ``size_bytes`` total capacity."""
        lines = size_bytes // block_size
        if lines % ways != 0:
            raise ValueError(
                f"{size_bytes} bytes / {block_size} B blocks is not divisible "
                f"by {ways} ways"
            )
        return cls(lines // ways, ways, block_size, observer)

    @property
    def capacity_lines(self) -> int:
        return self.num_sets * self.ways

    def _set_for(self, block: int) -> "OrderedDict[int, CacheLine]":
        return self._sets[block & self._set_mask]

    def lookup(self, block: int, touch: bool = True) -> Optional[CacheLine]:
        """Return the resident line for ``block``, or ``None`` on miss.

        ``touch`` updates LRU recency on a hit.
        """
        cache_set = self._sets[block & self._set_mask]
        line = cache_set.get(block)
        if line is not None and touch:
            cache_set.move_to_end(block)
        return line

    def contains(self, block: int) -> bool:
        return block in self._set_for(block)

    def insert(self, block: int, vm_id: int, dirty: bool = False) -> Optional[CacheLine]:
        """Make ``block`` resident; return the evicted victim, if any.

        If the block is already resident its metadata is refreshed in
        place (no eviction, no insert event).
        """
        cache_set = self._sets[block & self._set_mask]
        existing = cache_set.get(block)
        if existing is not None:
            # Refresh recency/dirtiness but keep the allocating VM's tag:
            # retagging would silently desynchronise the per-VM residence
            # counters that observe insert/evict events.
            existing.dirty = existing.dirty or dirty
            cache_set.move_to_end(block)
            return None
        victim = None
        if len(cache_set) >= self.ways:
            _, victim = cache_set.popitem(last=False)
            if self.observer is not None:
                self.observer.on_evict(victim)
        line = CacheLine(block, vm_id, dirty)
        cache_set[block] = line
        if self.observer is not None:
            self.observer.on_insert(line)
        return victim

    def invalidate(self, block: int) -> Optional[CacheLine]:
        """Remove ``block`` if resident; return the removed line."""
        cache_set = self._set_for(block)
        line = cache_set.pop(block, None)
        if line is not None and self.observer is not None:
            self.observer.on_invalidate(line)
        return line

    def mark_dirty(self, block: int) -> None:
        """Set the dirty bit of a resident block."""
        line = self._set_for(block).get(block)
        if line is None:
            raise KeyError(f"block {block:#x} not resident")
        line.dirty = True

    def lines(self) -> Iterator[CacheLine]:
        """Iterate over all resident lines (unspecified order)."""
        for cache_set in self._sets:
            yield from cache_set.values()

    def resident_count(self) -> int:
        return sum(len(s) for s in self._sets)

    def lines_of_vm(self, vm_id: int) -> List[CacheLine]:
        """All resident lines tagged with ``vm_id`` (for selective flush)."""
        return [line for line in self.lines() if line.vm_id == vm_id]

    def flush_vm(self, vm_id: int) -> List[CacheLine]:
        """Invalidate every line of ``vm_id``; return the removed lines."""
        removed = self.lines_of_vm(vm_id)
        for line in removed:
            self.invalidate(line.block)
        return removed
