"""The trace-driven simulation engine.

Quasi-event-driven interleaving: each vCPU carries a local cycle clock;
the engine always advances the vCPU with the smallest clock, so cores
stay loosely synchronised without a global event queue. Each step:

1. fire any due migration (the paper's approximation: every period, two
   random vCPUs of *different* VMs swap physical cores),
2. generate the vCPU's next access, translate it (COW applies here),
3. look up the local L1/L2; on a miss — or a store without exclusive
   tokens — run a coherence transaction under the filter's plan,
4. fill the caches, handle the replacement victim, advance the clock.

Execution time (Figure 6) is the largest per-vCPU clock at completion.
"""

from __future__ import annotations

import heapq
import random
from typing import List, Optional, Tuple


from repro.core.residence import UNTRACKED_VM
from repro.hypervisor.vm import DOM0_VM_ID, VCpu
from repro.mem.pagetype import PageType
from repro.sim.system import HYPERVISOR_SPACE, SimulatedSystem
from repro.workloads.trace import Initiator, MemoryAccess


class SimulationEngine:
    """Runs one built :class:`SimulatedSystem` to completion."""

    def __init__(self, system: SimulatedSystem) -> None:
        self.system = system
        self.config = system.config
        self.stats = system.stats
        self.now = 0
        self._rng = random.Random(f"engine/{self.config.seed}")
        self._vcpus: List[VCpu] = [
            vcpu for vm in system.vms for vcpu in vm.vcpus
        ]
        system.snoop_filter.clock = lambda: self.now  # used by vsnoop filters
        self._observe_outcome = getattr(system.snoop_filter, "observe_outcome", None)
        period = self.config.migration_period_cycles
        self._migration_period = period
        self._next_migration = period if period is not None else None

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(
        self,
        accesses_per_vcpu: Optional[int] = None,
        warmup_accesses_per_vcpu: Optional[int] = None,
    ) -> None:
        """Warm the caches, reset the counters, then measure.

        The warm-up phase fills working sets so cold misses do not drown
        the steady-state behaviour the paper measures. Migrations only
        start with the measured phase.
        """
        budget = (
            accesses_per_vcpu
            if accesses_per_vcpu is not None
            else self.config.accesses_per_vcpu
        )
        warmup = (
            warmup_accesses_per_vcpu
            if warmup_accesses_per_vcpu is not None
            else self.config.warmup_accesses_per_vcpu
        )
        clocks = [0] * len(self._vcpus)
        if warmup > 0:
            clocks = self._run_phase(clocks, warmup, migrate=False)
            self._reset_measurements()
        if self._migration_period is not None:
            self._next_migration = max(clocks) + self._migration_period
        start = min(clocks)
        clocks = self._run_phase(clocks, budget, migrate=True)
        self.stats.execution_cycles = max(clocks) - start
        self._finalise()

    def _run_phase(
        self, clocks: List[int], budget: int, migrate: bool
    ) -> List[int]:
        """Advance every vCPU by ``budget`` accesses; returns final clocks."""
        heap: List[Tuple[int, int, int]] = []
        remaining = []
        for index, local_time in enumerate(clocks):
            heapq.heappush(heap, (local_time, index, index))
            remaining.append(budget)
        final = list(clocks)
        sequence = len(self._vcpus)
        think = self.config.think_cycles
        while heap:
            local_time, _, index = heapq.heappop(heap)
            self.now = local_time
            if migrate:
                self._maybe_migrate()
            latency = self._step(self._vcpus[index])
            remaining[index] -= 1
            next_time = local_time + think + latency
            if remaining[index] > 0:
                sequence += 1
                heapq.heappush(heap, (next_time, sequence, index))
            else:
                final[index] = next_time
        return final

    def _maybe_migrate(self) -> None:
        if self._next_migration is None or self.now < self._next_migration:
            return
        while self.now >= self._next_migration:
            self._shuffle_two_vcpus()
            self._next_migration += self._migration_period

    def _shuffle_two_vcpus(self) -> None:
        """Swap the cores of two random vCPUs from different VMs."""
        first = self._rng.choice(self._vcpus)
        others = [v for v in self._vcpus if v.vm_id != first.vm_id]
        if not others:
            return
        second = self._rng.choice(others)
        self.system.hypervisor.swap_vcpus(first, second, cycle=self.now)
        self.stats.migrations += 1

    def _reset_measurements(self) -> None:
        """Zero every measurement counter; architectural state persists."""
        from repro.sim.stats import SimStats

        fresh = SimStats()
        self.system.stats = fresh
        self.system.protocol.stats = fresh.coherence
        self.stats = fresh
        self.system.network.reset()
        self.system.memory_ctrl.reset()
        for hierarchy in self.system.caches.values():
            hierarchy.l1_hits = 0
            hierarchy.l2_hits = 0
            hierarchy.misses = 0
        domains = getattr(self.system.snoop_filter, "domains", None)
        if domains is not None:
            domains.removal_log.clear()
        self.system.hypervisor.relocations.clear()

    # ------------------------------------------------------------------
    # One access.
    # ------------------------------------------------------------------

    def _step(self, vcpu: VCpu) -> int:
        system = self.system
        workload = system.workloads[vcpu.vm_id]
        access = workload.next_access(vcpu.index)
        host_page, page_type = self._translate(access)
        block = system.layout.block_in_page(host_page, access.block_index)
        core = vcpu.core
        assert core is not None
        vm_tag = access.vm_id if access.initiator is Initiator.GUEST else UNTRACKED_VM

        self.stats.l1_accesses += 1
        self.stats.l1_accesses_by_page_type[page_type] += 1

        hierarchy = system.caches[core]
        result = hierarchy.access(block, vm_tag, access.is_write)
        needs_transaction = not result.hit or (
            access.is_write and not system.registry.write_hit(core, block)
        )
        if not needs_transaction:
            return result.latency

        self.stats.transactions_by_initiator[access.initiator] += 1
        plan = system.snoop_filter.plan(core, access.vm_id, page_type, block)
        outcome = system.protocol.execute(
            core, access.vm_id, block, access.is_write, plan, cycle=self.now
        )
        if not result.hit:
            victim = hierarchy.fill(
                block, vm_tag, dirty=access.is_write or outcome.fill_dirty
            )
            if victim is not None:
                system.protocol.handle_eviction(core, victim, cycle=self.now)
        if self._observe_outcome is not None:
            self._observe_outcome(core, block)
        return result.latency + outcome.latency

    def _translate(self, access: MemoryAccess) -> Tuple[int, PageType]:
        """Resolve the access to a host page + sharing type.

        Hypervisor and dom0 accesses go through their own address spaces
        and are forced RW-shared; guest stores trigger copy-on-write.
        """
        memory = self.system.hypervisor.memory
        if access.initiator is Initiator.HYPERVISOR:
            return self._rw_shared_translate(HYPERVISOR_SPACE, access.guest_page)
        if access.initiator is Initiator.DOM0:
            return self._rw_shared_translate(DOM0_VM_ID, access.guest_page)
        if access.is_write:
            return self.system.hypervisor.write_to_page(access.vm_id, access.guest_page)
        return memory.translate(access.vm_id, access.guest_page)

    def _rw_shared_translate(self, space: int, page: int) -> Tuple[int, PageType]:
        memory = self.system.hypervisor.memory
        host_page, page_type = memory.translate(space, page)
        if page_type is not PageType.RW_SHARED:
            memory.mark_rw_shared(space, page)
            page_type = PageType.RW_SHARED
        return host_page, page_type

    # ------------------------------------------------------------------
    # Wrap-up.
    # ------------------------------------------------------------------

    def _finalise(self) -> None:
        stats = self.stats
        system = self.system
        stats.network_bytes = system.network.bytes_transferred
        stats.network_messages = system.network.messages
        domains = getattr(system.snoop_filter, "domains", None)
        if domains is not None:
            stats.removal_periods_cycles = [
                record.period for record in domains.removal_log
            ]


def run_simulation(system: SimulatedSystem) -> "SimulatedSystem":
    """Convenience: run ``system`` to completion and return it."""
    SimulationEngine(system).run()
    return system
