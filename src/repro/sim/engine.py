"""The trace-driven simulation engine.

Quasi-event-driven interleaving: each vCPU carries a local cycle clock;
the engine always advances the vCPU with the smallest clock, so cores
stay loosely synchronised without a global event queue. Each step:

1. fire any due migration (the paper's approximation: every period, two
   random vCPUs of *different* VMs swap physical cores),
2. generate the vCPU's next access, translate it (COW applies here),
3. look up the local L1/L2; on a miss — or a store without exclusive
   tokens — run a coherence transaction under the filter's plan,
4. fill the caches, handle the replacement victim, advance the clock.

Execution time (Figure 6) is the largest per-vCPU clock at completion.
"""

from __future__ import annotations

import gc
import heapq
import random
from typing import List, Optional, Tuple


from repro.cache.line import CacheLine
from repro.core.residence import UNTRACKED_VM
from repro.hypervisor.vm import DOM0_VM_ID, VCpu
from repro.mem.pagetype import PageType
from repro.sim.system import HYPERVISOR_SPACE, SimulatedSystem
from repro.workloads.trace import Initiator


class SimulationEngine:
    """Runs one built :class:`SimulatedSystem` to completion."""

    def __init__(self, system: SimulatedSystem) -> None:
        self.system = system
        self.config = system.config
        self.stats = system.stats
        self.now = 0
        self._rng = random.Random(f"engine/{self.config.seed}")
        self._vcpus: List[VCpu] = [
            vcpu for vm in system.vms for vcpu in vm.vcpus
        ]
        system.snoop_filter.clock = lambda: self.now  # used by vsnoop filters
        self._observe_outcome = getattr(system.snoop_filter, "observe_outcome", None)
        period = self.config.migration_period_cycles
        self._migration_period = period
        self._next_migration = period if period is not None else None
        # Hot-path aliases: every component below is looked up once per
        # access in _step, and none of them changes identity during a run
        # (stats objects are swapped on reset, so they stay on self).
        self._workloads = system.workloads
        self._caches = system.caches
        self._memory = system.hypervisor.memory
        self._mem_translate = self._memory.translate
        self._plan = system.snoop_filter.plan
        self._execute = system.protocol.execute
        # Opt-in coherence sanitizer: when attached, every plan and
        # transaction goes through its checked wrappers (pure observers —
        # latency, traffic and RNG draws are untouched, so stats stay
        # bit-identical to an unsanitized run).
        self._sanitizer = system.sanitizer
        if self._sanitizer is not None:
            self._sanitizer.clock = lambda: self.now
            self._plan = self._sanitizer.wrap_plan(self._plan)
            self._execute = self._sanitizer.wrap_execute(self._execute)
        # Opt-in tracer (repro.obs): wraps the plan seam (to capture each
        # transaction's destination set) and the engine's own transaction
        # entry point (to read exact counter deltas around it). Installed
        # after the sanitizer so traced transactions are the checked
        # ones; like it, a pure observer — stats stay bit-identical.
        self._tracer = system.tracer
        if self._tracer is not None:
            self._tracer.clock = lambda: self.now
            self._plan = self._tracer.wrap_plan(self._plan)
            self._transact = self._tracer.wrap_transact(self._transact)
        # Opt-in metrics recorder: the hot loop compares each popped
        # clock against this boundary; float('inf') keeps the comparison
        # permanently false (one int-vs-inf test per access) when off.
        self._metrics = system.metrics
        self._next_sample = float("inf")
        self._handle_eviction = system.protocol.handle_eviction
        self._write_to_page = system.hypervisor.write_to_page
        layout = system.layout
        self._page_shift = layout.page_bits - layout.block_bits
        # Guest-load translation memo: vm_id -> {guest_page -> (host_page,
        # page_type)}. The memory manager fires the hook whenever any
        # existing translation or page type changes (COW, content sharing,
        # RW-shared marking, page frees), so a memo hit is always current.
        # Inner dicts are pre-built and cleared *in place* so the hot loop
        # can hold direct per-vCPU references to them across invalidations.
        self._xlate_memo: dict = {}
        for vm in system.vms:
            self._xlate_memo[vm.vm_id] = {}
        self._xlate_memo.setdefault(DOM0_VM_ID, {})
        self._xlate_memo.setdefault(HYPERVISOR_SPACE, {})
        self._memory.translation_change_hook = self._clear_xlate_memo
        # Per-vCPU generation closures, built once: a vCPU's VM and
        # stream index never change (only its core does), so neither the
        # steppers nor the trace-replay adapters depend on phase state.
        # Previously the adapter closures were rebuilt inside every
        # _run_phase call; hoisting them here means both engines (and
        # both phases) share the identical closure per vCPU.
        self._steppers = []
        for vcpu in self._vcpus:
            workload = self._workloads[vcpu.vm_id]
            stepper_for = getattr(workload, "stepper_for", None)
            if stepper_for is not None:
                self._steppers.append(stepper_for(vcpu.index))
            else:
                # Trace-replay (or other) workloads expose only the
                # MemoryAccess API; adapt it to the stepper signature.
                self._steppers.append(_step_adapter(workload, vcpu.index))

    def _clear_xlate_memo(self) -> None:
        for memo in self._xlate_memo.values():
            memo.clear()

    # ------------------------------------------------------------------
    # Main loop.
    # ------------------------------------------------------------------

    def run(
        self,
        accesses_per_vcpu: Optional[int] = None,
        warmup_accesses_per_vcpu: Optional[int] = None,
    ) -> None:
        """Warm the caches, reset the counters, then measure.

        The warm-up phase fills working sets so cold misses do not drown
        the steady-state behaviour the paper measures. Migrations only
        start with the measured phase.
        """
        self.measure(
            self.warm(warmup_accesses_per_vcpu), accesses_per_vcpu
        )

    def warm(
        self, warmup_accesses_per_vcpu: Optional[int] = None
    ) -> List[int]:
        """Run the warm-up phase and reset counters; returns the clocks.

        After this the system is in exactly the state
        :meth:`restore_warm` reproduces from a snapshot: architectural
        state warm, every measurement counter zeroed.
        """
        warmup = (
            warmup_accesses_per_vcpu
            if warmup_accesses_per_vcpu is not None
            else self.config.warmup_accesses_per_vcpu
        )
        clocks = [0] * len(self._vcpus)
        if warmup > 0:
            # The access loop allocates heavily into long-lived containers
            # (cache lines, registry state), which makes the cyclic GC fire
            # constantly for no reclaimable garbage. Everything the engine
            # allocates is reachable or refcount-collected, so pausing the
            # collector for the phase is purely a speed-up.
            gc_was_enabled = gc.isenabled()
            gc.disable()
            try:
                clocks = self._run_phase(clocks, warmup, migrate=False)
            finally:
                if gc_was_enabled:
                    gc.enable()
            self._reset_measurements(min(clocks))
        return clocks

    def restore_warm(self, state: dict) -> List[int]:
        """Reach the post-:meth:`warm` state from a snapshot instead.

        Restores the architectural state into the freshly built system,
        then performs the same measurement reset the straight path runs
        at the warm-up boundary, so both paths converge to bit-identical
        pre-measurement state.
        """
        clocks = self.system.restore(state)
        self._reset_measurements(min(clocks))
        return clocks

    def measure(
        self, clocks: List[int], accesses_per_vcpu: Optional[int] = None
    ) -> None:
        """Run the measured phase from post-warm-up ``clocks``."""
        budget = (
            accesses_per_vcpu
            if accesses_per_vcpu is not None
            else self.config.accesses_per_vcpu
        )
        if self._migration_period is not None:
            self._next_migration = max(clocks) + self._migration_period
        start = min(clocks)
        if self._tracer is not None:
            self._tracer.begin_measurement(start)
        if self._metrics is not None:
            self._next_sample = self._metrics.begin(start)
        gc_was_enabled = gc.isenabled()
        gc.disable()
        try:
            clocks = self._run_phase(clocks, budget, migrate=True)
        finally:
            if gc_was_enabled:
                gc.enable()
        self.stats.execution_cycles = max(clocks) - start
        self._finalise()

    def _run_phase(
        self, clocks: List[int], budget: int, migrate: bool
    ) -> List[int]:
        """Advance every vCPU by ``budget`` accesses; returns final clocks.

        The loop body is the simulator's innermost hot path: the per-access
        step is inlined here, and the dominant case — a guest load that
        hits the L1 — completes without entering any helper. The statistic
        updates keep exactly the order the out-of-line helpers would
        produce, which is what makes the optimisation invisible to every
        counter.
        """
        heap: List[Tuple[int, int, int]] = []
        remaining = []
        for index, local_time in enumerate(clocks):
            heapq.heappush(heap, (local_time, index, index))
            remaining.append(budget)
        final = list(clocks)
        vcpus = self._vcpus
        sequence = len(vcpus)
        think = self.config.think_cycles
        heappush = heapq.heappush
        heappop = heapq.heappop
        migrate = migrate and self._next_migration is not None
        next_migration = self._next_migration if migrate else 0
        # Metrics boundary: inf unless a recorder is active this phase.
        metrics = self._metrics
        next_sample = self._next_sample
        # Folded deadline: the soonest coherence-visible boundary (metrics
        # sample or migration window). The hot loop compares each popped
        # clock against this single value; the two-way split below only
        # runs when a boundary is actually due, so the common access pays
        # one comparison instead of two.
        boundary = next_sample
        if migrate and next_migration < boundary:
            boundary = next_migration
        workloads = self._workloads
        caches = self._caches
        mem_translate = self._mem_translate
        guest_initiator = Initiator.GUEST
        hyp_initiator = Initiator.HYPERVISOR
        ro_shared = PageType.RO_SHARED
        write_to_page = self._write_to_page
        page_shift = self._page_shift
        rw_shared_translate = self._rw_shared_translate
        # Registry record dict, for the inlined write_hit check below.
        reg_blocks = self.system.registry._blocks
        # Per-heap-index hoists: a vCPU's VM, stream index and memo never
        # change (only its core does), so resolve them once per phase. The
        # stepper closures keep all generator state in cells — the loop
        # calls them with no attribute traffic and no MemoryAccess object.
        steppers = self._steppers
        vm_ids = [v.vm_id for v in vcpus]
        vm_memos = [self._xlate_memo[v.vm_id] for v in vcpus]
        # Core placements change only on migration; refreshed below when
        # one fires.
        cores = [v.core for v in vcpus]
        # self.stats is only swapped between phases, never during one.
        stats = self.stats
        l1_by_page_type = stats.l1_accesses_by_page_type
        while heap:
            local_time, _, index = heappop(heap)
            self.now = local_time
            if local_time >= boundary:
                # Same check order as the pre-fold loop: sample first,
                # then migration, each against its own deadline.
                if local_time >= next_sample:
                    next_sample = metrics.sample(local_time)
                if migrate and local_time >= next_migration:
                    self._maybe_migrate()
                    next_migration = self._next_migration
                    cores = [v.core for v in vcpus]
                boundary = next_sample
                if migrate and next_migration < boundary:
                    boundary = next_migration
            initiator, guest_page, block_index, is_write = steppers[index]()
            vm_id = vm_ids[index]
            if initiator is guest_initiator:
                vm_tag = vm_id
                vm_memo = vm_memos[index]
                entry = vm_memo.get(guest_page)
                if entry is None:
                    # write_to_page equals translate() for non-RO pages and
                    # transparently COWs RO pages (firing the memo-clear
                    # hook); either way the result is the live translation.
                    if is_write:
                        entry = write_to_page(vm_id, guest_page)
                    else:
                        entry = mem_translate(vm_id, guest_page)
                    vm_memo[guest_page] = entry
                    host_page, page_type = entry
                else:
                    host_page, page_type = entry
                    if is_write and page_type is ro_shared:
                        # Store to a content-shared page: COW breaks the
                        # sharing and the hook clears the (now stale) memo.
                        host_page, page_type = write_to_page(vm_id, guest_page)
            else:
                vm_tag = UNTRACKED_VM
                host_page, page_type = rw_shared_translate(
                    HYPERVISOR_SPACE if initiator is hyp_initiator else DOM0_VM_ID,
                    guest_page,
                )
            block = (host_page << page_shift) | block_index
            core = cores[index]

            l1_by_page_type[page_type] += 1

            hierarchy = caches[core]
            # Inlined PrivateHierarchy.access (see that method for the
            # canonical, readable version — behaviour here is identical,
            # including counter and LRU update order). The silent-write
            # check additionally inlines TokenRegistry.write_hit.
            l1_set = hierarchy._l1_sets[block & hierarchy._l1_mask]
            l1_line = l1_set.get(block)
            if l1_line is not None:
                del l1_set[block]
                l1_set[block] = l1_line
                hierarchy.l1_hits += 1
                latency = hierarchy.l1_latency
                if is_write:
                    l1_line.dirty = True
                    hierarchy._l2_sets[block & hierarchy._l2_mask][block].dirty = True
                    state = reg_blocks.get(block)
                    if (
                        state is not None
                        and state.owner == core
                        and len(state.sharers) == 1
                        and core in state.sharers
                    ):
                        state.dirty = True
                    else:
                        latency += self._transact(
                            core, vm_id, block, True, page_type, initiator,
                            vm_tag, hierarchy, True,
                        )
            else:
                l2_set = hierarchy._l2_sets[block & hierarchy._l2_mask]
                l2_line = l2_set.get(block)
                if l2_line is not None:
                    del l2_set[block]
                    l2_set[block] = l2_line
                    hierarchy.l2_hits += 1
                    if is_write:
                        l2_line.dirty = True
                    # Promote into the L1 (inclusion; L1 has no observer).
                    if len(l1_set) >= hierarchy._l1_ways:
                        del l1_set[next(iter(l1_set))]
                    l1_set[block] = CacheLine(block, vm_tag, is_write)
                    latency = hierarchy.l1_latency + hierarchy.l2_latency
                    if is_write:
                        state = reg_blocks.get(block)
                        if (
                            state is not None
                            and state.owner == core
                            and len(state.sharers) == 1
                            and core in state.sharers
                        ):
                            state.dirty = True
                        else:
                            latency += self._transact(
                                core, vm_id, block, True, page_type, initiator,
                                vm_tag, hierarchy, True,
                            )
                else:
                    hierarchy.misses += 1
                    latency = hierarchy.l1_latency + hierarchy.l2_latency
                    latency += self._transact(
                        core, vm_id, block, is_write, page_type, initiator,
                        vm_tag, hierarchy, False,
                    )

            remaining[index] -= 1
            next_time = local_time + think + latency
            if remaining[index] > 0:
                sequence += 1
                heappush(heap, (next_time, sequence, index))
            else:
                final[index] = next_time
        # Every loop iteration is exactly one L1 access, so the total is
        # known up front; adding it once replaces a per-access counter
        # bump (the per-page-type breakdown above still runs per access).
        stats.l1_accesses += budget * len(vcpus)
        self._next_sample = next_sample
        return final

    def _maybe_migrate(self) -> None:
        if self._next_migration is None or self.now < self._next_migration:
            return
        while self.now >= self._next_migration:
            self._shuffle_two_vcpus()
            self._next_migration += self._migration_period

    def _shuffle_two_vcpus(self) -> None:
        """Swap the cores of two random vCPUs from different VMs."""
        first = self._rng.choice(self._vcpus)
        others = [v for v in self._vcpus if v.vm_id != first.vm_id]
        if not others:
            return
        second = self._rng.choice(others)
        self.system.hypervisor.swap_vcpus(first, second, cycle=self.now)
        self.stats.migrations += 1

    def _reset_measurements(self, cycle: int = 0) -> None:
        """Zero every measurement counter; architectural state persists.

        ``cycle`` anchors the network's utilisation window at the
        measurement boundary (both the straight warm-up and the
        snapshot-restore path pass ``min(clocks)``, so the two stay
        bit-identical).
        """
        from repro.sim.stats import SimStats

        fresh = SimStats()
        self.system.stats = fresh
        self.system.protocol.stats = fresh.coherence
        self.stats = fresh
        self.system.network.reset(cycle)
        self.system.memory_ctrl.reset()
        for hierarchy in self.system.caches.values():
            hierarchy.l1_hits = 0
            hierarchy.l2_hits = 0
            hierarchy.misses = 0
        domains = getattr(self.system.snoop_filter, "domains", None)
        if domains is not None:
            domains.removal_log.clear()
            domains.removal_log_dropped = 0
        self.system.hypervisor.relocations.clear()

    # ------------------------------------------------------------------
    # One access.
    # ------------------------------------------------------------------

    def _transact(
        self,
        core: int,
        vm_id: int,
        block: int,
        is_write: bool,
        page_type: PageType,
        initiator: Initiator,
        vm_tag: int,
        hierarchy,
        hit: bool,
    ) -> int:
        """Run the coherence transaction for one access; returns its latency.

        Called from the `_run_phase` fast path for the minority of accesses
        that miss the private hierarchy or store without exclusive tokens.
        Split into a pure *plan* step (the memoised snoop-filter lookup,
        which mutates nothing) and :meth:`_apply_transact` (everything
        with side effects), so callers that must inspect a plan before
        committing to it — the batched kernel's bulk-miss seam — can run
        the plan step alone and hand the result back here.
        """
        self.stats.transactions_by_initiator[initiator] += 1
        plan = self._plan(core, vm_id, page_type, block)
        return self._apply_transact(
            core, vm_id, block, is_write, plan, vm_tag, hierarchy, hit
        )

    def _apply_transact(
        self,
        core: int,
        vm_id: int,
        block: int,
        is_write: bool,
        plan,
        vm_tag: int,
        hierarchy,
        hit: bool,
    ) -> int:
        """Apply a planned transaction: execute, fill, observe.

        The side-effecting half of :meth:`_transact`; the caller has
        already bumped ``transactions_by_initiator`` and resolved the
        plan.
        """
        outcome = self._execute(
            core, vm_id, block, is_write, plan, cycle=self.now
        )
        if not hit:
            # Inlined PrivateHierarchy.fill (see that method for the
            # canonical version): the block is known absent at both levels
            # — the caller just missed, and the transaction above only
            # invalidates *other* cores' copies — and the L1 carries no
            # observer. Observer event order (evict, then insert) matches
            # SetAssociativeCache.insert.
            dirty = is_write or outcome.fill_dirty
            l2_set = hierarchy._l2_sets[block & hierarchy._l2_mask]
            observer = hierarchy._l2_observer
            victim = None
            if len(l2_set) >= hierarchy._l2_ways:
                victim = l2_set.pop(next(iter(l2_set)))
                if observer is not None:
                    observer.on_evict(victim)
            line = CacheLine(block, vm_tag, dirty)
            l2_set[block] = line
            if observer is not None:
                observer.on_insert(line)
            if victim is not None:
                # Inclusion: drop the victim's L1 copy (before the L1
                # capacity check below, as fill does).
                hierarchy._l1_sets[victim.block & hierarchy._l1_mask].pop(
                    victim.block, None
                )
            l1_set = hierarchy._l1_sets[block & hierarchy._l1_mask]
            if len(l1_set) >= hierarchy._l1_ways:
                del l1_set[next(iter(l1_set))]
            l1_set[block] = CacheLine(block, vm_tag, dirty)
            if victim is not None:
                self._handle_eviction(core, victim, cycle=self.now)
        if self._observe_outcome is not None:
            self._observe_outcome(core, block)
        return outcome.latency

    def _rw_shared_translate(self, space: int, page: int) -> Tuple[int, PageType]:
        """Memoised hypervisor/dom0 translation (forced RW-shared)."""
        memo = self._xlate_memo.get(space)
        if memo is None:
            memo = self._xlate_memo[space] = {}
        entry = memo.get(page)
        if entry is not None:
            return entry
        memory = self._memory
        host_page, page_type = memory.translate(space, page)
        if page_type is not PageType.RW_SHARED:
            # First touch: marking fires the memo-clear hook, so re-fetch
            # the (possibly replaced) per-space memo before storing.
            memory.mark_rw_shared(space, page)
            memo = self._xlate_memo.setdefault(space, {})
        entry = (host_page, PageType.RW_SHARED)
        memo[page] = entry
        return entry

    # ------------------------------------------------------------------
    # Wrap-up.
    # ------------------------------------------------------------------

    def _finalise(self) -> None:
        if self._sanitizer is not None:
            # Full-state audit: recompute every invariant from the actual
            # cache lines, proving the incremental shadow never drifted.
            self._sanitizer.audit()
        stats = self.stats
        system = self.system
        stats.network_bytes = system.network.bytes_transferred
        stats.network_messages = system.network.messages
        domains = getattr(system.snoop_filter, "domains", None)
        if domains is not None:
            stats.removal_periods_cycles = [
                record.period for record in domains.removal_log
            ]
            stats.removal_periods_dropped = domains.removal_log_dropped
            stats.snoop_map_sizes = {
                vm.vm_id: domains.domain_size(vm.vm_id) for vm in system.vms
            }
        if self._metrics is not None:
            stats.metrics = self._metrics.finish(self.now)
        if self._tracer is not None:
            self._tracer.close(self.now)


def _step_adapter(workload, index: int):
    """Adapt a ``next_access``-only workload to the stepper signature."""
    next_access = workload.next_access

    def step():
        access = next_access(index)
        return (
            access.initiator,
            access.guest_page,
            access.block_index,
            access.is_write,
        )

    return step


def run_simulation(system: SimulatedSystem) -> "SimulatedSystem":
    """Convenience: run ``system`` to completion and return it.

    Honours ``config.kernel`` — the import is deferred because
    :mod:`repro.sim.kernel` subclasses this module's engine.
    """
    from repro.sim.kernel import engine_for

    engine_for(system).run()
    return system
