"""Simulation layer: configuration, system builder, engine, statistics."""

from repro.sim.config import SimConfig
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.runner import (
    SimTask,
    default_jobs,
    parallel_map,
    run_matrix,
    run_simulation_task,
    set_default_jobs,
)
from repro.sim.stats import SimStats
from repro.sim.system import (
    HYPERVISOR_SPACE,
    CoherenceBridge,
    SimulatedSystem,
    build_system,
    compute_friends,
)

__all__ = [
    "CoherenceBridge",
    "HYPERVISOR_SPACE",
    "SimConfig",
    "SimStats",
    "SimTask",
    "SimulatedSystem",
    "SimulationEngine",
    "build_system",
    "compute_friends",
    "default_jobs",
    "parallel_map",
    "run_matrix",
    "run_simulation",
    "run_simulation_task",
    "set_default_jobs",
]
