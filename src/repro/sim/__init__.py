"""Simulation layer: configuration, system builder, engine, statistics."""

from repro.sim.config import SimConfig
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.runner import (
    CampaignInterrupted,
    CampaignSettings,
    SimTask,
    TaskError,
    TaskResult,
    WorkerError,
    campaign_settings,
    default_jobs,
    parallel_map,
    run_matrix,
    run_matrix_detailed,
    run_simulation_task,
    set_campaign,
    set_default_jobs,
    task_key,
    warmup_fingerprint,
)
from repro.sim.stats import SimStats
from repro.sim.system import (
    HYPERVISOR_SPACE,
    CoherenceBridge,
    SimulatedSystem,
    build_system,
    compute_friends,
)

__all__ = [
    "CampaignInterrupted",
    "CampaignSettings",
    "CoherenceBridge",
    "HYPERVISOR_SPACE",
    "SimConfig",
    "SimStats",
    "SimTask",
    "SimulatedSystem",
    "SimulationEngine",
    "TaskError",
    "TaskResult",
    "WorkerError",
    "build_system",
    "campaign_settings",
    "compute_friends",
    "default_jobs",
    "parallel_map",
    "run_matrix",
    "run_matrix_detailed",
    "run_simulation",
    "run_simulation_task",
    "set_campaign",
    "set_default_jobs",
    "task_key",
    "warmup_fingerprint",
]
