"""Simulation layer: configuration, system builder, engine, statistics."""

from repro.sim.config import SimConfig
from repro.sim.engine import SimulationEngine, run_simulation
from repro.sim.stats import SimStats
from repro.sim.system import (
    HYPERVISOR_SPACE,
    CoherenceBridge,
    SimulatedSystem,
    build_system,
    compute_friends,
)

__all__ = [
    "CoherenceBridge",
    "HYPERVISOR_SPACE",
    "SimConfig",
    "SimStats",
    "SimulatedSystem",
    "SimulationEngine",
    "build_system",
    "compute_friends",
    "run_simulation",
]
