"""Simulation configuration — Table II of the paper as defaults.

=================  ==========================================
Processors         16 in-order cores
L1 I/D cache       32 KB, 4-way, 64 B blocks, 2-cycle latency
L2 cache           256 KB, 8-way, 64 B blocks, 10-cycle latency
Coherence          Token Coherence, MOESI
On-chip network    4x4 2D mesh, 16 B links, 4-cycle routers
=================  ==========================================

The paper's VM setup (Section V-A): four VMs with four vCPUs each —
16 vCPUs on 16 physical cores, no overcommitment.

``cycles_per_ms`` maps the paper's millisecond migration periods onto
simulated cycles. The paper simulates full application runs at 1 GHz+;
our traces are shorter, so the default scale (100 000 cycles per "ms")
compresses wall-clock while preserving the *ratio* between migration
period and cache-turnover time, which is what Figures 7-9 depend on.
Use :meth:`SimConfig.real_time` for a 1 GHz mapping instead.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.interconnect.builder import check_topology_config


@dataclass(frozen=True)
class SimConfig:
    """Full configuration of one coherence simulation."""

    # System (Table II). The topology block is resolved by the builder
    # registry (repro.interconnect.builder): "mesh" and "torus" read
    # mesh_width x mesh_height and require num_cores to match;
    # "hierarchical" is num_sockets sockets of mesh_width x mesh_height
    # each, joined by gateway links charged inter_socket_hop_cost hops.
    num_cores: int = 16
    topology: str = "mesh"
    mesh_width: int = 4
    mesh_height: int = 4
    num_sockets: int = 1
    inter_socket_hop_cost: int = 4
    block_size: int = 64
    l1_size: int = 32 * 1024
    l1_ways: int = 4
    l1_latency: int = 2
    l2_size: int = 256 * 1024
    l2_ways: int = 8
    l2_latency: int = 10
    router_latency: int = 4
    link_latency: int = 1
    link_bytes: int = 16
    memory_latency: int = 80
    memory_node: int = 0
    # Virtualization.
    num_vms: int = 4
    vcpus_per_vm: int = 4
    host_pages: int = 1 << 20
    # Snoop filter. "vsnoop" uses the paper's virtual snooping filter
    # (configured by snoop_policy / content_policy); "regionscout" swaps
    # in the region-based baseline from repro.baselines.
    filter_kind: str = "vsnoop"
    snoop_policy: SnoopPolicy = SnoopPolicy.VSNOOP_BASE
    content_policy: ContentPolicy = ContentPolicy.BROADCAST
    counter_threshold: int = 10
    region_blocks: int = 64
    # Workload and time.
    accesses_per_vcpu: int = 20_000
    warmup_accesses_per_vcpu: int = 4_000
    think_cycles: int = 2
    cycles_per_ms: int = 100_000
    migration_period_ms: Optional[float] = None
    # The paper's Section V simulator runs neither a hypervisor nor
    # content sharing ("a hypervisor is not running, and its effect is
    # not included"); Section III/VI experiments opt in.
    content_sharing_enabled: bool = False
    hypervisor_activity_enabled: bool = False
    working_set_scale: float = 1.0
    seed: int = 42
    # Workload selection beyond the paper's 13 calibrated apps. `pattern`
    # is an access-pattern spec (repro.workloads.patterns grammar, e.g.
    # "zipfian(alpha=1.2)"): every VM runs the generic mixed service with
    # all pools walked by that pattern. `suite` names a scenario suite
    # (repro.workloads.suites): each VM runs its slot's service profile.
    # Mutually exclusive; both None keeps the calibrated VmWorkload
    # generator. Both fields are part of the task/warm-up identity (NOT
    # warm-up-inert): they change the access stream byte-for-byte.
    pattern: Optional[str] = None
    suite: Optional[str] = None
    # Opt-in runtime coherence sanitizer (repro.sanitizer): maintains
    # ground-truth line residence beside the caches and asserts snoop-
    # filter safety, residence-counter consistency, SWMR/state and
    # domain-soundness invariants on every transaction. "raise" fails
    # fast on the first violation; "count" records violations into
    # SimStats.sanitizer_violations for soak runs.
    sanitize: bool = False
    sanitize_mode: str = "raise"
    # Opt-in observability (repro.obs). `trace` names a file to receive
    # the structured event stream (coherence transactions, migrations,
    # vCPU-map changes); `trace_format` picks the backend ("auto" keys on
    # the extension: .jsonl/.json -> JSONL, else compact binary).
    # `metrics_sample_every` attaches the windowed metrics recorder,
    # sampling counter deltas every N cycles into SimStats.metrics. Both
    # are pure observers: with them off the engine hot path is untouched
    # and stats stay bit-identical (the --sanitize guarantee).
    trace: Optional[str] = None
    trace_format: str = "auto"
    metrics_sample_every: Optional[int] = None
    # Execution kernel. "reference" is the engine's canonical per-access
    # loop; "batched" is the chunked fast-path kernel (repro.sim.kernel),
    # proven bit-identical by the golden corpus and the differential
    # suites; "auto" picks batched except when an opt-in observer
    # (sanitizer/tracer) is attached, and honours the REPRO_KERNEL
    # environment override. Bit-identity means the choice never changes
    # a result — only wall-clock time.
    kernel: str = "auto"

    def __post_init__(self) -> None:
        check_topology_config(self)
        if self.num_vms * self.vcpus_per_vm > self.num_cores:
            raise ValueError(
                f"{self.num_vms} VMs x {self.vcpus_per_vm} vCPUs exceed "
                f"{self.num_cores} cores (the coherence simulator does not "
                f"model overcommitment, as in the paper)"
            )
        if self.migration_period_ms is not None and self.migration_period_ms <= 0:
            raise ValueError("migration_period_ms must be positive")
        if self.num_vms < 1:
            raise ValueError("need at least one VM")
        if self.filter_kind not in ("vsnoop", "regionscout"):
            raise ValueError(f"unknown filter_kind {self.filter_kind!r}")
        if self.sanitize_mode not in ("raise", "count"):
            raise ValueError(
                f"sanitize_mode must be 'raise' or 'count', got "
                f"{self.sanitize_mode!r}"
            )
        if self.trace_format not in ("auto", "jsonl", "binary"):
            raise ValueError(
                f"trace_format must be 'auto', 'jsonl' or 'binary', got "
                f"{self.trace_format!r}"
            )
        if self.metrics_sample_every is not None and self.metrics_sample_every <= 0:
            raise ValueError(
                f"metrics_sample_every must be positive, got "
                f"{self.metrics_sample_every}"
            )
        if self.kernel not in ("auto", "batched", "reference"):
            raise ValueError(
                f"kernel must be 'auto', 'batched' or 'reference', got "
                f"{self.kernel!r}"
            )
        if self.pattern is not None and self.suite is not None:
            raise ValueError(
                "pattern and suite are mutually exclusive (a suite already "
                "names each VM's service and patterns)"
            )
        if self.pattern is not None:
            # Validate the spec at config time so a bad CLI/config string
            # fails before any simulation is built or stored. Imported
            # lazily: repro.workloads never imports repro.sim, so this
            # cannot cycle, but config construction is on every hot path.
            from repro.workloads.patterns import parse_pattern

            parse_pattern(self.pattern)
        if self.suite is not None:
            from repro.workloads.suites import SUITE_NAMES

            if self.suite not in SUITE_NAMES:
                raise ValueError(
                    f"unknown suite {self.suite!r} "
                    f"(known: {', '.join(SUITE_NAMES)})"
                )

    @property
    def migration_period_cycles(self) -> Optional[int]:
        if self.migration_period_ms is None:
            return None
        return int(self.migration_period_ms * self.cycles_per_ms)

    def with_policy(
        self,
        snoop_policy: SnoopPolicy,
        content_policy: Optional[ContentPolicy] = None,
    ) -> "SimConfig":
        """A copy of this config under a different filter policy."""
        if content_policy is None:
            return replace(self, snoop_policy=snoop_policy)
        return replace(
            self, snoop_policy=snoop_policy, content_policy=content_policy
        )

    def real_time(self, clock_ghz: float = 1.0) -> "SimConfig":
        """A copy with a physical cycles-per-ms mapping."""
        return replace(self, cycles_per_ms=int(clock_ghz * 1e6))

    @classmethod
    def migration_study(cls, **overrides) -> "SimConfig":
        """Preset for the VM-relocation experiments (Figures 7-9).

        Caches and working sets are scaled down together (1/4) so cache
        turnover completes within a tractable number of simulated
        accesses; ``cycles_per_ms`` is chosen so the counter mechanism
        clears an old core within roughly 10 "ms" of a relocation, the
        regime the paper's Figure 9 shows. Ratios between the migration
        periods (5 / 2.5 / 0.5 / 0.1 ms) and the eviction timescale are
        what the figures depend on, and those are preserved.
        """
        defaults = dict(
            l1_size=4 * 1024,
            l2_size=32 * 1024,
            working_set_scale=0.15,
            cycles_per_ms=84_000,
            accesses_per_vcpu=70_000,
            warmup_accesses_per_vcpu=8_000,
        )
        defaults.update(overrides)
        return cls(**defaults)
