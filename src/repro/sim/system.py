"""Build a complete simulated system from a :class:`SimConfig`.

Wires together every substrate: mesh network, memory controller, token
registry and protocol, per-core cache hierarchies with residence-counter
observers, the hypervisor with its VMs, the virtual-snooping filter, and
one synthetic workload per VM. Also performs the initial vCPU placement
and the ideal content-sharing scan (flushing shared pages to memory, as
Section VI requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import TYPE_CHECKING, Dict, List, Optional

from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.protocol import TokenProtocol
from repro.coherence.registry import TokenRegistry
from repro.core.filter import VirtualSnoopFilter
from repro.hypervisor.hypervisor import Hypervisor, PlacementListener
from repro.hypervisor.memory import MemoryManager
from repro.hypervisor.vm import DOM0_VM_ID, VirtualMachine
from repro.interconnect.messages import FlitSizing, MessageKind
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology
from repro.mem.address import AddressLayout
from repro.mem.controller import MemoryController
from repro.sim.config import SimConfig
from repro.sim.stats import SimStats
from repro.workloads.generator import VmWorkload
from repro.workloads.profiles import AppProfile

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import MetricsRecorder
    from repro.obs.tracer import Tracer
    from repro.sanitizer.core import CoherenceSanitizer

HYPERVISOR_SPACE = -10
"""Address-space id for the hypervisor's own (globally RW-shared) pages."""


class CoherenceBridge(PlacementListener):
    """Applies hypervisor page events to the coherence substrate.

    When a page becomes content-shared the hypervisor "flushes any
    modified cachelines of the page to the memory to ensure the memory
    has a clean page" (Section VI-A); this bridge performs that flush on
    the token registry and charges the writeback traffic.
    """

    def __init__(
        self,
        registry: TokenRegistry,
        memory_ctrl: MemoryController,
        network: NetworkModel,
        layout: AddressLayout,
        stats: SimStats,
        caches: Optional[Dict[int, PrivateHierarchy]] = None,
    ) -> None:
        self.registry = registry
        self.memory_ctrl = memory_ctrl
        self.network = network
        self.layout = layout
        self.stats = stats
        self.caches = caches if caches is not None else {}

    def on_page_shared(self, host_page: int) -> None:
        first_block = self.layout.block_in_page(host_page, 0)
        for block in range(first_block, first_block + self.layout.blocks_per_page):
            state = self.registry.state_of(block)
            if state is None:
                continue
            if self.registry.flush_block_to_memory(block):
                owner = next(iter(state.sharers), None)
                self.memory_ctrl.writeback()
                self.stats.flush_writebacks += 1
                if owner is not None:
                    self.network.send(
                        owner, self.memory_ctrl.node, MessageKind.WRITEBACK
                    )

    def on_cow(self, vm_id: int, old_host_page: int, new_host_page: int) -> None:
        self.stats.cow_events += 1

    def on_page_freed(self, host_page: int) -> None:
        """Flush every cached block of a freed host page.

        The allocator may recycle the page to another VM, and stale
        copies in foreign caches would break the VM-private invariant
        virtual snooping relies on — real hypervisors flush reassigned
        pages for the same reason.
        """
        first_block = self.layout.block_in_page(host_page, 0)
        for block in range(first_block, first_block + self.layout.blocks_per_page):
            sharers = self.registry.drop_block(block)
            for core in sharers:
                hierarchy = self.caches.get(core)
                if hierarchy is not None:
                    hierarchy.invalidate(block)


def compute_friends(
    memory: MemoryManager,
    vm_ids: List[int],
    stream_phases: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Pick each VM's *friend*: the VM it shares the most RO pages with.

    When several VMs tie on shared-page count (the common case for
    homogeneous consolidation, where every VM runs the same image), the
    tie breaks toward the VM with the closest content-stream phase —
    the one whose cached content overlaps the most *in time* — then
    toward the lowest id for determinism. VMs sharing nothing get no
    friend.
    """
    shared_counts: Dict[frozenset, int] = {}
    for _, sharers in memory.iter_shared_pages():
        for pair in combinations(sorted(sharers), 2):
            key = frozenset(pair)
            shared_counts[key] = shared_counts.get(key, 0) + 1

    def affinity(vm_id: int, other: int):
        count = shared_counts.get(frozenset((vm_id, other)), 0)
        phase_distance = 0
        if stream_phases and vm_id in stream_phases and other in stream_phases:
            phase_distance = abs(stream_phases[vm_id] - stream_phases[other])
        # Larger is better: more pages, then nearer phase, then lower id.
        return (count, -phase_distance, -other)

    friends: Dict[int, int] = {}
    for vm_id in vm_ids:
        others = [o for o in vm_ids if o != vm_id]
        if not others:
            continue
        best = max(others, key=lambda other: affinity(vm_id, other))
        if shared_counts.get(frozenset((vm_id, best)), 0) > 0:
            friends[vm_id] = best
    return friends


@dataclass
class SimulatedSystem:
    """All components of one built simulation, ready for the engine."""

    config: SimConfig
    profile: AppProfile
    layout: AddressLayout
    topology: MeshTopology
    network: NetworkModel
    memory_ctrl: MemoryController
    registry: TokenRegistry
    protocol: TokenProtocol
    caches: Dict[int, PrivateHierarchy]
    hypervisor: Hypervisor
    snoop_filter: PlacementListener  # VirtualSnoopFilter or RegionScoutFilter
    vms: List[VirtualMachine]
    workloads: Dict[int, VmWorkload]
    stats: SimStats
    # Attached by repro.sanitizer.attach_sanitizer when config.sanitize.
    sanitizer: Optional["CoherenceSanitizer"] = field(default=None)
    # Attached by repro.obs.attach_observability when config.trace /
    # config.metrics_sample_every is set; the engine installs the
    # hot-path seams for whichever is present.
    tracer: Optional["Tracer"] = field(default=None)
    metrics: Optional["MetricsRecorder"] = field(default=None)


def build_system(config: SimConfig, profile: AppProfile) -> SimulatedSystem:
    """Construct and wire a full system running ``profile`` in every VM.

    The paper's Section V/VI setup runs the same application in all VMs;
    the initial placement is contiguous (VM *i* on cores
    ``i*vcpus .. (i+1)*vcpus - 1``).
    """
    layout = AddressLayout(block_size=config.block_size)
    topology = MeshTopology(config.mesh_width, config.mesh_height)
    sizing = FlitSizing(link_bytes=config.link_bytes, block_bytes=config.block_size)
    network = NetworkModel(
        topology,
        sizing,
        router_latency=config.router_latency,
        link_latency=config.link_latency,
    )
    memory_ctrl = MemoryController(latency=config.memory_latency, node=config.memory_node)
    registry = TokenRegistry()
    stats = SimStats()

    def sync_vcpu_maps(vm_id: int, domain) -> None:
        # The hypervisor core multicasts the new map to every core in it.
        network.multicast(config.memory_node, domain, MessageKind.VCPU_MAP_UPDATE)

    if config.filter_kind == "regionscout":
        from repro.baselines.regionscout import RegionScoutFilter

        snoop_filter = RegionScoutFilter(
            config.num_cores, region_blocks=config.region_blocks
        )
    else:
        snoop_filter = VirtualSnoopFilter(
            config.num_cores,
            policy=config.snoop_policy,
            content_policy=config.content_policy,
            counter_threshold=config.counter_threshold,
            sync_hook=sync_vcpu_maps,
        )
    caches = {
        core: PrivateHierarchy(
            core,
            l1_size=config.l1_size,
            l1_ways=config.l1_ways,
            l2_size=config.l2_size,
            l2_ways=config.l2_ways,
            block_size=config.block_size,
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            l2_observer=snoop_filter.trackers[core],
        )
        for core in range(config.num_cores)
    }
    protocol = TokenProtocol(
        registry,
        network,
        memory_ctrl,
        caches,
        stats=stats.coherence,
        snoop_lookup_latency=config.l2_latency,
    )

    hypervisor = Hypervisor(config.num_cores, host_pages=config.host_pages)
    hypervisor.add_listener(snoop_filter)
    bridge = CoherenceBridge(registry, memory_ctrl, network, layout, stats, caches)
    hypervisor.add_listener(bridge)
    hypervisor.memory.page_free_hook = bridge.on_page_freed
    hypervisor.memory.create_address_space(HYPERVISOR_SPACE)
    hypervisor.memory.create_address_space(DOM0_VM_ID)

    vms = [hypervisor.create_vm(config.vcpus_per_vm) for _ in range(config.num_vms)]
    for vm_index, vm in enumerate(vms):
        for vcpu in vm.vcpus:
            core = vm_index * config.vcpus_per_vm + vcpu.index
            hypervisor.place_vcpu(vcpu, core)

    workloads = {
        vm.vm_id: VmWorkload(
            profile,
            vm.vm_id,
            config.vcpus_per_vm,
            seed=config.seed,
            include_hypervisor=config.hypervisor_activity_enabled,
            working_set_scale=config.working_set_scale,
            coverage_accesses=max(config.warmup_accesses_per_vcpu, 1000),
        )
        for vm in vms
    }
    if config.content_sharing_enabled:
        for vm in vms:
            hypervisor.content.register_many(
                vm.vm_id, workloads[vm.vm_id].content_pages()
            )
        hypervisor.share_identical_pages()
        if isinstance(snoop_filter, VirtualSnoopFilter):
            phases = {
                vm_id: workload.content_stream_phase
                for vm_id, workload in workloads.items()
            }
            friends = compute_friends(
                hypervisor.memory, [vm.vm_id for vm in vms], stream_phases=phases
            )
            for vm_id, friend in friends.items():
                snoop_filter.set_friend(vm_id, friend)

    system = SimulatedSystem(
        config=config,
        profile=profile,
        layout=layout,
        topology=topology,
        network=network,
        memory_ctrl=memory_ctrl,
        registry=registry,
        protocol=protocol,
        caches=caches,
        hypervisor=hypervisor,
        snoop_filter=snoop_filter,
        vms=vms,
        workloads=workloads,
        stats=stats,
    )
    if config.sanitize:
        from repro.sanitizer import attach_sanitizer

        attach_sanitizer(system, mode=config.sanitize_mode)
    if config.trace is not None or config.metrics_sample_every is not None:
        from repro.obs import attach_observability

        attach_observability(
            system,
            trace_path=config.trace,
            trace_format=config.trace_format,
            metrics_sample_every=config.metrics_sample_every,
        )
    return system
