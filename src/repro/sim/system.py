"""Build a complete simulated system from a :class:`SimConfig`.

Wires together every substrate: mesh network, memory controller, token
registry and protocol, per-core cache hierarchies with residence-counter
observers, the hypervisor with its VMs, the virtual-snooping filter, and
one synthetic workload per VM. Also performs the initial vCPU placement
and the ideal content-sharing scan (flushing shared pages to memory, as
Section VI requires).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.cache.hierarchy import PrivateHierarchy
from repro.cache.line import CacheLine
from repro.coherence.protocol import TokenProtocol
from repro.coherence.registry import BlockState, TokenRegistry
from repro.core.filter import VirtualSnoopFilter
from repro.hypervisor.hypervisor import Hypervisor, PlacementListener
from repro.hypervisor.memory import HostPageInfo, MemoryManager
from repro.hypervisor.vm import DOM0_VM_ID, VirtualMachine
from repro.interconnect.messages import FlitSizing, MessageKind
from repro.interconnect.network import NetworkModel
from repro.interconnect.builder import build_topology
from repro.interconnect.topology import Topology
from repro.mem.address import AddressLayout
from repro.mem.controller import MemoryController
from repro.mem.pagetype import PageType
from repro.sim.config import SimConfig
from repro.sim.stats import SimStats
from repro.workloads.generator import VmWorkload
from repro.workloads.pattern_workload import PatternWorkload
from repro.workloads.profiles import AppProfile

# The engine-facing workload interface: the synthetic generator, the
# pattern-driven generator, or a trace replay (duck-typed elsewhere).
Workload = Union[VmWorkload, PatternWorkload]

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.recorder import MetricsRecorder
    from repro.obs.tracer import Tracer
    from repro.sanitizer.core import CoherenceSanitizer

HYPERVISOR_SPACE = -10
"""Address-space id for the hypervisor's own (globally RW-shared) pages."""


class CoherenceBridge(PlacementListener):
    """Applies hypervisor page events to the coherence substrate.

    When a page becomes content-shared the hypervisor "flushes any
    modified cachelines of the page to the memory to ensure the memory
    has a clean page" (Section VI-A); this bridge performs that flush on
    the token registry and charges the writeback traffic.
    """

    def __init__(
        self,
        registry: TokenRegistry,
        memory_ctrl: MemoryController,
        network: NetworkModel,
        layout: AddressLayout,
        stats: SimStats,
        caches: Optional[Dict[int, PrivateHierarchy]] = None,
    ) -> None:
        self.registry = registry
        self.memory_ctrl = memory_ctrl
        self.network = network
        self.layout = layout
        self.stats = stats
        self.caches = caches if caches is not None else {}

    def on_page_shared(self, host_page: int) -> None:
        first_block = self.layout.block_in_page(host_page, 0)
        for block in range(first_block, first_block + self.layout.blocks_per_page):
            state = self.registry.state_of(block)
            if state is None:
                continue
            if self.registry.flush_block_to_memory(block):
                owner = next(iter(state.sharers), None)
                self.memory_ctrl.writeback()
                self.stats.flush_writebacks += 1
                if owner is not None:
                    self.network.send(
                        owner, self.memory_ctrl.node, MessageKind.WRITEBACK
                    )

    def on_cow(self, vm_id: int, old_host_page: int, new_host_page: int) -> None:
        self.stats.cow_events += 1

    def on_page_freed(self, host_page: int) -> None:
        """Flush every cached block of a freed host page.

        The allocator may recycle the page to another VM, and stale
        copies in foreign caches would break the VM-private invariant
        virtual snooping relies on — real hypervisors flush reassigned
        pages for the same reason.
        """
        first_block = self.layout.block_in_page(host_page, 0)
        for block in range(first_block, first_block + self.layout.blocks_per_page):
            # Sorted for the same reason as the protocol's invalidation
            # loop: the order reaches the removal log via the residence
            # observers, and must not depend on set table history.
            for core in sorted(self.registry.drop_block(block)):
                hierarchy = self.caches.get(core)
                if hierarchy is not None:
                    hierarchy.invalidate(block)


def compute_friends(
    memory: MemoryManager,
    vm_ids: List[int],
    stream_phases: Optional[Dict[int, int]] = None,
) -> Dict[int, int]:
    """Pick each VM's *friend*: the VM it shares the most RO pages with.

    When several VMs tie on shared-page count (the common case for
    homogeneous consolidation, where every VM runs the same image), the
    tie breaks toward the VM with the closest content-stream phase —
    the one whose cached content overlaps the most *in time* — then
    toward the lowest id for determinism. VMs sharing nothing get no
    friend.
    """
    shared_counts: Dict[frozenset, int] = {}
    for _, sharers in memory.iter_shared_pages():
        for pair in combinations(sorted(sharers), 2):
            key = frozenset(pair)
            shared_counts[key] = shared_counts.get(key, 0) + 1

    def affinity(vm_id: int, other: int):
        count = shared_counts.get(frozenset((vm_id, other)), 0)
        phase_distance = 0
        if stream_phases and vm_id in stream_phases and other in stream_phases:
            phase_distance = abs(stream_phases[vm_id] - stream_phases[other])
        # Larger is better: more pages, then nearer phase, then lower id.
        return (count, -phase_distance, -other)

    friends: Dict[int, int] = {}
    for vm_id in vm_ids:
        others = [o for o in vm_ids if o != vm_id]
        if not others:
            continue
        best = max(others, key=lambda other: affinity(vm_id, other))
        if shared_counts.get(frozenset((vm_id, best)), 0) > 0:
            friends[vm_id] = best
    return friends


SNAPSHOT_FORMAT = 1
"""Layout version of the :meth:`SimulatedSystem.snapshot` state dict."""


def _capture_sets(sets) -> list:
    """Each cache set as an ordered ``(block, vm_id, dirty)`` list.

    The sets are dicts whose insertion order *is* the LRU order, so a
    plain item walk captures recency exactly.
    """
    return [
        [(line.block, line.vm_id, line.dirty) for line in cache_set.values()]
        for cache_set in sets
    ]


def _restore_sets(sets, captured: list) -> None:
    """Refill the existing set dicts in place, preserving order.

    In place because the hierarchy's ``_l1_sets``/``_l2_sets`` aliases
    *are* the caches' own set lists — replacing the dicts would split
    them.
    """
    for cache_set, lines in zip(sets, captured):
        cache_set.clear()
        for block, vm_id, dirty in lines:
            cache_set[block] = CacheLine(block, vm_id, dirty)


class SnapshotMismatch(ValueError):
    """A warm-state snapshot does not fit this system.

    Raised by :meth:`SimulatedSystem.restore` *before any mutation*, so a
    caller can fall back to a normal warm-up on the same system.
    """


@dataclass
class SimulatedSystem:
    """All components of one built simulation, ready for the engine."""

    config: SimConfig
    profile: AppProfile
    layout: AddressLayout
    topology: Topology
    network: NetworkModel
    memory_ctrl: MemoryController
    registry: TokenRegistry
    protocol: TokenProtocol
    caches: Dict[int, PrivateHierarchy]
    hypervisor: Hypervisor
    snoop_filter: PlacementListener  # VirtualSnoopFilter or RegionScoutFilter
    vms: List[VirtualMachine]
    workloads: Dict[int, Workload]
    stats: SimStats
    # Attached by repro.sanitizer.attach_sanitizer when config.sanitize.
    sanitizer: Optional["CoherenceSanitizer"] = field(default=None)
    # Attached by repro.obs.attach_observability when config.trace /
    # config.metrics_sample_every is set; the engine installs the
    # hot-path seams for whichever is present.
    tracer: Optional["Tracer"] = field(default=None)
    metrics: Optional["MetricsRecorder"] = field(default=None)

    # ------------------------------------------------------------------
    # Warm-state snapshots (the reuse layer; see repro.store).
    #
    # A snapshot is a plain-data dict (builtins all the way down, so it
    # pickles losslessly) of every piece of architectural state that the
    # warm-up phase mutates. Restoring transplants it into a *freshly
    # built* system for the same warmup fingerprint, mutating existing
    # containers in place — the engine and hierarchies hold direct
    # aliases (set lists, bound methods, stepper closures over cursor and
    # RNG objects), so object identities must survive.
    #
    # Deliberately NOT captured, because a fresh build is provably in the
    # post-warmup state already (DESIGN.md "Warm-state snapshot reuse"):
    #   * vCPU placement and the snoop-domain table — migrations are
    #     disabled during warm-up, so no placement ever changes and no
    #     domain entry is added or removed after construction; the
    #     domain/placement sanity stamps below verify this at restore.
    #   * the engine's migration RNG — it draws only when a migration
    #     fires, and migrations are measurement-only.
    #   * measurement counters (stats, network, memory controller, cache
    #     hit counters, removal/relocation logs) — the engine resets them
    #     at the warm-up/measurement boundary on both paths.
    # ------------------------------------------------------------------

    def snapshot(self, clocks: List[int]) -> dict:
        """Capture post-warmup architectural state as plain data.

        ``clocks`` are the per-vCPU cycle counts returned by the engine's
        warm-up phase; they are part of the state (measurement timing
        starts from them).
        """
        registry_blocks = [
            (
                block,
                sorted(state.sharers),
                state.owner,
                state.dirty,
                list(state.providers.items()),
            )
            for block, state in self.registry._blocks.items()
        ]
        caches = {
            core: {
                "l1": _capture_sets(h._l1_sets),
                "l2": _capture_sets(h._l2_sets),
            }
            for core, h in self.caches.items()
        }
        if isinstance(self.snoop_filter, VirtualSnoopFilter):
            filter_state = {
                "residence": {
                    core: list(tracker._counts.items())
                    for core, tracker in self.snoop_filter.trackers.items()
                }
            }
            domains_version = self.snoop_filter.domains.version
        else:
            filter_state = self.snoop_filter.snapshot_state()
            domains_version = None
        memory = self.hypervisor.memory
        # Each workload captures its own mutable state (VmWorkload keeps
        # the historical dict shape, so pre-existing stored snapshots
        # stay restorable; PatternWorkload / TraceReplayWorkload carry
        # their own kinds).
        workloads = {
            vm_id: w.snapshot_state() for vm_id, w in self.workloads.items()
        }
        return {
            "format": SNAPSHOT_FORMAT,
            "clocks": list(clocks),
            # Sanity stamps: state a fresh build must already agree on.
            "placements": [
                (vcpu.vm_id, vcpu.index, vcpu.core)
                for vm in self.vms
                for vcpu in vm.vcpus
            ],
            "domains_version": domains_version,
            "caches": caches,
            "registry": registry_blocks,
            "filter": filter_state,
            "memory": {
                "tables": {
                    space: list(table.items())
                    for space, table in memory._tables.items()
                },
                "host_info": [
                    (page, info.page_type.value, info.owner_vm, sorted(info.sharer_vms))
                    for page, info in memory._host_info.items()
                ],
                "cow_faults": memory.cow_faults,
                "shared_pages_created": memory.shared_pages_created,
            },
            "content": {
                "labels": list(self.hypervisor.content._labels.items()),
                "scans": self.hypervisor.content.scans,
                "pages_merged": self.hypervisor.content.pages_merged,
            },
            "host": {
                "next_fresh": self.hypervisor.host._next_fresh,
                "free_list": list(self.hypervisor.host._free_list),
                "allocated": sorted(self.hypervisor.host._allocated),
            },
            "workloads": workloads,
        }

    def restore(self, state: dict) -> List[int]:
        """Transplant a :meth:`snapshot` capture into this (fresh) system.

        Returns the captured per-vCPU clocks. Existing containers are
        mutated in place; no component object is replaced. Measurement
        counters are *not* touched — the engine resets them at the
        measurement boundary exactly as it does after a real warm-up
        (see ``SimulationEngine.restore_warm``).

        Raises :class:`SnapshotMismatch` before any mutation when the
        snapshot provably does not belong to this system.
        """
        if state.get("format") != SNAPSHOT_FORMAT:
            raise SnapshotMismatch(
                f"snapshot format {state.get('format')!r} != {SNAPSHOT_FORMAT}"
            )
        placements = [
            (vcpu.vm_id, vcpu.index, vcpu.core)
            for vm in self.vms
            for vcpu in vm.vcpus
        ]
        if state["placements"] != placements:
            raise SnapshotMismatch(
                "snapshot vCPU placement differs from the built system "
                "(warm-up is migration-free, so they must agree)"
            )
        is_vsnoop = isinstance(self.snoop_filter, VirtualSnoopFilter)
        if is_vsnoop:
            if state["domains_version"] != self.snoop_filter.domains.version:
                raise SnapshotMismatch(
                    f"snapshot domain-table version {state['domains_version']} "
                    f"!= built system's {self.snoop_filter.domains.version}"
                )
        if set(state["caches"]) != set(self.caches) or set(
            state["workloads"]
        ) != set(self.workloads):
            raise SnapshotMismatch("snapshot core/VM population differs")

        for core, captured in state["caches"].items():
            hierarchy = self.caches[core]
            _restore_sets(hierarchy._l1_sets, captured["l1"])
            _restore_sets(hierarchy._l2_sets, captured["l2"])
        blocks = self.registry._blocks
        blocks.clear()
        for block, sharers, owner, dirty, providers in state["registry"]:
            record = BlockState()
            record.sharers.update(sharers)
            record.owner = owner
            record.dirty = dirty
            record.providers.update(providers)
            blocks[block] = record
        if is_vsnoop:
            for core, counts in state["filter"]["residence"].items():
                tracker = self.snoop_filter.trackers[core]
                tracker._counts.clear()
                tracker._counts.update(counts)
            self.snoop_filter._plan_cache.clear()
            self.snoop_filter._plan_cache_version = self.snoop_filter.domains.version
        else:
            self.snoop_filter.restore_state(state["filter"])
        memory = self.hypervisor.memory
        captured_memory = state["memory"]
        for space, entries in captured_memory["tables"].items():
            table = memory._tables[space]
            table.clear()
            table.update(entries)
        memory._host_info.clear()
        for page, type_value, owner_vm, sharer_vms in captured_memory["host_info"]:
            memory._host_info[page] = HostPageInfo(
                page_type=PageType(type_value),
                owner_vm=owner_vm,
                sharer_vms=set(sharer_vms),
            )
        memory.cow_faults = captured_memory["cow_faults"]
        memory.shared_pages_created = captured_memory["shared_pages_created"]
        content = self.hypervisor.content
        content._labels.clear()
        content._labels.update(state["content"]["labels"])
        content.scans = state["content"]["scans"]
        content.pages_merged = state["content"]["pages_merged"]
        host = self.hypervisor.host
        host._next_fresh = state["host"]["next_fresh"]
        host._free_list[:] = state["host"]["free_list"]
        host._allocated.clear()
        host._allocated.update(state["host"]["allocated"])
        for vm_id, captured in state["workloads"].items():
            self.workloads[vm_id].restore_state(captured)
        return list(state["clocks"])


def build_system(config: SimConfig, profile: AppProfile) -> SimulatedSystem:
    """Construct and wire a full system running ``profile`` in every VM.

    The paper's Section V/VI setup runs the same application in all VMs;
    the initial placement is contiguous (VM *i* on cores
    ``i*vcpus .. (i+1)*vcpus - 1``).
    """
    layout = AddressLayout(block_size=config.block_size)
    topology = build_topology(config)
    sizing = FlitSizing(link_bytes=config.link_bytes, block_bytes=config.block_size)
    network = NetworkModel(
        topology,
        sizing,
        router_latency=config.router_latency,
        link_latency=config.link_latency,
    )
    memory_ctrl = MemoryController(latency=config.memory_latency, node=config.memory_node)
    registry = TokenRegistry()
    stats = SimStats()

    def sync_vcpu_maps(vm_id: int, domain) -> None:
        # The hypervisor core multicasts the new map to every core in it.
        network.multicast(config.memory_node, domain, MessageKind.VCPU_MAP_UPDATE)

    if config.filter_kind == "regionscout":
        from repro.baselines.regionscout import RegionScoutFilter

        snoop_filter = RegionScoutFilter(
            config.num_cores, region_blocks=config.region_blocks
        )
    else:
        snoop_filter = VirtualSnoopFilter(
            config.num_cores,
            policy=config.snoop_policy,
            content_policy=config.content_policy,
            counter_threshold=config.counter_threshold,
            sync_hook=sync_vcpu_maps,
        )
    caches = {
        core: PrivateHierarchy(
            core,
            l1_size=config.l1_size,
            l1_ways=config.l1_ways,
            l2_size=config.l2_size,
            l2_ways=config.l2_ways,
            block_size=config.block_size,
            l1_latency=config.l1_latency,
            l2_latency=config.l2_latency,
            l2_observer=snoop_filter.trackers[core],
        )
        for core in range(config.num_cores)
    }
    protocol = TokenProtocol(
        registry,
        network,
        memory_ctrl,
        caches,
        stats=stats.coherence,
        snoop_lookup_latency=config.l2_latency,
    )

    hypervisor = Hypervisor(config.num_cores, host_pages=config.host_pages)
    hypervisor.add_listener(snoop_filter)
    bridge = CoherenceBridge(registry, memory_ctrl, network, layout, stats, caches)
    hypervisor.add_listener(bridge)
    hypervisor.memory.page_free_hook = bridge.on_page_freed
    hypervisor.memory.create_address_space(HYPERVISOR_SPACE)
    hypervisor.memory.create_address_space(DOM0_VM_ID)

    vms = [hypervisor.create_vm(config.vcpus_per_vm) for _ in range(config.num_vms)]
    for vm_index, vm in enumerate(vms):
        for vcpu in vm.vcpus:
            core = vm_index * config.vcpus_per_vm + vcpu.index
            hypervisor.place_vcpu(vcpu, core)

    workloads: Dict[int, Workload]
    if config.pattern is not None or config.suite is not None:
        # Pattern/suite configs swap the calibrated generator for the
        # composable pattern workloads; everything downstream (content
        # registration, friends, the engine) sees the same interface.
        from repro.workloads.pattern_workload import workloads_for_config

        workloads = workloads_for_config(config, vms)
    else:
        workloads = {
            vm.vm_id: VmWorkload(
                profile,
                vm.vm_id,
                config.vcpus_per_vm,
                seed=config.seed,
                include_hypervisor=config.hypervisor_activity_enabled,
                working_set_scale=config.working_set_scale,
                coverage_accesses=max(config.warmup_accesses_per_vcpu, 1000),
            )
            for vm in vms
        }
    if config.content_sharing_enabled:
        for vm in vms:
            hypervisor.content.register_many(
                vm.vm_id, workloads[vm.vm_id].content_pages()
            )
        hypervisor.share_identical_pages()
        if isinstance(snoop_filter, VirtualSnoopFilter):
            phases = {
                vm_id: workload.content_stream_phase
                for vm_id, workload in workloads.items()
            }
            friends = compute_friends(
                hypervisor.memory, [vm.vm_id for vm in vms], stream_phases=phases
            )
            for vm_id, friend in friends.items():
                snoop_filter.set_friend(vm_id, friend)

    system = SimulatedSystem(
        config=config,
        profile=profile,
        layout=layout,
        topology=topology,
        network=network,
        memory_ctrl=memory_ctrl,
        registry=registry,
        protocol=protocol,
        caches=caches,
        hypervisor=hypervisor,
        snoop_filter=snoop_filter,
        vms=vms,
        workloads=workloads,
        stats=stats,
    )
    if config.sanitize:
        from repro.sanitizer import attach_sanitizer

        attach_sanitizer(system, mode=config.sanitize_mode)
    if config.trace is not None or config.metrics_sample_every is not None:
        from repro.obs import attach_observability

        attach_observability(
            system,
            trace_path=config.trace,
            trace_format=config.trace_format,
            metrics_sample_every=config.metrics_sample_every,
        )
    return system
