"""Bulk word streams from a ``random.Random``, bit-exact.

CPython's ``random.Random`` and NumPy's ``np.random.MT19937`` are the
*same* generator — Mersenne Twister 19937 with identical tempering — so
the 624-word internal state of one can be transplanted into the other
and both then produce the identical sequence of 32-bit words.
``random()`` consumes exactly two words (``(a >> 5) * 2**26 + (b >> 6)``
over ``2**53``) and ``getrandbits(k)`` for ``k <= 32`` consumes exactly
one (``word >> (32 - k)``), so any consumer whose draws reduce to those
two primitives can be replayed from a flat word buffer.

:class:`WordStream` packages that trick for the batched simulation
kernel (:mod:`repro.sim.kernel`):

* :meth:`WordStream.raw` pulls the next ``n`` tempered output words in
  bulk via ``MT19937.random_raw`` — the exact
  ``genrand_uint32`` sequence the source ``Random`` would emit, at C
  speed;
* :meth:`WordStream.sync_back` writes the source ``Random`` forward to
  the position after ``consumed`` words, so over-fetched (buffered but
  unconsumed) words are returned to the generator and every later draw
  through the normal ``random.Random`` API continues bit-identically.

The module degrades gracefully without NumPy: :data:`HAVE_NUMPY` is
False and the kernel falls back to its pure-Python chunked path, which
draws through the ordinary ``Random`` methods and needs no word stream.
"""

from __future__ import annotations

import random

try:  # pragma: no cover - exercised via HAVE_NUMPY in both CI lanes
    import numpy as _np
except ImportError:  # pragma: no cover
    _np = None

HAVE_NUMPY = _np is not None

_MT_N = 624  # MT19937 state words


def _transplant(key, pos):
    """A ``np.random.MT19937`` positioned at (key, pos)."""
    bit_generator = _np.random.MT19937()
    bit_generator.state = {
        "bit_generator": "MT19937",
        "state": {"key": _np.array(key, dtype=_np.uint64), "pos": pos},
    }
    return bit_generator


class WordStream:
    """Exact bulk replica of one ``random.Random``'s word sequence.

    Forks from ``rng.getstate()`` at construction; :meth:`raw` then
    serves words from the fork. The source ``rng`` is *not* advanced
    until :meth:`sync_back`, which positions it exactly ``consumed``
    words past the fork point — callers over-fetch freely and settle at
    a phase boundary. One stream serves one phase; fork a fresh one per
    phase.
    """

    __slots__ = ("_rng", "_version", "_key", "_pos", "_gauss", "_bit_generator")

    def __init__(self, rng: random.Random) -> None:
        if not HAVE_NUMPY:
            raise RuntimeError("WordStream requires numpy (install repro[fast])")
        self._rng = rng
        state = rng.getstate()
        self._version = state[0]
        internal = state[1]
        if self._version != 3 or len(internal) != _MT_N + 1:
            raise RuntimeError(
                f"unsupported random.Random state format "
                f"(version={self._version}, len={len(internal)})"
            )
        self._key = internal[:-1]
        self._pos = internal[-1]
        # gauss_next is carried through untouched: the workload never
        # draws gauss, but a third party might have, and dropping the
        # cached value would desynchronise it.
        self._gauss = state[2]
        self._bit_generator = _transplant(self._key, self._pos)

    def raw(self, count: int):
        """The next ``count`` output words as a uint64 ndarray."""
        return self._bit_generator.random_raw(count)

    def sync_back(self, consumed: int) -> None:
        """Advance the source ``Random`` to ``consumed`` words past the fork.

        ``consumed`` may be any value covered by :meth:`raw` calls so
        far (typically less: the tail of the last buffer was fetched but
        never used). Replays the fork state forward rather than trusting
        the serving generator's position, so over-fetch is free.
        """
        bit_generator = _transplant(self._key, self._pos)
        if consumed:
            bit_generator.random_raw(consumed)
        state = bit_generator.state["state"]
        internal = tuple(int(word) for word in state["key"]) + (int(state["pos"]),)
        self._rng.setstate((self._version, internal, self._gauss))
