"""Parallel experiment fan-out across processes.

Every experiment in this repository is a *matrix* of independent
simulations: one (config, app) cell per paper data point, each fully
determined by its :class:`~repro.sim.config.SimConfig` (including its
seed). That independence makes the fan-out embarrassingly parallel —
and, more importantly, makes the parallel results **bit-identical** to
serial ones: a worker process builds its system from the pickled config
exactly as the serial path would, so every RNG stream and statistic is
reproduced exactly. Only wall-clock time changes.

Job-count resolution, in priority order:

1. an explicit ``jobs=N`` argument,
2. :func:`set_default_jobs` (the ``repro-sim --jobs N`` CLI flag),
3. the ``REPRO_JOBS`` environment variable (``auto`` or ``0`` means
   one job per CPU),
4. serial (``jobs=1``).

``jobs=1`` never spawns processes: the same worker function runs inline,
so the serial path *is* the parallel path minus the pool, and there is
no separate code path to drift.
"""

from __future__ import annotations

import multiprocessing
import os
from typing import Callable, Iterable, List, NamedTuple, Optional, Sequence, TypeVar

from repro.sim.config import SimConfig
from repro.sim.stats import SimStats
from repro.sim.system import build_system
from repro.sim.engine import run_simulation
from repro.workloads import get_profile

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV_VAR = "REPRO_JOBS"

_default_jobs: Optional[int] = None


class SimTask(NamedTuple):
    """One cell of an experiment matrix: run ``app`` under ``config``."""

    config: SimConfig
    app: str


def run_simulation_task(task: SimTask) -> SimStats:
    """Build, run and return the statistics of one task.

    Module-level (and argument-picklable) so a multiprocessing pool can
    ship it to workers; also the serial path's worker, so both paths run
    byte-for-byte the same code.
    """
    system = build_system(task.config, get_profile(task.app))
    run_simulation(system)
    return system.stats


def parse_jobs(value: Optional[str]) -> int:
    """Interpret a ``--jobs`` / ``REPRO_JOBS`` value.

    ``None``/empty means serial; ``auto`` or ``0`` means one job per
    available CPU; anything else must be a positive integer.
    """
    if value is None or value == "":
        return 1
    text = str(value).strip().lower()
    if text in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        jobs = int(text)
    except ValueError:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {value!r}") from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {value!r}")
    return jobs


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default job count (``None`` restores env/serial)."""
    global _default_jobs
    _default_jobs = jobs


def default_jobs() -> int:
    """The job count used when a call site passes ``jobs=None``."""
    if _default_jobs is not None:
        return _default_jobs
    return parse_jobs(os.environ.get(JOBS_ENV_VAR))


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: Optional[int] = None
) -> List[R]:
    """Apply ``fn`` to every item, preserving input order in the result.

    ``fn`` and the items must be picklable when ``jobs > 1`` (``fn`` at
    module level, items built from plain data). Work is distributed over
    a process pool; results come back in input order regardless of
    completion order, so callers can zip them against their task lists.
    """
    items = list(items)
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(items))) if items else 1
    if jobs == 1:
        return [fn(item) for item in items]
    with multiprocessing.get_context().Pool(processes=jobs) as pool:
        return pool.map(fn, items)


def run_matrix(tasks: Sequence[SimTask], jobs: Optional[int] = None) -> List[SimStats]:
    """Run an experiment matrix; results align index-for-index with tasks."""
    return parallel_map(run_simulation_task, tasks, jobs=jobs)
