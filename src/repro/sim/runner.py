"""Parallel experiment fan-out across processes.

Every experiment in this repository is a *matrix* of independent
simulations: one (config, app) cell per paper data point, each fully
determined by its :class:`~repro.sim.config.SimConfig` (including its
seed). That independence makes the fan-out embarrassingly parallel —
and, more importantly, makes the parallel results **bit-identical** to
serial ones: a worker process builds its system from the pickled config
exactly as the serial path would, so every RNG stream and statistic is
reproduced exactly. Only wall-clock time changes.

Job-count resolution, in priority order:

1. an explicit ``jobs=N`` argument,
2. :func:`set_default_jobs` (the ``repro-sim --jobs N`` CLI flag),
3. the ``REPRO_JOBS`` environment variable (``auto`` or ``0`` means
   one job per CPU),
4. serial (``jobs=1``).

``jobs=1`` never spawns processes: the same worker function runs inline,
so the serial path *is* the parallel path minus the pool, and there is
no separate code path to drift.

Fault tolerance and campaigns
-----------------------------

:func:`run_matrix_detailed` is the fault-tolerant executor underneath
:func:`run_matrix`. Each cell runs in its own worker process with its
exceptions captured (a crash in one cell never discards the others),
optional per-cell retries and a wall-clock timeout, and the whole matrix
survives Ctrl-C: workers are terminated and the completed cells are
returned via :class:`CampaignInterrupted`.

With ``checkpoint_dir`` set, every completed cell is persisted as JSON
keyed by a stable hash of its (config, app) pair, so re-running the same
matrix skips the already-done cells — and, because the JSON round trip
through :meth:`SimStats.to_dict` is lossless, a resumed matrix is
bit-identical to an uninterrupted serial run. A ``manifest-*.json``
per matrix records what ran: tasks, seeds, job count, git revision,
per-cell wall-clock and µs/access, and failures. The campaign directory
defaults to the ``REPRO_CAMPAIGN_DIR`` environment variable, or to the
:func:`set_campaign` settings installed by ``repro-sim experiment
--out/--resume/--retries/--task-timeout``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import pickle
import subprocess
import sys
import time
import traceback
from collections import deque
from enum import Enum
from functools import partial
from multiprocessing import connection
from pathlib import Path
from typing import (
    Callable,
    Iterable,
    List,
    NamedTuple,
    Optional,
    Sequence,
    TypeVar,
)

from repro.sim.config import SimConfig
from repro.sim.stats import SimStats
from repro.sim.system import SnapshotMismatch, build_system
from repro.sim.kernel import engine_for
from repro.store import get_store, snapshots_enabled
from repro.workloads import get_profile

T = TypeVar("T")
R = TypeVar("R")

JOBS_ENV_VAR = "REPRO_JOBS"
CAMPAIGN_ENV_VAR = "REPRO_CAMPAIGN_DIR"
MANIFEST_FORMAT = 1
CHECKPOINT_FORMAT = 1

_default_jobs: Optional[int] = None


class SimTask(NamedTuple):
    """One cell of an experiment matrix: run ``app`` under ``config``."""

    config: SimConfig
    app: str


# Engine diagnostics of the most recent run_simulation_task call in this
# process — a side channel because SimStats is byte-identical across
# kernels by contract and cannot carry kernel-specific counters. The
# executors pop it (consume_diagnostics) right after the task function
# returns, in the same process that ran the cell.
_last_diagnostics: Optional[dict] = None


def consume_diagnostics() -> Optional[dict]:
    """Pop the diagnostics left behind by the last cell run here."""
    global _last_diagnostics
    diagnostics = _last_diagnostics
    _last_diagnostics = None
    return diagnostics


def run_simulation_task(task: SimTask) -> SimStats:
    """Build, run and return the statistics of one task.

    Module-level (and argument-picklable) so a multiprocessing pool can
    ship it to workers; also the serial path's worker, so both paths run
    byte-for-byte the same code.

    Reuse, when a :mod:`repro.store` is configured (the default):

    * a stored **result** for this exact cell is returned directly;
    * otherwise a stored **warm-state snapshot** for the cell's warmup
      fingerprint replaces the warm-up phase (and a fresh warm-up is
      snapshotted for the next cell sharing the fingerprint).

    Both substitutions are bit-identical by construction — the result
    round-trips losslessly through ``SimStats.to_dict``, and the
    snapshot-differential tests prove restored ≡ straight for every
    policy. Sanitized runs never *consume* snapshots (the sanitizer's
    shadow state is built by observing the warm-up, which a restore
    skips) but still produce them — the architectural state is
    unaffected by the pure-observer sanitizer.
    """
    # Safe under parallel_map: the side channel is written and consumed
    # in the same process — _detailed_child pops it before the worker
    # sends its result over the pipe, and the serial path pops it right
    # after task_fn returns — and it is reset here at cell entry, so
    # nothing leaks across cells on either path.
    global _last_diagnostics  # repro-lint: disable=RPL130; same-process side channel, popped per cell
    _last_diagnostics = None
    store = get_store()
    if store is not None:
        stats = store.load_result(
            task_key(task), task.app, config_to_dict(task.config)
        )
        if stats is not None:
            return stats
    system, engine, clocks = prepare_task(task)
    engine.measure(clocks)
    stats = system.stats
    summary_fn = getattr(engine, "bulk_summary", None)
    if summary_fn is not None:
        _last_diagnostics = summary_fn()
    if store is not None:
        store.save_result(
            task_key(task), task.app, config_to_dict(task.config), stats
        )
    return stats


def prepare_task(task: SimTask):
    """Build a system and bring it to the measurement boundary.

    Returns ``(system, engine, clocks)`` with the warm-up done — served
    from a stored warm-state snapshot when one matches the task's warmup
    fingerprint, run (and snapshotted for the next sharer) otherwise.
    Callers that need the live system (tracing, sanitizing, profiling)
    use this directly and then run ``engine.measure(clocks)``;
    :func:`run_simulation_task` adds the result-store layer on top.
    """
    store = get_store()
    system = build_system(task.config, get_profile(task.app))
    engine = engine_for(system)
    clocks = None
    fingerprint_key = fingerprint = None
    if (
        store is not None
        and snapshots_enabled()
        and task.config.warmup_accesses_per_vcpu > 0
    ):
        fingerprint_key, fingerprint = warmup_fingerprint(task)
        if not task.config.sanitize:
            state = store.load_snapshot(fingerprint_key, task.app, fingerprint)
            if state is not None:
                try:
                    clocks = engine.restore_warm(state)
                except SnapshotMismatch as exc:
                    # Raised before any mutation: warming this system is
                    # still safe. Convert the hit to a loud skip.
                    store.snapshot_hits -= 1
                    store.snapshot_skipped += 1
                    print(
                        f"[repro.store] skipping snapshot {fingerprint_key}: {exc}",
                        file=sys.stderr,
                    )
                except Exception as exc:
                    # Mutation-phase failure (malformed plain data): the
                    # system may be half-restored, so rebuild it.
                    store.snapshot_hits -= 1
                    store.snapshot_skipped += 1
                    print(
                        f"[repro.store] skipping snapshot {fingerprint_key}: "
                        f"restore failed ({exc.__class__.__name__}: {exc})",
                        file=sys.stderr,
                    )
                    system = build_system(task.config, get_profile(task.app))
                    engine = engine_for(system)
                    clocks = None
    if clocks is None:
        clocks = engine.warm()
        if fingerprint_key is not None:
            store.save_snapshot(
                fingerprint_key, task.app, fingerprint, system.snapshot(clocks)
            )
    return system, engine, clocks


def parse_jobs(value: Optional[str]) -> int:
    """Interpret a ``--jobs`` / ``REPRO_JOBS`` value.

    ``None``/empty means serial; ``auto`` or ``0`` means one job per
    available CPU; anything else must be a positive integer.
    """
    if value is None or value == "":
        return 1
    text = str(value).strip().lower()
    if text in ("auto", "0"):
        return os.cpu_count() or 1
    try:
        jobs = int(text)
    except ValueError:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {value!r}") from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 or 'auto', got {value!r}")
    return jobs


def set_default_jobs(jobs: Optional[int]) -> None:
    """Set the process-wide default job count (``None`` restores env/serial)."""
    global _default_jobs
    _default_jobs = jobs


def default_jobs() -> int:
    """The job count used when a call site passes ``jobs=None``."""
    if _default_jobs is not None:
        return _default_jobs
    return parse_jobs(os.environ.get(JOBS_ENV_VAR))


# ----------------------------------------------------------------------
# Campaign settings (checkpoint directory, retries, timeout).
# ----------------------------------------------------------------------


@dataclasses.dataclass(frozen=True)
class CampaignSettings:
    """Process-wide defaults applied when a matrix call omits them."""

    checkpoint_dir: Optional[str] = None
    retries: int = 0
    task_timeout: Optional[float] = None
    progress: bool = False


_campaign: Optional[CampaignSettings] = None


def set_campaign(settings: Optional[CampaignSettings]) -> None:
    """Install campaign defaults (``None`` restores env-derived defaults)."""
    global _campaign
    _campaign = settings


def campaign_settings() -> CampaignSettings:
    """The campaign defaults in effect for ``run_matrix*`` calls."""
    if _campaign is not None:
        return _campaign
    env_dir = os.environ.get(CAMPAIGN_ENV_VAR) or None
    return CampaignSettings(checkpoint_dir=env_dir)


# ----------------------------------------------------------------------
# Errors and per-task results.
# ----------------------------------------------------------------------


class WorkerError(RuntimeError):
    """A :func:`parallel_map` item failed; identifies which one.

    ``index`` is the position in the input iterable, ``item`` the input
    itself; the original exception is chained as ``__cause__`` when it
    survived pickling back from the worker.
    """

    def __init__(self, index: int, item: object, message: str) -> None:
        super().__init__(message)
        self.index = index
        self.item = item


class TaskError(RuntimeError):
    """A :func:`run_matrix` cell failed; carries the failing TaskResult."""

    def __init__(self, result: "TaskResult") -> None:
        task = result.task
        super().__init__(
            f"simulation task {result.index} (app={task.app!r}, "
            f"policy={task.config.snoop_policy.value}, "
            f"seed={task.config.seed}) failed after "
            f"{result.attempts} attempt(s):\n{result.error}"
        )
        self.result = result
        self.task = task
        self.index = result.index


class CampaignInterrupted(KeyboardInterrupt):
    """Ctrl-C during a matrix; ``results`` holds the partial outcome.

    Subclasses :class:`KeyboardInterrupt` so existing ``except
    KeyboardInterrupt`` handlers (and the default traceback-and-exit)
    still apply; cells not finished carry an ``interrupted`` error.
    """

    def __init__(self, results: List["TaskResult"]) -> None:
        done = sum(1 for r in results if r.ok)
        super().__init__(f"campaign interrupted with {done}/{len(results)} cells done")
        self.results = results


class TaskResult(NamedTuple):
    """Outcome of one matrix cell, successful or not."""

    index: int
    task: SimTask
    stats: Optional[SimStats]
    error: Optional[str]  # traceback / reason text; None on success
    attempts: int
    wall_seconds: float
    from_checkpoint: bool
    # Served by the cross-run result store (repro.store) without running.
    from_store: bool = False
    # Engine-side diagnostics that must never live on SimStats (results
    # stay byte-identical across kernels by contract): currently the
    # batched kernel's bulk-miss seam summary. None when the cell was
    # replayed from checkpoint/store or ran on the reference engine.
    diagnostics: Optional[dict] = None

    @property
    def ok(self) -> bool:
        return self.error is None and self.stats is not None


# ----------------------------------------------------------------------
# Stable task identity (checkpoint keys).
# ----------------------------------------------------------------------


def config_to_dict(config: SimConfig) -> dict:
    """A JSON-serializable dict of every config field (enums by value)."""
    out = {}
    for field in dataclasses.fields(config):
        value = getattr(config, field.name)
        out[field.name] = value.value if isinstance(value, Enum) else value
    return out


def task_key(task: SimTask) -> str:
    """Stable content hash of one (config, app) cell.

    The key depends only on field values — not on object identity or
    field declaration order — so the same logical cell maps to the same
    checkpoint file across processes, sessions and matrices.
    """
    payload = {"app": task.app, "config": config_to_dict(task.config)}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


WARMUP_INERT_FIELDS = frozenset(
    {
        # Migrations are disabled during warm-up; the measured-phase
        # schedule is recomputed from the post-warm-up clocks.
        "migration_period_ms",
        # Measured-phase budget only (the workload coverage cap uses the
        # *warm-up* budget, which stays in the fingerprint).
        "accesses_per_vcpu",
        # Observability begins at the measurement boundary and its
        # observers never perturb architectural state or RNG draws.
        "trace",
        "trace_format",
        "metrics_sample_every",
        # The sanitizer is a pure observer too; sanitized runs are
        # instead barred from *consuming* snapshots (their shadow state
        # must observe the warm-up), see run_simulation_task.
        "sanitize",
        "sanitize_mode",
        # Kernel choice is bit-identical by construction (the batched
        # kernel's whole contract), so warm snapshots are interchangeable
        # across kernels — a differential run warms once and forks.
        "kernel",
    }
)
"""Config fields provably inert before measurement begins.

Everything else — policies, thresholds, cache geometry, seeds, VM
shapes, the warm-up budget itself — changes the post-warm-up state and
stays in the fingerprint. Per-field rationale lives in DESIGN.md's
reuse-layer section; when in doubt, leave a field in the fingerprint
(a too-wide fingerprint only costs redundant warm-ups, a too-narrow one
serves wrong state).
"""


def warmup_fingerprint(task: SimTask) -> tuple:
    """(key, payload) identifying the post-warm-up state of a cell.

    Two cells differing only in :data:`WARMUP_INERT_FIELDS` share a
    fingerprint, so a period sweep (or an observability re-run) warms
    once and forks. Hashed exactly like :func:`task_key`.
    """
    fingerprint = {
        name: value
        for name, value in config_to_dict(task.config).items()
        if name not in WARMUP_INERT_FIELDS
    }
    payload = {"app": task.app, "warmup_config": fingerprint}
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16], fingerprint


# ----------------------------------------------------------------------
# parallel_map — generic order-preserving fan-out.
# ----------------------------------------------------------------------


class _WorkerFailure(NamedTuple):
    """In-band failure marker returned by a worker instead of a result."""

    index: int
    error: Optional[BaseException]
    traceback_text: str


def _call_indexed(fn, pair):
    """Run ``fn`` on one (index, item) pair, capturing any exception.

    The failure travels back as a value so the parent learns *which*
    task failed instead of an opaque remote traceback; the exception
    object rides along when it pickles, for ``raise ... from`` chaining.
    """
    index, item = pair
    try:
        return fn(item)
    except Exception as exc:
        text = traceback.format_exc()
        try:
            pickle.dumps(exc)
        except Exception:
            exc = None
        return _WorkerFailure(index, exc, text)


def _raise_first_failure(results: Sequence[object], items: Sequence[object]) -> None:
    for res in results:
        if isinstance(res, _WorkerFailure):
            item_text = repr(items[res.index])
            if len(item_text) > 200:
                item_text = item_text[:200] + "..."
            raise WorkerError(
                res.index,
                items[res.index],
                f"parallel task {res.index} ({item_text}) failed:\n"
                f"{res.traceback_text}",
            ) from res.error


def parallel_map(
    fn: Callable[[T], R], items: Iterable[T], jobs: Optional[int] = None
) -> List[R]:
    """Apply ``fn`` to every item, preserving input order in the result.

    ``fn`` and the items must be picklable when ``jobs > 1`` (``fn`` at
    module level, items built from plain data). Work is distributed over
    a process pool; results come back in input order regardless of
    completion order, so callers can zip them against their task lists.

    A failing item raises :class:`WorkerError` naming its index and item
    (identically at any job count, the serial path included), with the
    worker's exception chained. Ctrl-C terminates the pool instead of
    leaving workers joining indefinitely.
    """
    items = list(items)
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(items))) if items else 1
    wrapped = partial(_call_indexed, fn)
    if jobs == 1:
        results = [wrapped(pair) for pair in enumerate(items)]
        _raise_first_failure(results, items)
        return results
    pool = multiprocessing.get_context().Pool(processes=jobs)
    try:
        results = pool.map(wrapped, list(enumerate(items)))
    except KeyboardInterrupt:
        pool.terminate()
        pool.join()
        raise
    else:
        pool.close()
        pool.join()
    _raise_first_failure(results, items)
    return results


# ----------------------------------------------------------------------
# Checkpoint persistence.
# ----------------------------------------------------------------------


def _checkpoint_path(checkpoint_dir: Path, key: str) -> Path:
    return checkpoint_dir / f"{key}.json"


def _save_checkpoint(path: Path, task: SimTask, key: str, stats: SimStats) -> None:
    payload = {
        "format": CHECKPOINT_FORMAT,
        "key": key,
        "app": task.app,
        "config": config_to_dict(task.config),
        "stats": stats.to_dict(),
    }
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, sort_keys=True) + "\n")
    os.replace(tmp, path)


def _load_checkpoint(path: Path, key: str) -> Optional[SimStats]:
    """The persisted stats of one cell, or None when absent/corrupt.

    A checkpoint that fails to parse (truncated write, format drift, key
    mismatch) is treated as missing — the cell simply reruns.
    """
    try:
        payload = json.loads(path.read_text())
        if payload.get("format") != CHECKPOINT_FORMAT or payload.get("key") != key:
            return None
        return SimStats.from_dict(payload["stats"])
    except (OSError, ValueError, KeyError, TypeError):
        return None


# ----------------------------------------------------------------------
# Run manifest.
# ----------------------------------------------------------------------


def _git_revision() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def _manifest_entry(result: TaskResult, key: str) -> dict:
    task = result.task
    us_per_access = None
    reused = result.from_checkpoint or result.from_store
    if result.stats is not None and result.stats.l1_accesses and not reused:
        us_per_access = round(1e6 * result.wall_seconds / result.stats.l1_accesses, 3)
    entry = {
        "key": key,
        "index": result.index,
        "app": task.app,
        "policy": task.config.snoop_policy.value,
        "content_policy": task.config.content_policy.value,
        "filter": task.config.filter_kind,
        "topology": task.config.topology,
        "num_cores": task.config.num_cores,
        "num_vms": task.config.num_vms,
        "migration_period_ms": task.config.migration_period_ms,
        "seed": task.config.seed,
        "ok": result.ok,
        "from_checkpoint": result.from_checkpoint,
        "from_store": result.from_store,
        "attempts": result.attempts,
        "wall_seconds": round(result.wall_seconds, 3),
        "us_per_access": us_per_access,
        "error": result.error,
    }
    if result.stats is not None:
        stats = result.stats
        # Consolidation-study scaling columns: how big the snoop maps
        # grew and what fraction of the broadcast snoops the filter
        # saved, per cell.
        if stats.snoop_map_sizes:
            sizes = stats.snoop_map_sizes.values()
            entry["snoop_map_avg_size"] = round(sum(sizes) / len(sizes), 3)
        if stats.coherence.transactions:
            # Same baseline convention as normalized_snoops_percent: a
            # broadcast protocol snoops every core on every transaction.
            broadcast_snoops = task.config.num_cores * stats.coherence.transactions
            entry["filtered_snoop_fraction"] = round(
                1.0 - stats.coherence.snoops / broadcast_snoops, 6
            )
    # Cells that ran on the batched kernel carry its bulk-miss seam
    # summary (inline transactions + per-reason bail-out histogram) —
    # engine diagnostics that by contract never appear in SimStats.
    if result.diagnostics:
        entry["kernel_bulk"] = result.diagnostics
    # Cells run with a metrics recorder carry their time-series into the
    # manifest, so a campaign's temporal behaviour (Figures 7-9) is
    # inspectable without re-running anything.
    if result.stats is not None and result.stats.metrics is not None:
        entry["metrics"] = result.stats.metrics.to_dict()
    return entry


def _write_manifest(
    checkpoint_dir: Path,
    label: Optional[str],
    results: Sequence[TaskResult],
    keys: Sequence[str],
    jobs: int,
    interrupted: bool,
) -> Path:
    """Persist what this matrix ran; named by label or matrix digest."""
    if label is None:
        digest = hashlib.sha256("".join(keys).encode("utf-8")).hexdigest()[:8]
        name = f"manifest-{digest}.json"
    else:
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in label)
        name = f"manifest-{safe}.json"
    entries = [_manifest_entry(res, key) for res, key in zip(results, keys)]
    store = get_store()
    payload = {
        "format": MANIFEST_FORMAT,
        "label": label,
        "written": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "git_rev": _git_revision(),
        "jobs": jobs,
        "interrupted": interrupted,
        "totals": {
            "tasks": len(entries),
            "ok": sum(1 for e in entries if e["ok"]),
            "failed": sum(1 for e in entries if not e["ok"]),
            "from_checkpoint": sum(1 for e in entries if e["from_checkpoint"]),
            "from_store": sum(1 for e in entries if e["from_store"]),
            "wall_seconds": round(sum(e["wall_seconds"] for e in entries), 3),
        },
        # Parent-process store traffic (worker-side hits happen in their
        # own processes and are not aggregated here).
        "store": store.counters() if store is not None else None,
        "failures": [e["key"] for e in entries if not e["ok"]],
        "tasks": entries,
    }
    path = checkpoint_dir / name
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    os.replace(tmp, path)
    return path


# ----------------------------------------------------------------------
# Heartbeat progress.
# ----------------------------------------------------------------------


class _Progress:
    """Rate-limited done/total + ETA lines on stderr."""

    def __init__(
        self,
        total: int,
        resumed: int,
        enabled: bool,
        label: Optional[str],
        min_interval: float = 2.0,
    ) -> None:
        self.total = total
        self.done = resumed
        self.resumed = resumed
        self.failed = 0
        self.enabled = enabled
        self.prefix = f"[campaign:{label}]" if label else "[campaign]"
        self.min_interval = min_interval
        self.start = time.monotonic()  # repro-lint: disable=RPL004; progress ETA only
        self.last_emit = 0.0
        if enabled and resumed:
            print(
                f"{self.prefix} resumed {resumed}/{total} cells from checkpoints",
                file=sys.stderr,
            )

    def completed(self, result: TaskResult) -> None:
        self.done += 1
        if not result.ok:
            self.failed += 1
        if not self.enabled:
            return
        now = time.monotonic()  # repro-lint: disable=RPL004; progress ETA only
        if self.done < self.total and now - self.last_emit < self.min_interval:
            return
        self.last_emit = now
        elapsed = now - self.start
        fresh = self.done - self.resumed
        if fresh > 0 and self.done < self.total:
            eta = f", eta {elapsed / fresh * (self.total - self.done):.0f}s"
        else:
            eta = ""
        failed = f", {self.failed} failed" if self.failed else ""
        print(
            f"{self.prefix} {self.done}/{self.total} done{failed}, "
            f"{elapsed:.0f}s elapsed{eta}",
            file=sys.stderr,
        )


# ----------------------------------------------------------------------
# The fault-tolerant executor.
# ----------------------------------------------------------------------


def _detailed_child(conn, task_fn, index, task, retries):
    """Child-process body: run one cell with retries, report over the pipe."""
    start = time.perf_counter()  # repro-lint: disable=RPL004; cell runtime metric
    error = None
    attempts = 0
    for attempt in range(1, max(retries, 0) + 2):
        attempts = attempt
        try:
            stats = task_fn(task)
        except Exception:
            error = traceback.format_exc()
        else:
            conn.send((index, stats, None, attempts, time.perf_counter() - start, consume_diagnostics()))  # repro-lint: disable=RPL004; cell runtime metric
            conn.close()
            return
    conn.send((index, None, error, attempts, time.perf_counter() - start, None))  # repro-lint: disable=RPL004; cell runtime metric
    conn.close()


def _run_serial(tasks, indices, task_fn, retries, on_complete):
    """Inline execution; identical capture semantics, no processes.

    ``KeyboardInterrupt`` propagates to the caller after the completed
    cells have been reported (and therefore checkpointed).
    """
    for i in indices:
        start = time.perf_counter()  # repro-lint: disable=RPL004; cell runtime metric
        stats = None
        error = None
        attempts = 0
        for attempt in range(1, max(retries, 0) + 2):
            attempts = attempt
            try:
                stats = task_fn(tasks[i])
            except KeyboardInterrupt:
                raise
            except Exception:
                error = traceback.format_exc()
            else:
                error = None
                break
        on_complete(
            TaskResult(
                i,
                tasks[i],
                stats,
                error,
                attempts,
                time.perf_counter() - start,  # repro-lint: disable=RPL004; cell runtime metric
                False,
                diagnostics=consume_diagnostics() if error is None else None,
            )
        )


def _run_parallel(tasks, indices, jobs, task_fn, retries, task_timeout, on_complete):
    """One worker process per cell, at most ``jobs`` alive at a time.

    Process-per-task (rather than a shared pool) is what makes the
    guarantees enforceable: a cell that exceeds ``task_timeout`` is
    terminated without disturbing its siblings, a worker that dies
    abruptly is detected through pipe EOF + exit code, and Ctrl-C
    terminates exactly the processes still running.
    """
    ctx = multiprocessing.get_context()
    queue = deque(indices)
    running = {}  # index -> (process, parent_conn, monotonic start)
    try:
        while queue or running:
            while queue and len(running) < jobs:
                i = queue.popleft()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_detailed_child,
                    args=(child_conn, task_fn, i, tasks[i], retries),
                )
                proc.start()
                child_conn.close()
                running[i] = (proc, parent_conn, time.monotonic())  # repro-lint: disable=RPL004; stall watchdog
            by_conn = {conn: i for i, (_, conn, _) in running.items()}
            ready = connection.wait(list(by_conn), timeout=0.25)
            now = time.monotonic()  # repro-lint: disable=RPL004; stall watchdog
            for conn in ready:
                i = by_conn[conn]
                proc, _, started = running.pop(i)
                try:
                    _, stats, error, attempts, wall, diagnostics = conn.recv()
                except EOFError:
                    proc.join()
                    on_complete(
                        TaskResult(
                            i,
                            tasks[i],
                            None,
                            "worker died before reporting a result "
                            f"(exit code {proc.exitcode})",
                            1,
                            now - started,
                            False,
                        )
                    )
                else:
                    proc.join()
                    on_complete(
                        TaskResult(
                            i, tasks[i], stats, error, attempts, wall, False,
                            diagnostics=diagnostics,
                        )
                    )
                finally:
                    conn.close()
            if task_timeout is not None:
                for i, (proc, conn, started) in list(running.items()):
                    if now - started >= task_timeout:
                        proc.terminate()
                        proc.join()
                        conn.close()
                        del running[i]
                        on_complete(
                            TaskResult(
                                i,
                                tasks[i],
                                None,
                                f"timed out after {task_timeout:g}s",
                                1,
                                now - started,
                                False,
                            )
                        )
    except BaseException:
        for proc, _, _ in running.values():
            proc.terminate()
        for proc, conn, _ in running.values():
            proc.join()
            conn.close()
        raise


def run_matrix_detailed(
    tasks: Sequence[SimTask],
    jobs: Optional[int] = None,
    *,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    label: Optional[str] = None,
    task_fn: Callable[[SimTask], SimStats] = run_simulation_task,
    progress: Optional[bool] = None,
) -> List[TaskResult]:
    """Run a matrix with per-cell fault isolation; never loses a cell.

    Returns one :class:`TaskResult` per task, index-aligned. A cell that
    raises (or whose worker dies, or exceeds ``task_timeout``) yields a
    result with ``error`` set while every other cell completes normally.
    ``retries`` reruns a failing cell in place before recording it.

    With ``checkpoint_dir``, completed cells are persisted as JSON and
    skipped on the next run (``from_checkpoint=True``), and a manifest
    is written when the matrix finishes — or is interrupted, in which
    case :class:`CampaignInterrupted` carries the partial results.

    ``task_timeout`` needs worker processes to enforce, so it is ignored
    on the inline ``jobs=1`` path.
    """
    tasks = list(tasks)
    settings = campaign_settings()
    if checkpoint_dir is None:
        checkpoint_dir = settings.checkpoint_dir
    if retries is None:
        retries = settings.retries
    if task_timeout is None:
        task_timeout = settings.task_timeout
    if progress is None:
        progress = settings.progress
    if jobs is None:
        jobs = default_jobs()
    jobs = max(1, min(jobs, len(tasks))) if tasks else 1

    keys = [task_key(task) for task in tasks]
    results: List[Optional[TaskResult]] = [None] * len(tasks)
    ckpt = Path(checkpoint_dir) if checkpoint_dir else None
    # The store holds run_simulation_task results; a custom task_fn
    # computes something else under the same keys, so never serve it
    # store entries (checkpoints are per-campaign and stay the caller's
    # responsibility to scope).
    store = get_store() if task_fn is run_simulation_task else None
    to_run: List[int] = []
    if ckpt is not None or store is not None:
        if ckpt is not None:
            ckpt.mkdir(parents=True, exist_ok=True)
        for i, task in enumerate(tasks):
            stats = None
            from_checkpoint = from_store = False
            if ckpt is not None:
                stats = _load_checkpoint(_checkpoint_path(ckpt, keys[i]), keys[i])
                from_checkpoint = stats is not None
            if stats is None and store is not None:
                stats = store.load_result(
                    keys[i], task.app, config_to_dict(task.config)
                )
                from_store = stats is not None
            if stats is None:
                to_run.append(i)
                continue
            # Promote each way so the next consumer finds it closer:
            # a store hit seeds this campaign's checkpoints, a resumed
            # checkpoint seeds the store for every other campaign.
            if from_store and ckpt is not None:
                _save_checkpoint(
                    _checkpoint_path(ckpt, keys[i]), task, keys[i], stats
                )
            if from_checkpoint and store is not None and not store.has_result(keys[i]):
                store.save_result(
                    keys[i], task.app, config_to_dict(task.config), stats
                )
            results[i] = TaskResult(
                i, task, stats, None, 0, 0.0, from_checkpoint, from_store
            )
    else:
        to_run = list(range(len(tasks)))

    reporter = _Progress(
        total=len(tasks),
        resumed=len(tasks) - len(to_run),
        enabled=bool(progress),
        label=label,
    )

    def on_complete(result: TaskResult) -> None:
        if result.ok and ckpt is not None:
            _save_checkpoint(
                _checkpoint_path(ckpt, keys[result.index]),
                result.task,
                keys[result.index],
                result.stats,
            )
        results[result.index] = result
        reporter.completed(result)

    try:
        if jobs == 1:
            _run_serial(tasks, to_run, task_fn, retries, on_complete)
        else:
            _run_parallel(tasks, to_run, jobs, task_fn, retries, task_timeout, on_complete)
    except KeyboardInterrupt:
        partial = [
            res
            if res is not None
            else TaskResult(i, tasks[i], None, "interrupted before completion", 0, 0.0, False)
            for i, res in enumerate(results)
        ]
        if ckpt is not None:
            _write_manifest(ckpt, label, partial, keys, jobs, interrupted=True)
        raise CampaignInterrupted(partial) from None

    final = [res for res in results if res is not None]
    assert len(final) == len(tasks), "executor lost a cell"
    if ckpt is not None:
        _write_manifest(ckpt, label, final, keys, jobs, interrupted=False)
    return final


def run_matrix(
    tasks: Sequence[SimTask],
    jobs: Optional[int] = None,
    *,
    retries: Optional[int] = None,
    task_timeout: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
    label: Optional[str] = None,
) -> List[SimStats]:
    """Run an experiment matrix; results align index-for-index with tasks.

    Built on :func:`run_matrix_detailed`, so checkpointing, retries and
    interrupt handling apply; a cell that still fails raises
    :class:`TaskError` identifying the task (after every other cell has
    completed — and, with a checkpoint directory, been persisted).
    """
    detailed = run_matrix_detailed(
        tasks,
        jobs=jobs,
        retries=retries,
        task_timeout=task_timeout,
        checkpoint_dir=checkpoint_dir,
        label=label,
    )
    for result in detailed:
        if not result.ok:
            raise TaskError(result)
    return [result.stats for result in detailed]
