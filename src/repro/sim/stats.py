"""Simulation-level statistics.

Aggregates the protocol counters with engine-level measurements: L1
access / L2 miss decompositions by initiator (Figure 1) and by page type
(Table V), execution time (Figure 6), traffic (Table IV), migrations and
vCPU-map removals (Figures 7-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Dict, List, Optional

from repro.coherence.stats import CoherenceStats
from repro.mem.pagetype import PageType
from repro.obs.series import MetricsSeries
from repro.sanitizer.violation import SanitizerCheck
from repro.workloads.trace import Initiator

# Enum types keying the per-field dicts; serialized by enum value so the
# JSON round trip through to_dict/from_dict is lossless.
_ENUM_KEYED = {
    "l1_accesses_by_page_type": PageType,
    "transactions_by_initiator": Initiator,
}


@dataclass(slots=True)
class SimStats:
    """Counters gathered while an engine runs."""

    coherence: CoherenceStats = field(default_factory=CoherenceStats)
    l1_accesses: int = 0
    l1_accesses_by_page_type: Dict[PageType, int] = field(
        default_factory=lambda: {t: 0 for t in PageType}
    )
    transactions_by_initiator: Dict[Initiator, int] = field(
        default_factory=lambda: {i: 0 for i in Initiator}
    )
    cow_events: int = 0
    migrations: int = 0
    flush_writebacks: int = 0
    # Filled in at the end of a run.
    execution_cycles: int = 0
    network_bytes: int = 0
    network_messages: int = 0
    removal_periods_cycles: List[int] = field(default_factory=list)
    # Removals beyond the SnoopDomainTable's in-memory log cap on soak
    # runs; their periods are observable through the metrics recorder /
    # trace instead. 0 (and omitted from to_dict) on bounded runs.
    removal_periods_dropped: int = 0
    # Windowed time-series sampled by the opt-in metrics recorder. None
    # (and omitted from to_dict) unless config.metrics_sample_every set.
    metrics: Optional[MetricsSeries] = None
    # Violations recorded by the coherence sanitizer in counting mode,
    # keyed by check. Empty whenever the sanitizer is off (or clean), and
    # omitted from to_dict() in that case so sanitizer-less artifacts stay
    # bit-identical to earlier releases.
    sanitizer_violations: Dict[SanitizerCheck, int] = field(default_factory=dict)
    # Final snoop-map (vCPU map) size per VM at the end of the measured
    # phase — the consolidation study's scaling observable. Empty (and
    # omitted from to_dict) for filters without domain tables
    # (RegionScout).
    snoop_map_sizes: Dict[int, int] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Serialization — the JSON artifact one campaign cell persists.
    # ------------------------------------------------------------------

    def to_dict(self) -> dict:
        """Every field as JSON-serializable data.

        Enum-keyed dicts are keyed by enum value, the nested
        :class:`CoherenceStats` becomes a nested dict, and lists are
        copied; ``SimStats.from_dict(s.to_dict()) == s`` for any stats a
        simulation can produce.
        """
        out = {}
        for f in fields(self):
            value = getattr(self, f.name)
            if f.name == "coherence":
                out[f.name] = value.to_dict()
            elif f.name == "sanitizer_violations":
                if value:
                    out[f.name] = {check.value: count for check, count in value.items()}
            elif f.name == "metrics":
                # Omitted when absent (like the two cases above) so
                # artifacts from observability-less runs stay
                # bit-identical to earlier releases.
                if value is not None:
                    out[f.name] = value.to_dict()
            elif f.name == "removal_periods_dropped":
                if value:
                    out[f.name] = value
            elif f.name == "snoop_map_sizes":
                # Omitted when empty (RegionScout has no domain table);
                # the int VM-id keys become strings in the JSON artifact.
                if value:
                    out[f.name] = dict(value)
            elif f.name in _ENUM_KEYED:
                out[f.name] = {key.value: count for key, count in value.items()}
            elif isinstance(value, list):
                out[f.name] = list(value)
            else:
                out[f.name] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "SimStats":
        """Inverse of :meth:`to_dict`; rejects unknown keys loudly."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown SimStats fields: {sorted(unknown)}")
        kwargs = dict(data)
        if "coherence" in kwargs:
            kwargs["coherence"] = CoherenceStats.from_dict(kwargs["coherence"])
        if "sanitizer_violations" in kwargs:
            kwargs["sanitizer_violations"] = {
                SanitizerCheck(key): count
                for key, count in kwargs["sanitizer_violations"].items()
            }
        if "metrics" in kwargs and kwargs["metrics"] is not None:
            kwargs["metrics"] = MetricsSeries.from_dict(kwargs["metrics"])
        if "snoop_map_sizes" in kwargs:
            # JSON stringifies the int VM ids; undo that on the way in.
            kwargs["snoop_map_sizes"] = {
                int(vm): size for vm, size in kwargs["snoop_map_sizes"].items()
            }
        for name, enum_type in _ENUM_KEYED.items():
            if name in kwargs:
                kwargs[name] = {
                    enum_type(key): count for key, count in kwargs[name].items()
                }
        return cls(**kwargs)

    # ------------------------------------------------------------------
    # Derived metrics, named after the paper's figures.
    # ------------------------------------------------------------------

    @property
    def total_snoops(self) -> int:
        """Snoop tag lookups over all cores (Figures 7, 8, 10)."""
        return self.coherence.snoops

    @property
    def total_transactions(self) -> int:
        return self.coherence.transactions

    def snoops_per_transaction(self) -> float:
        if self.coherence.transactions == 0:
            return 0.0
        return self.coherence.snoops / self.coherence.transactions

    def miss_decomposition_by_initiator(self) -> Dict[Initiator, float]:
        """Figure 1: shares of coherence transactions per initiator."""
        total = sum(self.transactions_by_initiator.values())
        if total == 0:
            return {i: 0.0 for i in Initiator}
        return {
            i: count / total for i, count in self.transactions_by_initiator.items()
        }

    def l1_access_share(self, page_type: PageType) -> float:
        """Table V column 1: share of L1 accesses on ``page_type`` pages."""
        if self.l1_accesses == 0:
            return 0.0
        return self.l1_accesses_by_page_type[page_type] / self.l1_accesses

    def l2_miss_share(self, page_type: PageType) -> float:
        """Table V column 2: share of coherence transactions on ``page_type``."""
        if self.coherence.transactions == 0:
            return 0.0
        return (
            self.coherence.transactions_by_page_type[page_type]
            / self.coherence.transactions
        )

    def miss_rate(self) -> float:
        if self.l1_accesses == 0:
            return 0.0
        return self.coherence.transactions / self.l1_accesses
