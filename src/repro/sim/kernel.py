"""The batched fast-path simulation kernel.

:class:`BatchedEngine` replays the *exact* sequential semantics of
:meth:`repro.sim.engine.SimulationEngine._run_phase` — same heap order,
same RNG draw order, same mutation order, same counters — while removing
nearly every Python function call from the fast path (the L1/L2 hits
that dominate the access mix, per the paper's Figure 1 premise). It is
bit-identical to the reference loop *by construction*, and the golden
corpus, the snapshot differential suite and the kernel differential
tests prove it byte-for-byte.

Three generation paths, chosen per VM at phase start:

``word``   (:class:`~repro.sim.mtstream.WordStream`, NumPy present)
    The VM's ``random.Random`` is forked into a bulk MT19937 word
    stream. Each refill fetches a block of raw words and decodes it in
    two passes (:func:`_encode`): pass one resolves, vectorised across
    every word offset, the access that would start there — category,
    final write flag, the accepted hot-pool value of the rejection-
    sampling chain, and the offset the next access starts at; pass two
    walks the actual consumption chain from offset 0 and packs *only
    the visited lanes* into one int each. The access loop then does no
    draw arithmetic at all: read the next entry at a cursor, dispatch
    on the category, store the absolute next-access pointer. The float
    reconstruction ``((a >> 5) * 2**26 + (b >> 6)) / 2**53`` is exact
    in float64 (no rounding at any step), and the category is a sum of
    the same IEEE compares ``bisect_right`` performs, so every resolved
    value agrees with CPython bit-for-bit.

``chunk``  (workloads advertising ``stream_chunk_independent``)
    Trace-replay (and other pre-recorded) workloads materialise runs of
    accesses in bulk — natively via ``stream_chunk`` or through
    :func:`stream_chunk_shim` for workloads that only expose
    ``next_access``. The refill size is clamped once, up front, to the
    vCPU's remaining phase budget (so positions land exactly where the
    reference loop leaves them) and to the next coherence-visible
    deadline (migration window / metrics sample), so chunk bookkeeping
    and boundary bookkeeping fold into a single per-refill computation.

``step``   (fallback)
    The reference per-access stepper closures. This is the pure-Python
    path: still batched control flow, same micro-optimised loop body,
    just per-access generation. Used when NumPy is absent, when a pool
    is too large for the packed encoding, or for foreign workloads.

Every coherence-visible event — a miss, a non-silent store, an eviction,
COW, a migration window, a metrics sample — *bails out* to the same
reference machinery (``self._transact``, ``self._maybe_migrate``,
``metrics.sample``), so the sanitizer, the tracer and every observer see
an unchanged event stream. One exception, and only when no observer is
attached: the *bulk-miss seam* applies a same-VM private miss inline
when its first transient attempt provably succeeds against current
registry state and its replacement victim is clean and VM-local — the
seam replays the reference path's counter updates and state mutations
in their exact order, and everything else (shared/content pages,
contended blocks, dirty or cross-VM victims, retry ladders) still bails
to ``_transact``. A per-reason bail-out histogram
(``BatchedEngine.bail_reasons``) records why misses stayed on the
reference path; it lives on the engine, never on ``SimStats``, which
stays byte-identical across kernels by contract.

Stats-ordering invariant: the loop updates every counter in exactly the
order the reference loop does; the only rewrites are call-free
spellings of identical operations (``in`` + subscript for ``dict.get``,
``del d[k]; d[k] = v`` for the LRU touch, ``state.sharers == {core}``
for the len/in pair, hoisted geometry constants and per-core set lists,
the phase budget carried inside the heap tuples, and
``heapreplace``/local-min scheduling that provably pops the same
(time, seq) sequence as push-then-pop).
"""

from __future__ import annotations

import os
from functools import partial
from heapq import heapify, heappop, heapreplace
from typing import Dict, List, Optional, Tuple

from repro.cache.line import CacheLine
from repro.coherence.registry import MEMORY, BlockState
from repro.core.residence import UNTRACKED_VM, ResidenceTracker
from repro.hypervisor.vm import DOM0_VM_ID
from repro.interconnect.messages import MessageKind
from repro.mem.pagetype import PageType
from repro.sim.engine import SimulationEngine
from repro.sim.mtstream import HAVE_NUMPY, WordStream
from repro.sim.system import HYPERVISOR_SPACE, SimulatedSystem
from repro.workloads import generator
from repro.workloads.generator import VmWorkload
from repro.workloads.trace import Initiator

if HAVE_NUMPY:  # pragma: no branch
    import numpy as _np

# The packed encoding and the inlined cursor walks bake the 64-block
# page geometry in as literals; refuse to import against a drifted
# generator rather than silently diverge.
assert generator.BLOCKS_PER_PAGE == 64

# Environment override for SimConfig.kernel == "auto" (CI differential
# jobs force a kernel across a whole suite without touching configs).
_KERNEL_ENV = "REPRO_KERNEL"

# When set, every batched phase ends with a structural validation of
# all caches through the packed mirror (SetAssociativeCache.packed).
_VALIDATE_ENV = "REPRO_KERNEL_VALIDATE"

# Words fetched per WordStream refill. Each access consumes 4-8 words,
# so the default amortises one numpy encode + tolist over ~3k accesses.
# Overridable for tests that want refills landing on interesting edges.
_BLOCK_WORDS_ENV = "REPRO_KERNEL_BLOCK"
_DEFAULT_BLOCK_WORDS = 16384
_MIN_BLOCK_WORDS = 32

# Accesses per stream_chunk refill on the chunk path.
_CHUNK_ACCESSES = 256

# Packed-entry field widths of _encode (see layout there). Hot-pool
# draws are ``word >> (32 - bits)`` and pool sizes are coverage-capped,
# so 16 bits per pool is generous; VMs exceeding it fall back to the
# stepper path. The pointer field carries the *absolute* word offset the
# next access starts at, so buffers are capped at 2**_PTR_BITS words
# (enforced in _block_words; rejection chains long enough to outgrow a
# grown buffer have probability ~2**-500 per extra block).
_FIELD_BITS = 16
_PTR_BITS = 24
_PTR_MASK = (1 << _PTR_BITS) - 1
_RES_SHIFT = 4 + _PTR_BITS

_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53, as CPython's random()

# _pool goes dense (full-width scan) when at least one lane in this many
# is hot. The cutover is deliberately late: the dense scan is a few
# fixed O(m) passes while the walker pays per-round call overhead, so
# the walker only wins when a category is present but genuinely rare.
_DENSE_CUTOVER = 64

# Hypervisor/dom0 write fraction (a literal in the generator's stepper).
_HYP_WRITE_FRACTION = 0.2


def engine_for(system: SimulatedSystem) -> SimulationEngine:
    """The engine selected by ``config.kernel`` (and ``REPRO_KERNEL``).

    ``reference``/``batched`` are explicit and always honoured — forcing
    ``batched`` with the sanitizer or tracer attached is supported (the
    bail-out seams feed them the identical event stream) and is how the
    differential CI jobs prove it. ``auto`` resolves via the
    ``REPRO_KERNEL`` environment override if set, otherwise picks the
    batched kernel except when an observer (sanitizer/tracer) is
    attached — the conservative default keeps opt-in diagnostics on the
    reference loop they were written against.
    """
    kind = getattr(system.config, "kernel", "auto")
    if kind == "auto":
        kind = os.environ.get(_KERNEL_ENV) or "auto"
    if kind == "reference":
        return SimulationEngine(system)
    if kind == "batched":
        return BatchedEngine(system)
    if system.sanitizer is not None or system.tracer is not None:
        return SimulationEngine(system)
    return BatchedEngine(system)


def stream_chunk_shim(workload, vcpu_index: int, count: int) -> List[tuple]:
    """``stream_chunk`` for workloads that only expose ``next_access``.

    Materialises one access at a time through the workload's own
    ``next_access``, so arbitrary (possibly cross-vCPU-coupled)
    generators stay exact — there is no lookahead to reorder their
    internal draws beyond the ``count`` the caller batches. ``count`` is
    the caller's responsibility: the kernel clamps it to the vCPU's
    remaining phase budget (and the next chunk deadline) once up front,
    so the loop here carries no per-access budget or exception
    bookkeeping beyond one ``try`` frame for a trace running dry.
    """
    out: List[tuple] = []
    append = out.append
    next_access = workload.next_access
    try:
        for _ in range(count):
            access = next_access(vcpu_index)
            append(
                (
                    access.initiator,
                    access.guest_page,
                    access.block_index,
                    access.is_write,
                )
            )
    except StopIteration:
        pass
    return out


def _block_words() -> int:
    raw = os.environ.get(_BLOCK_WORDS_ENV)
    if not raw:
        return _DEFAULT_BLOCK_WORDS
    # Upper clamp keeps buffer offsets inside the packed entries'
    # _PTR_BITS pointer field with room for carried-over tails.
    return min(max(_MIN_BLOCK_WORDS, int(raw)), 1 << (_PTR_BITS - 2))


def _shifted(array, k: int, fill, m: int, dtype):
    """``array`` advanced by ``k`` offsets, padded with ``fill``."""
    out = _np.empty(m, dtype=dtype)
    keep = m - k if m > k else 0
    out[:keep] = array[k:]
    out[keep:] = fill
    return out


def _pool(first, idx, hot, m: int, bits: int, pool: int, scratch=None):
    """Resolve one hot pool's rejection sampling for the lanes in ``hot``.

    ``getrandbits(bits)`` is ``word >> (32 - bits)``; the stepper redraws
    while the value is >= the pool size. ``hot`` holds the *access
    start* offsets ``i`` (chains start at ``i + 4``). Returns
    ``(accept, resolved)`` aligned to ``hot``: the accepting word
    offset (``m`` when the chain runs off the buffer — the caller's
    skip bound then marks the lane invalid) and the accepted value
    (0 on off-buffer lanes).

    Two strategies, chosen by hot-lane density:

    * Dense (>= 1 lane in 6): full-width scan. A chain starting at
      ``j`` accepts at the first offset >= ``j`` whose draw lands
      inside the pool, so a reverse running minimum over the accepting
      positions resolves every chain in a handful of O(m) passes.
    * Sparse: the stepper's redraw loop run over all chains at once —
      each round draws at every unresolved chain's offset, retires the
      accepting ones, advances the rest one word. ``bits`` is the pool
      size's bit length, so each round accepts with probability > 1/2
      and the active set dies off geometrically. Work scales with
      ``hot.size``, not ``m``, but each round costs fixed call
      overhead — hence the density cutover.
    """
    shift = _np.uint64(32 - bits)
    limit = _np.uint64(pool)
    if hot.size * _DENSE_CUTOVER >= m:
        if scratch is not None:
            draws = scratch["u64"]
            _np.right_shift(first, shift, out=draws)
            rejected = scratch["bool"]
            _np.greater_equal(draws, limit, out=rejected)
            candidate = scratch["i32d"]
            _np.multiply(rejected, m, out=candidate)
            candidate += idx
        else:
            draws = first >> shift
            rejected = draws >= limit
            candidate = idx + rejected.astype(_np.int32) * m
        # In-place reverse running minimum: first accepting offset >= j.
        reverse = candidate[::-1]
        _np.minimum.accumulate(reverse, out=reverse)
        start = hot + 4
        accept = candidate.take(_np.minimum(start, m - 1))
        accept[start >= m] = m
        resolved = draws.take(_np.minimum(accept, m - 1)).astype(_np.int32)
        return accept, resolved
    accept = _np.full(hot.shape, m, dtype=_np.int32)
    resolved = _np.zeros(hot.shape, dtype=_np.int32)
    active = _np.arange(hot.size, dtype=_np.int32)
    position = hot + 4
    while position.size:
        inside = position < m
        if not inside.all():
            active = active[inside]
            position = position[inside]
            if not position.size:
                break
        draws = first.take(position) >> shift
        accepted = draws < limit
        if accepted.any():
            retired = active[accepted]
            accept[retired] = position[accepted]
            resolved[retired] = draws[accepted].astype(_np.int32)
            rejected = ~accepted
            active = active[rejected]
            position = position[rejected]
        position += 1
    return accept, resolved


def _encode(words, enc) -> list:
    """Two-pass decode: packed entries for the *consumed* accesses only.

    ``words`` is a uint64 ndarray of raw MT19937 output words. Pass one
    resolves, vectorised across every word offset ``i``, the access that
    would start there (category draw at ``i``/``i+1``, base write draw
    at ``i+2``/``i+3``, category-specific draws after) — full-width work
    is unavoidable for the rejection chains. Pass two walks the actual
    consumption chain from offset 0 (each access advances the stream by
    its own word count, so the chain is known statically) and gathers,
    packs and materialises *only the visited lanes*: one access consumes
    4+ words, so the old one-entry-per-offset encoding boxed ~6x more
    Python ints than the loop ever read — pure overcompute, and the
    dominant refill cost (DESIGN §6).

    The returned list is consumed sequentially via ``_VmStream.cursor``;
    each entry packs:

    =====  ========================================================
    bits   meaning
    =====  ========================================================
    0-2    category: ``bisect_right(cumulative, random()*cum_total)``
           clamped to ``_PRIVATE_HOT`` — computed as the sum of the
           same eight IEEE ``>=`` compares the bisection performs
    3      the access's *final* write flag: the base
           ``random() < write_fraction`` draw, overridden by the
           category's own fraction draw where the stepper overrides
    4-27   the absolute word offset the *next* access starts at
           (this access's start plus the words it consumes)
    28-43  the accepted hot-pool draw of this entry's category
    =====  ========================================================

    The list terminates with ``-1``: the next access would read past
    the buffer. The consumer refills, which re-bases it to offset 0 of
    a longer buffer. Every float op matches CPython exactly:
    ``(a*2**26 + b)`` with ``a < 2**27, b < 2**26`` is exact at each
    step in both uint64 and float64, and all threshold/category
    compares are the same IEEE operations the scalar code performs.
    """
    m = len(words) - 1
    if m <= 0:
        return [-1]
    scratch = enc.scratch(m)
    first = words[:m]
    # value[i] = random() drawn at words i/i+1, built in uint64 (exact:
    # (a*2**26 + b) < 2**53) and converted once.
    acc = scratch["u64"]
    _np.right_shift(first, 5, out=acc)
    acc *= 67108864
    low = scratch["u64b"]
    _np.right_shift(words[1:], 6, out=low)
    acc += low
    value = scratch["f64"]
    _np.multiply(acc, _INV_2_53, out=value)
    scaled = scratch["f64b"]
    _np.multiply(value, enc.cum_total, out=scaled)
    thresholds = enc.cum_list
    # bisect_right(c, x) counts entries <= x; x >= c is the exact IEEE
    # complement of x < c (no NaNs here), so the sum reproduces it.
    flag = scratch["bool"]
    category = scratch["u8"]
    _np.greater_equal(scaled, thresholds[0], out=flag)
    category[:] = flag
    for threshold in thresholds[1:]:
        _np.greater_equal(scaled, threshold, out=flag)
        category += flag
    _np.minimum(category, 7, out=category)
    idx = enc.idx(m)
    _np.less(value, enc.write_fraction, out=flag)
    is_write = _shifted(flag, 2, False, m, _np.bool_)
    skip = scratch["i32"]
    skip.fill(6)
    if enc.private_walk:
        _np.equal(category, 6, out=flag)
        skip -= flag
        skip -= flag
    resolved = scratch["i32b"]
    resolved.fill(0)
    # Private-hot lanes are resolved whenever present — not gated on the
    # profile's probability, because the bisection clamp can land on
    # category 7 even at zero probability (float rounding can make
    # value*cum_total == cum_total), exactly as the stepper's can.
    _np.equal(category, 7, out=flag)
    hot = flag.nonzero()[0].astype(_np.int32)
    if hot.size:
        accept_p, resolved_p = _pool(
            first, idx, hot, m, enc.private_bits, enc.private_pool, scratch
        )
        skip[hot] += accept_p - hot - 5
        resolved[hot] = resolved_p
    if enc.shared_walk or enc.shared_hot:
        shared_flag = scratch["boolb"]
        _np.less(value, enc.shared_write_fraction, out=shared_flag)
        if enc.shared_walk:
            override = _shifted(shared_flag, 4, False, m, _np.bool_)
            mask = category == 4
            is_write = is_write ^ (mask & (override ^ is_write))
        if enc.shared_hot:
            _np.equal(category, 5, out=flag)
            hot = flag.nonzero()[0].astype(_np.int32)
            if hot.size:
                accept_s, resolved_s = _pool(
                    first, idx, hot, m, enc.shared_bits, enc.shared_pool, scratch
                )
                skip[hot] += accept_s - hot - 3
                resolved[hot] = resolved_s
                is_write[hot] = shared_flag.take(
                    _np.minimum(accept_s + 1, m - 1)
                )
    if enc.content_walk or enc.content_hot:
        content_flag = scratch["boolb"]
        _np.less(value, enc.content_write_fraction, out=content_flag)
        if enc.content_walk:
            override = _shifted(content_flag, 4, False, m, _np.bool_)
            mask = category == 0
            is_write = is_write ^ (mask & (override ^ is_write))
        if enc.content_hot:
            _np.equal(category, 1, out=flag)
            hot = flag.nonzero()[0].astype(_np.int32)
            if hot.size:
                accept_c, resolved_c = _pool(
                    first, idx, hot, m, enc.content_bits, enc.content_pool, scratch
                )
                skip[hot] += accept_c - hot - 3
                resolved[hot] = resolved_c
                is_write[hot] = content_flag.take(
                    _np.minimum(accept_c + 1, m - 1)
                )
    if enc.hyp_dom0:
        hyp_flag = scratch["boolb"]
        _np.less(value, _HYP_WRITE_FRACTION, out=hyp_flag)
        override = _shifted(hyp_flag, 4, False, m, _np.bool_)
        mask = (category == 2) | (category == 3)
        is_write = is_write ^ (mask & (override ^ is_write))
    # Pass two: walk the consumption chain. Every in-range lane steps
    # at least 4 words forward, so the walk visits ~m/6 lanes and always
    # terminates at the first lane that would read past the buffer —
    # that final lane is the old "-1 invalid" case, covered by the
    # terminator appended below. The memoryview gives boxed-int reads
    # without materialising the whole array through tolist().
    nxt = scratch["i32d"]
    _np.add(idx, skip, out=nxt)
    if m > _PTR_MASK:
        raise RuntimeError(
            f"word buffer of {m} words overflows the {_PTR_BITS}-bit "
            f"pointer field (REPRO_KERNEL_BLOCK too large?)"
        )
    walk = nxt.data
    visited = []
    append = visited.append
    position = 0
    while position < m:
        append(position)
        position = walk[position]
    visited.pop()  # the terminating lane reads past the buffer
    if not visited:
        return [-1]
    consumed = _np.asarray(visited, dtype=_np.int32)
    # Gather + pack at consumed size (int64: pointer field bits 4-27,
    # resolved draw above _RES_SHIFT).
    entries = category.take(consumed).astype(_np.int64)
    write_bits = is_write.take(consumed).astype(_np.int64)
    write_bits <<= 3
    entries += write_bits
    pointers = nxt.take(consumed).astype(_np.int64)
    pointers <<= 4
    entries += pointers
    draws = resolved.take(consumed).astype(_np.int64)
    draws <<= _RES_SHIFT
    entries += draws
    out = entries.tolist()
    out.append(-1)
    return out


class _VmStream:
    """Per-VM word-path state: the stream, its buffer, and the encode
    parameters. One instance serves one VM for one phase."""

    __slots__ = (
        "stream",
        "words",
        "encoded",
        "cursor",
        "pointer",
        "consumed",
        "block_words",
        "cum_list",
        "cum_total",
        "write_fraction",
        "shared_write_fraction",
        "content_write_fraction",
        "private_bits",
        "private_pool",
        "shared_bits",
        "shared_pool",
        "content_bits",
        "content_pool",
        "private_walk",
        "shared_walk",
        "shared_hot",
        "content_walk",
        "content_hot",
        "hyp_dom0",
        "_idx_full",
        "_scratch_full",
    )

    def __init__(self, workload: VmWorkload, block_words: int) -> None:
        self.stream = WordStream(workload._rng)
        cumulative = list(workload._cumulative)
        self.cum_list = cumulative
        self.cum_total = workload._cum_total
        self.write_fraction = workload._write_fraction
        self.shared_write_fraction = workload.shared_write_fraction
        self.content_write_fraction = workload._content_write_fraction
        self.private_bits = workload._private_hot_bits
        self.private_pool = workload.private_hot_blocks
        self.shared_bits = workload._shared_hot_bits
        self.shared_pool = workload.shared_hot_blocks
        self.content_bits = workload._content_hot_bits
        self.content_pool = workload.content_hot_blocks
        # Category presence: skip the encode passes of categories the
        # cumulative table cannot select (empty probability intervals).
        present = [
            cumulative[c] > (cumulative[c - 1] if c else 0.0) for c in range(8)
        ]
        self.content_walk = present[0]
        self.content_hot = present[1]
        self.hyp_dom0 = present[2] or present[3]
        self.shared_walk = present[4]
        self.shared_hot = present[5]
        self.private_walk = present[6]
        self.block_words = block_words
        self.words = _np.empty(0, dtype=_np.uint64)
        self.encoded: list = [-1]  # forces a refill at the first access
        self.cursor = 0  # next entry of `encoded` to consume
        self.pointer = 0  # word offset the next access starts at
        self.consumed = 0
        self._idx_full = None
        self._scratch_full = None

    def idx(self, m: int):
        """0..m-1 as int32: a prefix view of one capacity-sized arange.

        Buffer lengths vary slightly per refill (the unconsumed tail is
        carried over), so caching per exact length would accumulate an
        array per refill; a single over-allocated arange serves every
        length as a view.
        """
        cached = self._idx_full
        if cached is None or len(cached) < m:
            cached = self._idx_full = _np.arange(
                max(m, self.block_words + 2048), dtype=_np.int32
            )
        return cached[:m]

    def scratch(self, m: int) -> dict:
        """Reusable length-``m`` work buffers for :func:`_encode`.

        One capacity-sized allocation per dtype slot, sliced to ``m`` on
        each call: the encode passes all write through ``out=`` into
        these, which keeps the ~10 full-width temporaries an encode
        would otherwise allocate (and their page-faulting churn) off
        the refill path entirely.
        """
        full = self._scratch_full
        if full is None or len(full["u64"]) < m:
            cap = max(m, self.block_words + 2048)
            full = self._scratch_full = {
                "u64": _np.empty(cap, dtype=_np.uint64),
                "u64b": _np.empty(cap, dtype=_np.uint64),
                "f64": _np.empty(cap, dtype=_np.float64),
                "f64b": _np.empty(cap, dtype=_np.float64),
                "u8": _np.empty(cap, dtype=_np.uint8),
                "i32": _np.empty(cap, dtype=_np.int32),
                "i32b": _np.empty(cap, dtype=_np.int32),
                "i32d": _np.empty(cap, dtype=_np.int32),
                "bool": _np.empty(cap, dtype=_np.bool_),
                "boolb": _np.empty(cap, dtype=_np.bool_),
            }
        return {name: buf[:m] for name, buf in full.items()}

    def refill(self, pointer: int) -> int:
        """Bank ``pointer`` consumed words, fetch a fresh block, rebuild
        the packed entries; returns the new pointer (0)."""
        self.consumed += pointer
        tail = self.words[pointer:]
        fresh = self.stream.raw(self.block_words)
        self.words = _np.concatenate((tail, fresh)) if len(tail) else fresh
        self.encoded = _encode(self.words, self)
        self.cursor = 0
        self.pointer = 0
        return 0

    def finish(self, pointer: int) -> None:
        """Phase over: write the source RNG to the consumed position."""
        self.stream.sync_back(self.consumed + pointer)


def _word_eligible(workload) -> bool:
    """Whether a workload can run on the packed word path.

    Exact-type check, not isinstance: the packed encoding replays
    ``VmWorkload.make_stepper``'s draw arithmetic literally, so any
    subclass (or foreign workload such as ``PatternWorkload``) with
    different generation logic must take the chunk/step paths instead —
    an isinstance match would silently diverge.
    """
    if not HAVE_NUMPY or type(workload) is not VmWorkload:
        return False
    return max(
        workload._private_hot_bits,
        workload._shared_hot_bits,
        workload._content_hot_bits,
    ) <= _FIELD_BITS


class BatchedEngine(SimulationEngine):
    """Drop-in engine with the batched `_run_phase` (see module docs)."""

    def __init__(self, system: SimulatedSystem) -> None:
        super().__init__(system)
        # Bulk-miss seam diagnostics. Engine-level on purpose, never on
        # SimStats: stats stay byte-identical across kernels by
        # contract. The histogram answers "why did a transaction stay
        # on the reference path" (repro-sim profile, campaign
        # manifests).
        self.bulk_transacts = 0
        self.bail_reasons: Dict[str, int] = {}

    def _reset_measurements(self, cycle: int = 0) -> None:
        super()._reset_measurements(cycle)
        # Counters describe the measured phase only, like every other
        # measurement the engine reports.
        self.bulk_transacts = 0
        self.bail_reasons.clear()

    def bulk_summary(self) -> Dict[str, object]:
        """Measured-phase bulk-seam diagnostics, JSON-ready."""
        return {
            "bulk_transacts": self.bulk_transacts,
            "bailouts": dict(sorted(self.bail_reasons.items())),
        }

    def _run_phase(
        self, clocks: List[int], budget: int, migrate: bool
    ) -> List[int]:
        # Heap tuples carry the vCPU's remaining budget as a fourth
        # field — never compared ((time, seq) is already unique) and one
        # list-indexing pair cheaper per access than a side array.
        heap: List[Tuple[int, int, int, int]] = [
            (local_time, index, index, budget)
            for index, local_time in enumerate(clocks)
        ]
        # list-of-tuples heapify orders identically to the reference
        # loop's repeated heappush (same comparison key, same final pop
        # sequence; entries are unique so layout differences are moot).
        heapify(heap)
        final = list(clocks)
        vcpus = self._vcpus
        sequence = len(vcpus)
        think = self.config.think_cycles
        migrate = migrate and self._next_migration is not None
        infinity = float("inf")
        next_migration = self._next_migration if migrate else infinity
        metrics = self._metrics
        next_sample = self._next_sample
        # One boundary compare per access covers both the metrics window
        # and the migration window (each is checked in reference order
        # inside the rare branch).
        boundary = next_sample if next_sample < next_migration else next_migration
        caches = self._caches
        mem_translate = self._mem_translate
        transact = self._transact
        guest_initiator = Initiator.GUEST
        hyp_initiator = Initiator.HYPERVISOR
        dom0_initiator = Initiator.DOM0
        untracked = UNTRACKED_VM
        ro_shared = PageType.RO_SHARED
        write_to_page = self._write_to_page
        page_shift = self._page_shift
        rw_shared_translate = self._rw_shared_translate
        reg_blocks = self.system.registry._blocks
        workloads = self._workloads
        steppers = self._steppers
        vm_ids = [v.vm_id for v in vcpus]
        vm_memos = [self._xlate_memo[v.vm_id] for v in vcpus]
        hyp_memo = self._xlate_memo[HYPERVISOR_SPACE]
        dom0_memo = self._xlate_memo[DOM0_VM_ID]
        cores = [v.core for v in vcpus]
        stats = self.stats
        l1_by_page_type = stats.l1_accesses_by_page_type
        # Geometry is uniform across the private hierarchies (one config
        # builds them all), so masks/ways/latencies hoist to ints, and
        # the per-core hierarchies and their set lists hoist to lists.
        hierarchies = [caches[core] for core in range(len(caches))]
        l1_sets_by_core = [h._l1_sets for h in hierarchies]
        l2_sets_by_core = [h._l2_sets for h in hierarchies]
        any_hierarchy = hierarchies[0]
        l1_mask = any_hierarchy._l1_mask
        l2_mask = any_hierarchy._l2_mask
        l1_ways = any_hierarchy._l1_ways
        l1_latency = any_hierarchy.l1_latency
        l12_latency = l1_latency + any_hierarchy.l2_latency
        private_vcpu_base = generator.PRIVATE_BASE
        private_vcpu_stride = generator.PRIVATE_VCPU_STRIDE
        shared_hot_base = generator.SHARED_HOT_BASE
        content_hot_base = generator.CONTENT_HOT_BASE

        # --- generation-path selection (per VM / per vCPU) -----------
        block_words = _block_words()
        vm_streams: dict = {}  # vm_id -> _VmStream (word path)
        for vm_id, workload in workloads.items():
            if _word_eligible(workload):
                vm_streams[vm_id] = _VmStream(workload, block_words)
        # slot[index]: the vCPU's _VmStream, or None (chunk/step path).
        slots = [vm_streams.get(vm_id) for vm_id in vm_ids]
        # Private-pool bases and cursors, per heap index (word path).
        private_bases = []
        private_cursors = []
        shared_cursors = []
        content_cursors = []
        hyp_cursors = []
        dom0_cursors = []
        for position, v in enumerate(vcpus):
            workload = workloads.get(v.vm_id)
            if slots[position] is not None:
                private_bases.append(
                    private_vcpu_base + v.index * private_vcpu_stride
                )
                private_cursors.append(workload._private_streams[v.index])
                shared_cursors.append(workload._shared_stream)
                content_cursors.append(workload._content_stream)
                hyp_cursors.append(workload._hyp_stream)
                dom0_cursors.append(workload._dom0_stream)
            else:
                private_bases.append(0)
                private_cursors.append(None)
                shared_cursors.append(None)
                content_cursors.append(None)
                hyp_cursors.append(None)
                dom0_cursors.append(None)
        # Chunk path: workloads that materialise runs exactly — natively
        # via stream_chunk, or through the shim when the workload only
        # exposes next_access but declares interleaving independence.
        chunk_fns = []
        chunk_buffers = []
        chunk_positions = []
        for position, v in enumerate(vcpus):
            workload = workloads.get(v.vm_id)
            fn = None
            if (
                slots[position] is None
                and workload is not None
                and getattr(workload, "stream_chunk_independent", False)
            ):
                fn = getattr(workload, "stream_chunk", None)
                if fn is None:
                    fn = partial(stream_chunk_shim, workload)
            chunk_fns.append(fn)
            chunk_buffers.append([] if fn is not None else None)
            chunk_positions.append(0)
        vcpu_indices = [v.index for v in vcpus]
        # Minimum spacing between two accesses of one vCPU: an access
        # retires no faster than an L1 hit. Bounds how many accesses a
        # chunk refill can need before the next migration/metrics
        # deadline re-enters the boundary branch.
        min_step = think + l1_latency
        if min_step < 1:
            min_step = 1

        # --- bulk-miss seam (DESIGN §6) ------------------------------
        # Applies an eligible same-VM private miss inline instead of
        # descending through _transact -> execute -> _try_* -> fill. A
        # miss is eligible only when its entire outcome is decided by
        # the first transient attempt and its replacement victim is
        # clean and VM-local; the seam then performs the reference
        # path's counter updates and state mutations in their exact
        # order (it calls the same network/memory/registry-eviction
        # primitives, so window rollovers and traffic charges land
        # identically). Anything else returns -1 and the caller falls
        # back to the reference _transact. Gated off whenever an
        # observer (sanitizer, tracer, outcome observer) is attached:
        # those are wired through the seams the bulk path skips.
        bulk = None
        bail = self.bail_reasons
        if (
            self._sanitizer is None
            and self._tracer is None
            and self._observe_outcome is None
        ):
            protocol = self.system.protocol
            cstats = protocol.stats
            tx_by_initiator = stats.transactions_by_initiator
            tx_by_page_type = cstats.transactions_by_page_type
            snoops_by_page_type = cstats.snoops_by_page_type
            network = self.system.network
            window_cycles = network.window_cycles
            advance_window = network._advance_window
            per_hop = network._per_hop
            contention_scale = network.contention_scale
            link_bytes = network.sizing.link_bytes
            hops_tbl = network._hops
            req_flits = network._flits[MessageKind.REQUEST]
            data_flits = network._flits[MessageKind.DATA]
            rd_flits = req_flits + data_flits
            wb_flits = network._flits[MessageKind.WRITEBACK]
            tr_flits = network._flits[MessageKind.TOKEN_RETURN]
            mc_cache = network._mc_cache
            mc_cache_max = network._mc_cache_max
            aggregate_hops = network._aggregate_hops
            snoop_lookup = protocol.snoop_lookup_latency
            memory = protocol.memory
            mem_node = memory.node
            mem_latency = memory.latency
            plan_fn = self._plan
            vm_private = PageType.VM_PRIVATE
            memory_holder = MEMORY
            block_state = BlockState
            cache_line = CacheLine
            as_frozenset = frozenset
            l2_ways = any_hierarchy._l2_ways
            l2_observers = [h._l2_observer for h in hierarchies]
            # Residence trackers inline too (the victim is VM-local and
            # tracked by eligibility); any other observer shape falls
            # back to the generic on_evict/on_insert calls.
            res_counts = []
            res_on_low = []
            res_thresholds = []
            res_trackers = []
            for h in hierarchies:
                ob = h._l2_observer
                if type(ob) is ResidenceTracker:
                    res_trackers.append(ob)
                    res_counts.append(ob._counts)
                    res_on_low.append(ob.on_low)
                    res_thresholds.append(ob.threshold)
                else:
                    res_trackers.append(None)
                    res_counts.append(None)
                    res_on_low.append(None)
                    res_thresholds.append(0)

            def bulk(
                core,
                vm_id,
                block,
                is_write,
                page_type,
                initiator,
                vm_tag,
                l1_set,
                l2_set,
                cycle,
            ):
                # ---- eligibility (pure: no counters, no mutation) ----
                # Check order is cheapest-first: the victim peek is two
                # dict ops while the plan/registry checks cost a call
                # each, and dirty victims dominate the bail mix on
                # write-heavy cells.
                if page_type is not vm_private:
                    bail["page-type"] = bail.get("page-type", 0) + 1
                    return -1
                victim = None
                if len(l2_set) >= l2_ways:
                    victim = next(iter(l2_set.values()))
                    if victim.dirty:
                        bail["victim-dirty"] = bail.get("victim-dirty", 0) + 1
                        return -1
                    if victim.vm_id != vm_id:
                        bail["victim-cross-vm"] = (
                            bail.get("victim-cross-vm", 0) + 1
                        )
                        return -1
                plan = plan_fn(core, vm_id, page_type, block)
                destinations = plan.attempts[0]
                state = reg_blocks.get(block)
                if is_write:
                    # GETM succeeds on attempt 0 with no invalidations
                    # only when no core holds any token.
                    if state is not None and (
                        state.sharers or state.owner != memory_holder
                    ):
                        bail["getm-contended"] = (
                            bail.get("getm-contended", 0) + 1
                        )
                        return -1
                    owner = memory_holder
                else:
                    owner = state.owner if state is not None else memory_holder
                    if owner != memory_holder and owner not in destinations:
                        bail["gets-retry"] = bail.get("gets-retry", 0) + 1
                        return -1
                # ---- commit: the reference path's effects, in its
                # exact order (_transact -> execute -> _try_* ->
                # _apply_transact's fill -> handle_eviction). One window
                # check covers every network leg charged at this cycle
                # (the window can roll over at most once per cycle value
                # — the same fusion _memory_read_latency uses), so the
                # contention term is one hoisted constant, and the
                # traffic counters are flushed in one batch at the end
                # (nothing reads them mid-transaction: the sanitizer is
                # gated off and metrics sample between accesses).
                if cycle - network._window_start >= window_cycles:
                    advance_window(cycle)
                u = network._last_utilisation
                contention = int(contention_scale * u / (1.0 - u))
                tx_by_initiator[initiator] += 1
                cstats.transactions += 1
                tx_by_page_type[page_type] += 1
                if is_write:
                    cstats.getm_count += 1
                else:
                    cstats.gets_count += 1
                snoops = len(destinations)
                cstats.snoops += snoops
                snoops_by_page_type[page_type] += snoops
                # Request multicast (inlined network.multicast).
                if type(destinations) is not as_frozenset:
                    destinations = as_frozenset(destinations)
                key = (core, destinations)
                agg = mc_cache.get(key)
                if agg is None:
                    if len(mc_cache) >= mc_cache_max:
                        mc_cache.clear()
                    agg = mc_cache[key] = aggregate_hops(core, destinations)
                mc_count, mc_total_hops, worst_hops = agg
                msgs = mc_count
                fh = req_flits * mc_total_hops if mc_count else 0
                attempt_latency = (
                    0 if worst_hops == 0 else worst_hops * per_hop + contention
                )
                if is_write:
                    # grant_exclusive with no prior holders, then memory
                    # sources the data (_try_getm's success order).
                    if state is None:
                        state = reg_blocks[block] = block_state()
                    state.sharers = {core}
                    state.owner = core
                    state.dirty = True
                    state.providers.clear()
                    if core == mem_node:
                        memory.data_reads += 1
                        completion = mem_latency
                    else:
                        hops = hops_tbl[core][mem_node]
                        msgs += 2
                        fh += rd_flits * hops
                        path = hops * per_hop + contention
                        memory.data_reads += 1
                        completion = path + mem_latency + path
                    cstats.memory_sourced += 1
                elif owner == MEMORY:
                    if core == mem_node:
                        memory.data_reads += 1
                        completion = mem_latency
                    else:
                        hops = hops_tbl[core][mem_node]
                        msgs += 2
                        fh += rd_flits * hops
                        path = hops * per_hop + contention
                        memory.data_reads += 1
                        completion = path + mem_latency + path
                    cstats.memory_sourced += 1
                    if state is None:
                        state = reg_blocks[block] = block_state()
                        state.sharers = {core}
                        state.owner = core
                    elif not state.sharers:
                        # MOESI E state (grant_exclusive, dirty=False).
                        state.sharers = {core}
                        state.owner = core
                        state.dirty = False
                        state.providers.clear()
                    else:
                        state.sharers.add(core)
                else:
                    # Cache-to-cache: the owner is inside attempt 0
                    # (request leg + snoop lookup + DATA leg back).
                    if core == owner:
                        completion = snoop_lookup
                    else:
                        hops = hops_tbl[core][owner]
                        back = hops_tbl[owner][core]
                        msgs += 1
                        fh += data_flits * back
                        completion = (
                            hops * per_hop
                            + contention
                            + snoop_lookup
                            + back * per_hop
                            + contention
                        )
                    cstats.cache_to_cache += 1
                    state.sharers.add(core)
                # ---- fill (dirty == is_write here: fill_dirty is True
                # exactly for GETM, where is_write is True already) ----
                counts = res_counts[core]
                observer = l2_observers[core]
                if victim is not None:
                    victim_block = victim.block
                    del l2_set[victim_block]
                    if counts is not None:
                        # Inlined ResidenceTracker.on_evict: the victim
                        # is VM-local and tracked by eligibility.
                        current = counts.get(vm_id, 0) - 1
                        if current < 0:
                            # Canonical underflow diagnostics.
                            res_trackers[core].on_evict(victim)
                        elif current == 0:
                            del counts[vm_id]
                        else:
                            counts[vm_id] = current
                        if current <= res_thresholds[core]:
                            on_low = res_on_low[core]
                            if on_low is not None:
                                on_low(core, vm_id, current)
                    elif observer is not None:
                        observer.on_evict(victim)
                line = cache_line(block, vm_tag, is_write)
                l2_set[block] = line
                if counts is not None:
                    counts[vm_id] = counts.get(vm_id, 0) + 1
                elif observer is not None:
                    observer.on_insert(line)
                if victim is not None:
                    l1_sets_by_core[core][victim_block & l1_mask].pop(
                        victim_block, None
                    )
                if len(l1_set) >= l1_ways:
                    del l1_set[next(iter(l1_set))]
                l1_set[block] = cache_line(block, vm_tag, is_write)
                if victim is not None:
                    # Inlined registry.evicted + handle_eviction: tokens
                    # (and dirty data) travel back to memory. The send's
                    # latency is discarded by the reference too, so only
                    # its traffic is charged.
                    vstate = reg_blocks.get(victim_block)
                    if vstate is not None and core in vstate.sharers:
                        vsharers = vstate.sharers
                        vsharers.discard(core)
                        if vstate.providers:
                            for pvm, prov in list(vstate.providers.items()):
                                if prov == core:
                                    del vstate.providers[pvm]
                        if vstate.owner == core:
                            vstate.owner = memory_holder
                            if vstate.dirty or victim.dirty:
                                vstate.dirty = False
                                memory.writebacks += 1
                                if core != mem_node:
                                    msgs += 1
                                    fh += wb_flits * hops_tbl[core][mem_node]
                            else:
                                memory.token_returns += 1
                                if core != mem_node:
                                    msgs += 1
                                    fh += tr_flits * hops_tbl[core][mem_node]
                        else:
                            memory.token_returns += 1
                            if core != mem_node:
                                msgs += 1
                                fh += tr_flits * hops_tbl[core][mem_node]
                        if not vsharers:
                            if vstate.owner == memory_holder and not vstate.providers:
                                del reg_blocks[victim_block]
                if msgs:
                    network.messages += msgs
                    network.flit_hops += fh
                    network.bytes_transferred += fh * link_bytes
                    network._window_flit_hops += fh
                self.bulk_transacts += 1
                return (
                    attempt_latency
                    if attempt_latency >= completion
                    else completion
                )

        local_time = self.now
        try:
            if heap:
                item = heappop(heap)
            else:
                item = None
            while item is not None:
                local_time, _, index, count = item
                if local_time >= boundary:
                    if local_time >= next_sample:
                        self.now = local_time
                        next_sample = metrics.sample(local_time)
                    if migrate and local_time >= next_migration:
                        self.now = local_time
                        self._maybe_migrate()
                        next_migration = self._next_migration
                        cores = [v.core for v in vcpus]
                    boundary = (
                        next_sample
                        if next_sample < next_migration
                        else next_migration
                    )
                # ---- generation --------------------------------------
                vm_stream = slots[index]
                if vm_stream is not None:
                    entry_at = vm_stream.cursor
                    word = vm_stream.encoded[entry_at]
                    if word < 0:
                        # Chain cut by the buffer edge: refill re-bases
                        # the access to offset 0 of a longer buffer (and
                        # keeps growing it for pathological chains).
                        while True:
                            vm_stream.refill(vm_stream.pointer)
                            word = vm_stream.encoded[0]
                            if word >= 0:
                                break
                        entry_at = 0
                    vm_stream.cursor = entry_at + 1
                    vm_stream.pointer = (word >> 4) & 16777215
                    category = word & 7
                    initiator = guest_initiator
                    if category == 7:  # private hot
                        draw = word >> 28
                        is_write = (word & 8) != 0
                        guest_page = private_bases[index] + (draw >> 6)
                        block_index = draw & 63
                    elif category == 6:  # private stream
                        is_write = (word & 8) != 0
                        cursor = private_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                    elif category == 5:  # shared hot
                        draw = word >> 28
                        is_write = (word & 8) != 0
                        guest_page = shared_hot_base + (draw >> 6)
                        block_index = draw & 63
                    elif category == 4:  # shared stream
                        is_write = (word & 8) != 0
                        cursor = shared_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                    elif category == 0:  # content stream
                        is_write = (word & 8) != 0
                        cursor = content_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                    elif category == 1:  # content hot
                        draw = word >> 28
                        is_write = (word & 8) != 0
                        guest_page = content_hot_base + (draw >> 6)
                        block_index = draw & 63
                    elif category == 2:  # hypervisor
                        is_write = (word & 8) != 0
                        cursor = hyp_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                        initiator = hyp_initiator
                    else:  # dom0
                        is_write = (word & 8) != 0
                        cursor = dom0_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                        initiator = dom0_initiator
                else:
                    buffer = chunk_buffers[index]
                    if buffer is not None:
                        position = chunk_positions[index]
                        if position >= len(buffer):
                            # Clamp once, up front: to the remaining
                            # phase budget (so the workload's positions
                            # end the phase exactly where the reference
                            # loop leaves them) and to the next
                            # migration/metrics deadline — this vCPU
                            # cannot consume more than `cap` accesses
                            # before the boundary branch re-runs, so a
                            # longer refill is pure lookahead. The n<1
                            # floor covers the budget-0 edge where the
                            # reference still generates one access.
                            n = (
                                _CHUNK_ACCESSES
                                if count > _CHUNK_ACCESSES
                                else count
                            )
                            if boundary < infinity:
                                cap = (boundary - local_time) // min_step + 1
                                if cap < n:
                                    n = int(cap)
                            if n < 1:
                                n = 1
                            buffer = chunk_fns[index](
                                vcpu_indices[index], n
                            )
                            if not buffer:
                                raise StopIteration(
                                    f"vCPU {vcpu_indices[index]} trace exhausted"
                                )
                            chunk_buffers[index] = buffer
                            position = 0
                        initiator, guest_page, block_index, is_write = buffer[
                            position
                        ]
                        chunk_positions[index] = position + 1
                    else:
                        (
                            initiator,
                            guest_page,
                            block_index,
                            is_write,
                        ) = steppers[index]()
                # ---- translation (reference order, call-free memo) ---
                vm_id = vm_ids[index]
                if initiator is guest_initiator:
                    vm_tag = vm_id
                    vm_memo = vm_memos[index]
                    if guest_page in vm_memo:
                        host_page, page_type = vm_memo[guest_page]
                        if is_write and page_type is ro_shared:
                            self.now = local_time
                            host_page, page_type = write_to_page(
                                vm_id, guest_page
                            )
                    else:
                        self.now = local_time
                        if is_write:
                            entry = write_to_page(vm_id, guest_page)
                        else:
                            entry = mem_translate(vm_id, guest_page)
                        vm_memo[guest_page] = entry
                        host_page, page_type = entry
                else:
                    vm_tag = untracked
                    if initiator is hyp_initiator:
                        if guest_page in hyp_memo:
                            host_page, page_type = hyp_memo[guest_page]
                        else:
                            self.now = local_time
                            host_page, page_type = rw_shared_translate(
                                HYPERVISOR_SPACE, guest_page
                            )
                    else:
                        if guest_page in dom0_memo:
                            host_page, page_type = dom0_memo[guest_page]
                        else:
                            self.now = local_time
                            host_page, page_type = rw_shared_translate(
                                DOM0_VM_ID, guest_page
                            )
                block = (host_page << page_shift) | block_index
                core = cores[index]

                l1_by_page_type[page_type] += 1

                # ---- cache probe (reference order, call-free LRU) ----
                l1_set = l1_sets_by_core[core][block & l1_mask]
                if block in l1_set:
                    l1_line = l1_set[block]
                    del l1_set[block]
                    l1_set[block] = l1_line
                    hierarchies[core].l1_hits += 1
                    latency = l1_latency
                    if is_write:
                        l1_line.dirty = True
                        l2_sets_by_core[core][block & l2_mask][block].dirty = True
                        if block in reg_blocks:
                            state = reg_blocks[block]
                            if state.owner == core and state.sharers == {core}:
                                state.dirty = True
                            else:
                                if bulk is not None:
                                    bail["store-upgrade"] = (
                                        bail.get("store-upgrade", 0) + 1
                                    )
                                self.now = local_time
                                latency += transact(
                                    core, vm_id, block, True, page_type,
                                    initiator, vm_tag, hierarchies[core], True,
                                )
                        else:
                            if bulk is not None:
                                bail["store-upgrade"] = (
                                    bail.get("store-upgrade", 0) + 1
                                )
                            self.now = local_time
                            latency += transact(
                                core, vm_id, block, True, page_type,
                                initiator, vm_tag, hierarchies[core], True,
                            )
                else:
                    l2_set = l2_sets_by_core[core][block & l2_mask]
                    if block in l2_set:
                        l2_line = l2_set[block]
                        del l2_set[block]
                        l2_set[block] = l2_line
                        hierarchy = hierarchies[core]
                        hierarchy.l2_hits += 1
                        if is_write:
                            l2_line.dirty = True
                        if len(l1_set) >= l1_ways:
                            del l1_set[next(iter(l1_set))]
                        l1_set[block] = CacheLine(block, vm_tag, is_write)
                        latency = l12_latency
                        if is_write:
                            if block in reg_blocks:
                                state = reg_blocks[block]
                                if (
                                    state.owner == core
                                    and state.sharers == {core}
                                ):
                                    state.dirty = True
                                else:
                                    if bulk is not None:
                                        bail["store-upgrade"] = (
                                            bail.get("store-upgrade", 0) + 1
                                        )
                                    self.now = local_time
                                    latency += transact(
                                        core, vm_id, block, True, page_type,
                                        initiator, vm_tag, hierarchy, True,
                                    )
                            else:
                                if bulk is not None:
                                    bail["store-upgrade"] = (
                                        bail.get("store-upgrade", 0) + 1
                                    )
                                self.now = local_time
                                latency += transact(
                                    core, vm_id, block, True, page_type,
                                    initiator, vm_tag, hierarchy, True,
                                )
                    else:
                        hierarchy = hierarchies[core]
                        hierarchy.misses += 1
                        self.now = local_time
                        if bulk is not None:
                            extra = bulk(
                                core, vm_id, block, is_write, page_type,
                                initiator, vm_tag, l1_set, l2_set,
                                local_time,
                            )
                            if extra < 0:
                                extra = transact(
                                    core, vm_id, block, is_write, page_type,
                                    initiator, vm_tag, hierarchy, False,
                                )
                            latency = l12_latency + extra
                        else:
                            latency = l12_latency + transact(
                                core, vm_id, block, is_write, page_type,
                                initiator, vm_tag, hierarchy, False,
                            )

                # ---- schedule (provably the reference pop order) -----
                next_time = local_time + think + latency
                count -= 1
                if count > 0:
                    sequence += 1
                    # push-then-pop == (pop current min, insert new) ==
                    # (new itself when it is <= the heap minimum). Keys
                    # are unique, so `<` fully orders them.
                    fresh = (next_time, sequence, index, count)
                    if heap and heap[0] < fresh:
                        item = heapreplace(heap, fresh)
                    else:
                        item = fresh
                else:
                    final[index] = next_time
                    item = heappop(heap) if heap else None
        finally:
            # Settle every word stream back into its Random — also on a
            # StopIteration/bail so callers observe a live generator.
            for vm_stream in vm_streams.values():
                vm_stream.finish(vm_stream.pointer)
        self.now = local_time
        stats.l1_accesses += budget * len(vcpus)
        self._next_sample = next_sample
        if os.environ.get(_VALIDATE_ENV):
            # Structural self-check of every cache through the packed
            # mirror (repro.cache.setassoc) — differential CI runs with
            # this on to catch any LRU-order drift the call-free dict
            # spellings could introduce.
            for hierarchy in hierarchies:
                hierarchy.l1.validate_packed()
                hierarchy.l2.validate_packed()
        return final
