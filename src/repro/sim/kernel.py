"""The batched fast-path simulation kernel.

:class:`BatchedEngine` replays the *exact* sequential semantics of
:meth:`repro.sim.engine.SimulationEngine._run_phase` — same heap order,
same RNG draw order, same mutation order, same counters — while removing
nearly every Python function call from the fast path (the L1/L2 hits
that dominate the access mix, per the paper's Figure 1 premise). It is
bit-identical to the reference loop *by construction*, and the golden
corpus, the snapshot differential suite and the kernel differential
tests prove it byte-for-byte.

Three generation paths, chosen per VM at phase start:

``word``   (:class:`~repro.sim.mtstream.WordStream`, NumPy present)
    The VM's ``random.Random`` is forked into a bulk MT19937 word
    stream. Each refill fetches a block of raw words and *fully
    resolves* every access that could start at each word offset
    (:func:`_encode`): category, write flag (including the per-category
    override draws), the accepted hot-pool value of the rejection-
    sampling chain, and the total word count the access consumes — one
    small packed int per offset. The access loop then does no draw
    arithmetic at all: read the lane, dispatch on the category, advance
    the pointer by the precomputed skip. The float reconstruction
    ``((a >> 5) * 2**26 + (b >> 6)) / 2**53`` is exact in float64 (no
    rounding at any step), and the category is a sum of the same IEEE
    compares ``bisect_right`` performs, so every resolved value agrees
    with CPython bit-for-bit.

``chunk``  (workloads advertising ``stream_chunk`` + independence)
    Trace-replay (and other pre-recorded) workloads materialise runs of
    accesses in bulk. The refill size is clamped to the vCPU's remaining
    phase budget so positions land exactly where the reference loop
    leaves them.

``step``   (fallback)
    The reference per-access stepper closures. This is the pure-Python
    path: still batched control flow, same micro-optimised loop body,
    just per-access generation. Used when NumPy is absent, when a pool
    is too large for the packed encoding, or for foreign workloads.

Every coherence-visible event — a miss, a non-silent store, an eviction,
COW, a migration window, a metrics sample — *bails out* to the same
reference machinery (``self._transact``, ``self._maybe_migrate``,
``metrics.sample``), so the sanitizer, the tracer and every observer see
an unchanged event stream.

Stats-ordering invariant: the loop updates every counter in exactly the
order the reference loop does; the only rewrites are call-free
spellings of identical operations (``in`` + subscript for ``dict.get``,
``del d[k]; d[k] = v`` for the LRU touch, ``state.sharers == {core}``
for the len/in pair, hoisted geometry constants and per-core set lists,
the phase budget carried inside the heap tuples, and
``heapreplace``/local-min scheduling that provably pops the same
(time, seq) sequence as push-then-pop).
"""

from __future__ import annotations

import os
from heapq import heapify, heappop, heapreplace
from typing import List, Optional, Tuple

from repro.cache.line import CacheLine
from repro.core.residence import UNTRACKED_VM
from repro.hypervisor.vm import DOM0_VM_ID
from repro.mem.pagetype import PageType
from repro.sim.engine import SimulationEngine
from repro.sim.mtstream import HAVE_NUMPY, WordStream
from repro.sim.system import HYPERVISOR_SPACE, SimulatedSystem
from repro.workloads import generator
from repro.workloads.generator import VmWorkload
from repro.workloads.trace import Initiator

if HAVE_NUMPY:  # pragma: no branch
    import numpy as _np

# The packed encoding and the inlined cursor walks bake the 64-block
# page geometry in as literals; refuse to import against a drifted
# generator rather than silently diverge.
assert generator.BLOCKS_PER_PAGE == 64

# Environment override for SimConfig.kernel == "auto" (CI differential
# jobs force a kernel across a whole suite without touching configs).
_KERNEL_ENV = "REPRO_KERNEL"

# When set, every batched phase ends with a structural validation of
# all caches through the packed mirror (SetAssociativeCache.packed).
_VALIDATE_ENV = "REPRO_KERNEL_VALIDATE"

# Words fetched per WordStream refill. Each access consumes 4-8 words,
# so the default amortises one numpy encode + tolist over ~3k accesses.
# Overridable for tests that want refills landing on interesting edges.
_BLOCK_WORDS_ENV = "REPRO_KERNEL_BLOCK"
_DEFAULT_BLOCK_WORDS = 16384
_MIN_BLOCK_WORDS = 32

# Accesses per stream_chunk refill on the chunk path.
_CHUNK_ACCESSES = 256

# Packed-lane field widths of _encode (see layout there). Hot-pool draws
# are ``word >> (32 - bits)`` and pool sizes are coverage-capped, so 16
# bits per pool is generous; VMs exceeding it fall back to the stepper
# path. The skip field caps the word count one lane can carry; longer
# rejection chains (p ~ 2**-500) resolve through the scalar slow path.
_FIELD_BITS = 16
_SKIP_BITS = 9
_SKIP_MASK = (1 << _SKIP_BITS) - 1
_RES_SHIFT = 4 + _SKIP_BITS

_INV_2_53 = 1.0 / 9007199254740992.0  # 2**-53, as CPython's random()

# _pool goes dense (full-width scan) when at least one lane in this many
# is hot. The cutover is deliberately late: the dense scan is a few
# fixed O(m) passes while the walker pays per-round call overhead, so
# the walker only wins when a category is present but genuinely rare.
_DENSE_CUTOVER = 64

# Hypervisor/dom0 write fraction (a literal in the generator's stepper).
_HYP_WRITE_FRACTION = 0.2


def engine_for(system: SimulatedSystem) -> SimulationEngine:
    """The engine selected by ``config.kernel`` (and ``REPRO_KERNEL``).

    ``reference``/``batched`` are explicit and always honoured — forcing
    ``batched`` with the sanitizer or tracer attached is supported (the
    bail-out seams feed them the identical event stream) and is how the
    differential CI jobs prove it. ``auto`` resolves via the
    ``REPRO_KERNEL`` environment override if set, otherwise picks the
    batched kernel except when an observer (sanitizer/tracer) is
    attached — the conservative default keeps opt-in diagnostics on the
    reference loop they were written against.
    """
    kind = getattr(system.config, "kernel", "auto")
    if kind == "auto":
        kind = os.environ.get(_KERNEL_ENV) or "auto"
    if kind == "reference":
        return SimulationEngine(system)
    if kind == "batched":
        return BatchedEngine(system)
    if system.sanitizer is not None or system.tracer is not None:
        return SimulationEngine(system)
    return BatchedEngine(system)


def stream_chunk_shim(workload, vcpu_index: int, count: int) -> List[tuple]:
    """``stream_chunk`` for workloads that only expose ``next_access``.

    Materialises one access at a time through the workload's own
    ``next_access``, so arbitrary (possibly cross-vCPU-coupled)
    generators stay exact — there is no lookahead to reorder their
    internal draws beyond the ``count`` the caller batches.
    """
    out = []
    next_access = workload.next_access
    for _ in range(count):
        try:
            access = next_access(vcpu_index)
        except StopIteration:
            break
        out.append(
            (access.initiator, access.guest_page, access.block_index, access.is_write)
        )
    return out


def _block_words() -> int:
    raw = os.environ.get(_BLOCK_WORDS_ENV)
    if not raw:
        return _DEFAULT_BLOCK_WORDS
    return max(_MIN_BLOCK_WORDS, int(raw))


def _shifted(array, k: int, fill, m: int, dtype):
    """``array`` advanced by ``k`` offsets, padded with ``fill``."""
    out = _np.empty(m, dtype=dtype)
    keep = m - k if m > k else 0
    out[:keep] = array[k:]
    out[keep:] = fill
    return out


def _pool(first, idx, hot, m: int, bits: int, pool: int, scratch=None):
    """Resolve one hot pool's rejection sampling for the lanes in ``hot``.

    ``getrandbits(bits)`` is ``word >> (32 - bits)``; the stepper redraws
    while the value is >= the pool size. ``hot`` holds the *access
    start* offsets ``i`` (chains start at ``i + 4``). Returns
    ``(accept, resolved)`` aligned to ``hot``: the accepting word
    offset (``m`` when the chain runs off the buffer — the caller's
    skip bound then marks the lane invalid) and the accepted value
    (0 on off-buffer lanes).

    Two strategies, chosen by hot-lane density:

    * Dense (>= 1 lane in 6): full-width scan. A chain starting at
      ``j`` accepts at the first offset >= ``j`` whose draw lands
      inside the pool, so a reverse running minimum over the accepting
      positions resolves every chain in a handful of O(m) passes.
    * Sparse: the stepper's redraw loop run over all chains at once —
      each round draws at every unresolved chain's offset, retires the
      accepting ones, advances the rest one word. ``bits`` is the pool
      size's bit length, so each round accepts with probability > 1/2
      and the active set dies off geometrically. Work scales with
      ``hot.size``, not ``m``, but each round costs fixed call
      overhead — hence the density cutover.
    """
    shift = _np.uint64(32 - bits)
    limit = _np.uint64(pool)
    if hot.size * _DENSE_CUTOVER >= m:
        if scratch is not None:
            draws = scratch["u64"]
            _np.right_shift(first, shift, out=draws)
            rejected = scratch["bool"]
            _np.greater_equal(draws, limit, out=rejected)
            candidate = scratch["i32d"]
            _np.multiply(rejected, m, out=candidate)
            candidate += idx
        else:
            draws = first >> shift
            rejected = draws >= limit
            candidate = idx + rejected.astype(_np.int32) * m
        # In-place reverse running minimum: first accepting offset >= j.
        reverse = candidate[::-1]
        _np.minimum.accumulate(reverse, out=reverse)
        start = hot + 4
        accept = candidate.take(_np.minimum(start, m - 1))
        accept[start >= m] = m
        resolved = draws.take(_np.minimum(accept, m - 1)).astype(_np.int32)
        return accept, resolved
    accept = _np.full(hot.shape, m, dtype=_np.int32)
    resolved = _np.zeros(hot.shape, dtype=_np.int32)
    active = _np.arange(hot.size, dtype=_np.int32)
    position = hot + 4
    while position.size:
        inside = position < m
        if not inside.all():
            active = active[inside]
            position = position[inside]
            if not position.size:
                break
        draws = first.take(position) >> shift
        accepted = draws < limit
        if accepted.any():
            retired = active[accepted]
            accept[retired] = position[accepted]
            resolved[retired] = draws[accepted].astype(_np.int32)
            rejected = ~accepted
            active = active[rejected]
            position = position[rejected]
        position += 1
    return accept, resolved


def _encode(words, enc) -> list:
    """Fully-resolved access lanes: one packed int per word offset.

    ``words`` is a uint64 ndarray of raw MT19937 output words. Lane
    ``i`` describes the complete access that would *start* at word
    ``i`` (category draw at ``i``/``i+1``, base write draw at
    ``i+2``/``i+3``, category-specific draws after):

    =====  ========================================================
    bits   meaning
    =====  ========================================================
    0-2    category: ``bisect_right(cumulative, random()*cum_total)``
           clamped to ``_PRIVATE_HOT`` — computed as the sum of the
           same eight IEEE ``>=`` compares the bisection performs
    3      the access's *final* write flag: the base
           ``random() < write_fraction`` draw, overridden by the
           category's own fraction draw where the stepper overrides
    4-12   total words the access consumes (4 or 6 for the walker
           categories; ``chain + 5`` or ``chain + 7`` for the hot
           ones). 0 is the saturation sentinel: the chain outgrew
           the field, resolve through :meth:`_VmStream.slow`
    13-28  the accepted hot-pool draw of this lane's category
    =====  ========================================================

    A lane whose access would read past the end of the buffer is ``-1``
    (invalid): the consumer refills, which re-bases the access to
    offset 0 of a longer buffer. Every float op matches CPython
    exactly: ``(a*2**26 + b)`` with ``a < 2**27, b < 2**26`` is exact
    at each step in both uint64 and float64, and all threshold/category
    compares are the same IEEE operations the scalar code performs.
    """
    m = len(words) - 1
    if m <= 0:
        return [-1]
    scratch = enc.scratch(m)
    first = words[:m]
    # value[i] = random() drawn at words i/i+1, built in uint64 (exact:
    # (a*2**26 + b) < 2**53) and converted once.
    acc = scratch["u64"]
    _np.right_shift(first, 5, out=acc)
    acc *= 67108864
    low = scratch["u64b"]
    _np.right_shift(words[1:], 6, out=low)
    acc += low
    value = scratch["f64"]
    _np.multiply(acc, _INV_2_53, out=value)
    scaled = scratch["f64b"]
    _np.multiply(value, enc.cum_total, out=scaled)
    thresholds = enc.cum_list
    # bisect_right(c, x) counts entries <= x; x >= c is the exact IEEE
    # complement of x < c (no NaNs here), so the sum reproduces it.
    flag = scratch["bool"]
    category = scratch["u8"]
    _np.greater_equal(scaled, thresholds[0], out=flag)
    category[:] = flag
    for threshold in thresholds[1:]:
        _np.greater_equal(scaled, threshold, out=flag)
        category += flag
    _np.minimum(category, 7, out=category)
    idx = enc.idx(m)
    _np.less(value, enc.write_fraction, out=flag)
    is_write = _shifted(flag, 2, False, m, _np.bool_)
    skip = scratch["i32"]
    skip.fill(6)
    if enc.private_walk:
        _np.equal(category, 6, out=flag)
        skip -= flag
        skip -= flag
    resolved = scratch["i32b"]
    resolved.fill(0)
    # Private-hot lanes are resolved whenever present — not gated on the
    # profile's probability, because the bisection clamp can land on
    # category 7 even at zero probability (float rounding can make
    # value*cum_total == cum_total), exactly as the stepper's can.
    _np.equal(category, 7, out=flag)
    hot = flag.nonzero()[0].astype(_np.int32)
    if hot.size:
        accept_p, resolved_p = _pool(
            first, idx, hot, m, enc.private_bits, enc.private_pool, scratch
        )
        skip[hot] += accept_p - hot - 5
        resolved[hot] = resolved_p
    if enc.shared_walk or enc.shared_hot:
        shared_flag = scratch["boolb"]
        _np.less(value, enc.shared_write_fraction, out=shared_flag)
        if enc.shared_walk:
            override = _shifted(shared_flag, 4, False, m, _np.bool_)
            mask = category == 4
            is_write = is_write ^ (mask & (override ^ is_write))
        if enc.shared_hot:
            _np.equal(category, 5, out=flag)
            hot = flag.nonzero()[0].astype(_np.int32)
            if hot.size:
                accept_s, resolved_s = _pool(
                    first, idx, hot, m, enc.shared_bits, enc.shared_pool, scratch
                )
                skip[hot] += accept_s - hot - 3
                resolved[hot] = resolved_s
                is_write[hot] = shared_flag.take(
                    _np.minimum(accept_s + 1, m - 1)
                )
    if enc.content_walk or enc.content_hot:
        content_flag = scratch["boolb"]
        _np.less(value, enc.content_write_fraction, out=content_flag)
        if enc.content_walk:
            override = _shifted(content_flag, 4, False, m, _np.bool_)
            mask = category == 0
            is_write = is_write ^ (mask & (override ^ is_write))
        if enc.content_hot:
            _np.equal(category, 1, out=flag)
            hot = flag.nonzero()[0].astype(_np.int32)
            if hot.size:
                accept_c, resolved_c = _pool(
                    first, idx, hot, m, enc.content_bits, enc.content_pool, scratch
                )
                skip[hot] += accept_c - hot - 3
                resolved[hot] = resolved_c
                is_write[hot] = content_flag.take(
                    _np.minimum(accept_c + 1, m - 1)
                )
    if enc.hyp_dom0:
        hyp_flag = scratch["boolb"]
        _np.less(value, _HYP_WRITE_FRACTION, out=hyp_flag)
        override = _shifted(hyp_flag, 4, False, m, _np.bool_)
        mask = (category == 2) | (category == 3)
        is_write = is_write ^ (mask & (override ^ is_write))
    # Invalidity / saturation (order matters: the bound uses true skips).
    work = scratch["i32d"]
    _np.add(idx, skip, out=work)
    bad = scratch["boolb"]
    _np.greater_equal(work, m, out=bad)
    _np.greater(skip, _SKIP_MASK, out=flag)
    skip[flag] = 0
    lanes = scratch["i32c"]
    lanes[:] = category
    _np.copyto(work, is_write)
    work <<= 3
    lanes += work
    skip <<= 4
    lanes += skip
    resolved <<= _RES_SHIFT
    lanes += resolved
    lanes[bad] = -1
    return lanes.tolist()


class _VmStream:
    """Per-VM word-path state: the stream, its buffer, and the encode
    parameters. One instance serves one VM for one phase."""

    __slots__ = (
        "stream",
        "words",
        "encoded",
        "pointer",
        "consumed",
        "block_words",
        "cum_list",
        "cum_total",
        "write_fraction",
        "shared_write_fraction",
        "content_write_fraction",
        "private_bits",
        "private_pool",
        "shared_bits",
        "shared_pool",
        "content_bits",
        "content_pool",
        "private_walk",
        "shared_walk",
        "shared_hot",
        "content_walk",
        "content_hot",
        "hyp_dom0",
        "_idx_full",
        "_scratch_full",
    )

    def __init__(self, workload: VmWorkload, block_words: int) -> None:
        self.stream = WordStream(workload._rng)
        cumulative = list(workload._cumulative)
        self.cum_list = cumulative
        self.cum_total = workload._cum_total
        self.write_fraction = workload._write_fraction
        self.shared_write_fraction = workload.shared_write_fraction
        self.content_write_fraction = workload._content_write_fraction
        self.private_bits = workload._private_hot_bits
        self.private_pool = workload.private_hot_blocks
        self.shared_bits = workload._shared_hot_bits
        self.shared_pool = workload.shared_hot_blocks
        self.content_bits = workload._content_hot_bits
        self.content_pool = workload.content_hot_blocks
        # Category presence: skip the encode passes of categories the
        # cumulative table cannot select (empty probability intervals).
        present = [
            cumulative[c] > (cumulative[c - 1] if c else 0.0) for c in range(8)
        ]
        self.content_walk = present[0]
        self.content_hot = present[1]
        self.hyp_dom0 = present[2] or present[3]
        self.shared_walk = present[4]
        self.shared_hot = present[5]
        self.private_walk = present[6]
        self.block_words = block_words
        self.words = _np.empty(0, dtype=_np.uint64)
        self.encoded: list = [-1]  # forces a refill at the first access
        self.pointer = 0
        self.consumed = 0
        self._idx_full = None
        self._scratch_full = None

    def idx(self, m: int):
        """0..m-1 as int32: a prefix view of one capacity-sized arange.

        Buffer lengths vary slightly per refill (the unconsumed tail is
        carried over), so caching per exact length would accumulate an
        array per refill; a single over-allocated arange serves every
        length as a view.
        """
        cached = self._idx_full
        if cached is None or len(cached) < m:
            cached = self._idx_full = _np.arange(
                max(m, self.block_words + 2048), dtype=_np.int32
            )
        return cached[:m]

    def scratch(self, m: int) -> dict:
        """Reusable length-``m`` work buffers for :func:`_encode`.

        One capacity-sized allocation per dtype slot, sliced to ``m`` on
        each call: the encode passes all write through ``out=`` into
        these, which keeps the ~10 full-width temporaries an encode
        would otherwise allocate (and their page-faulting churn) off
        the refill path entirely.
        """
        full = self._scratch_full
        if full is None or len(full["u64"]) < m:
            cap = max(m, self.block_words + 2048)
            full = self._scratch_full = {
                "u64": _np.empty(cap, dtype=_np.uint64),
                "u64b": _np.empty(cap, dtype=_np.uint64),
                "f64": _np.empty(cap, dtype=_np.float64),
                "f64b": _np.empty(cap, dtype=_np.float64),
                "u8": _np.empty(cap, dtype=_np.uint8),
                "i32": _np.empty(cap, dtype=_np.int32),
                "i32b": _np.empty(cap, dtype=_np.int32),
                "i32c": _np.empty(cap, dtype=_np.int32),
                "i32d": _np.empty(cap, dtype=_np.int32),
                "bool": _np.empty(cap, dtype=_np.bool_),
                "boolb": _np.empty(cap, dtype=_np.bool_),
            }
        return {name: buf[:m] for name, buf in full.items()}

    def refill(self, pointer: int) -> int:
        """Bank ``pointer`` consumed words, fetch a fresh block, rebuild
        the packed lanes; returns the new pointer (0)."""
        self.consumed += pointer
        tail = self.words[pointer:]
        fresh = self.stream.raw(self.block_words)
        self.words = _np.concatenate((tail, fresh)) if len(tail) else fresh
        self.encoded = _encode(self.words, self)
        return 0

    def slow(
        self,
        pointer: int,
        bits: int,
        pool: int,
        override_fraction: Optional[float],
    ) -> Tuple[int, bool, int]:
        """Scalar resolution of a hot draw the packed lane cannot carry
        (a rejection chain longer than the skip field).

        Walks the raw words exactly as the stepper's rejection loop
        does, refilling — which re-bases the access to offset 0 of a
        longer buffer — whenever the chain outruns it. Returns
        ``(draw, is_write_override, new_pointer)``; the override bool is
        meaningful only when ``override_fraction`` is given (the base
        write flag in the lane stays valid otherwise). The caller must
        reload ``encoded`` afterwards.
        """
        shift = 32 - bits
        while True:
            words = self.words
            n = len(words)
            j = pointer + 4
            accepted = -1
            while j < n:
                draw = int(words[j]) >> shift
                j += 1
                if draw < pool:
                    accepted = draw
                    break
            if accepted >= 0:
                if override_fraction is None:
                    return accepted, False, j
                if j + 1 < n:
                    value = (
                        (int(words[j]) >> 5) * 67108864.0
                        + (int(words[j + 1]) >> 6)
                    ) * _INV_2_53
                    return accepted, value < override_fraction, j + 2
            pointer = self.refill(pointer)

    def finish(self, pointer: int) -> None:
        """Phase over: write the source RNG to the consumed position."""
        self.stream.sync_back(self.consumed + pointer)


def _word_eligible(workload) -> bool:
    """Whether a workload can run on the packed word path.

    Exact-type check, not isinstance: the packed encoding replays
    ``VmWorkload.make_stepper``'s draw arithmetic literally, so any
    subclass (or foreign workload such as ``PatternWorkload``) with
    different generation logic must take the chunk/step paths instead —
    an isinstance match would silently diverge.
    """
    if not HAVE_NUMPY or type(workload) is not VmWorkload:
        return False
    return max(
        workload._private_hot_bits,
        workload._shared_hot_bits,
        workload._content_hot_bits,
    ) <= _FIELD_BITS


class BatchedEngine(SimulationEngine):
    """Drop-in engine with the batched `_run_phase` (see module docs)."""

    def _run_phase(
        self, clocks: List[int], budget: int, migrate: bool
    ) -> List[int]:
        # Heap tuples carry the vCPU's remaining budget as a fourth
        # field — never compared ((time, seq) is already unique) and one
        # list-indexing pair cheaper per access than a side array.
        heap: List[Tuple[int, int, int, int]] = [
            (local_time, index, index, budget)
            for index, local_time in enumerate(clocks)
        ]
        # list-of-tuples heapify orders identically to the reference
        # loop's repeated heappush (same comparison key, same final pop
        # sequence; entries are unique so layout differences are moot).
        heapify(heap)
        final = list(clocks)
        vcpus = self._vcpus
        sequence = len(vcpus)
        think = self.config.think_cycles
        migrate = migrate and self._next_migration is not None
        infinity = float("inf")
        next_migration = self._next_migration if migrate else infinity
        metrics = self._metrics
        next_sample = self._next_sample
        # One boundary compare per access covers both the metrics window
        # and the migration window (each is checked in reference order
        # inside the rare branch).
        boundary = next_sample if next_sample < next_migration else next_migration
        caches = self._caches
        mem_translate = self._mem_translate
        transact = self._transact
        guest_initiator = Initiator.GUEST
        hyp_initiator = Initiator.HYPERVISOR
        dom0_initiator = Initiator.DOM0
        untracked = UNTRACKED_VM
        ro_shared = PageType.RO_SHARED
        write_to_page = self._write_to_page
        page_shift = self._page_shift
        rw_shared_translate = self._rw_shared_translate
        reg_blocks = self.system.registry._blocks
        workloads = self._workloads
        steppers = self._steppers
        vm_ids = [v.vm_id for v in vcpus]
        vm_memos = [self._xlate_memo[v.vm_id] for v in vcpus]
        hyp_memo = self._xlate_memo[HYPERVISOR_SPACE]
        dom0_memo = self._xlate_memo[DOM0_VM_ID]
        cores = [v.core for v in vcpus]
        stats = self.stats
        l1_by_page_type = stats.l1_accesses_by_page_type
        # Geometry is uniform across the private hierarchies (one config
        # builds them all), so masks/ways/latencies hoist to ints, and
        # the per-core hierarchies and their set lists hoist to lists.
        hierarchies = [caches[core] for core in range(len(caches))]
        l1_sets_by_core = [h._l1_sets for h in hierarchies]
        l2_sets_by_core = [h._l2_sets for h in hierarchies]
        any_hierarchy = hierarchies[0]
        l1_mask = any_hierarchy._l1_mask
        l2_mask = any_hierarchy._l2_mask
        l1_ways = any_hierarchy._l1_ways
        l1_latency = any_hierarchy.l1_latency
        l12_latency = l1_latency + any_hierarchy.l2_latency
        private_vcpu_base = generator.PRIVATE_BASE
        private_vcpu_stride = generator.PRIVATE_VCPU_STRIDE
        shared_hot_base = generator.SHARED_HOT_BASE
        content_hot_base = generator.CONTENT_HOT_BASE

        # --- generation-path selection (per VM / per vCPU) -----------
        block_words = _block_words()
        vm_streams: dict = {}  # vm_id -> _VmStream (word path)
        for vm_id, workload in workloads.items():
            if _word_eligible(workload):
                vm_streams[vm_id] = _VmStream(workload, block_words)
        # slot[index]: the vCPU's _VmStream, or None (chunk/step path).
        slots = [vm_streams.get(vm_id) for vm_id in vm_ids]
        # Private-pool bases and cursors, per heap index (word path).
        private_bases = []
        private_cursors = []
        shared_cursors = []
        content_cursors = []
        hyp_cursors = []
        dom0_cursors = []
        for position, v in enumerate(vcpus):
            workload = workloads.get(v.vm_id)
            if slots[position] is not None:
                private_bases.append(
                    private_vcpu_base + v.index * private_vcpu_stride
                )
                private_cursors.append(workload._private_streams[v.index])
                shared_cursors.append(workload._shared_stream)
                content_cursors.append(workload._content_stream)
                hyp_cursors.append(workload._hyp_stream)
                dom0_cursors.append(workload._dom0_stream)
            else:
                private_bases.append(0)
                private_cursors.append(None)
                shared_cursors.append(None)
                content_cursors.append(None)
                hyp_cursors.append(None)
                dom0_cursors.append(None)
        # Chunk path: workloads that materialise runs exactly.
        chunk_workloads = []
        chunk_buffers = []
        chunk_positions = []
        for position, v in enumerate(vcpus):
            workload = workloads.get(v.vm_id)
            use_chunk = (
                slots[position] is None
                and workload is not None
                and getattr(workload, "stream_chunk_independent", False)
                and hasattr(workload, "stream_chunk")
            )
            chunk_workloads.append(workload if use_chunk else None)
            chunk_buffers.append([] if use_chunk else None)
            chunk_positions.append(0)
        vcpu_indices = [v.index for v in vcpus]

        local_time = self.now
        try:
            if heap:
                item = heappop(heap)
            else:
                item = None
            while item is not None:
                local_time, _, index, count = item
                if local_time >= boundary:
                    if local_time >= next_sample:
                        self.now = local_time
                        next_sample = metrics.sample(local_time)
                    if migrate and local_time >= next_migration:
                        self.now = local_time
                        self._maybe_migrate()
                        next_migration = self._next_migration
                        cores = [v.core for v in vcpus]
                    boundary = (
                        next_sample
                        if next_sample < next_migration
                        else next_migration
                    )
                # ---- generation --------------------------------------
                vm_stream = slots[index]
                if vm_stream is not None:
                    pointer = vm_stream.pointer
                    encoded = vm_stream.encoded
                    word = encoded[pointer]
                    if word < 0:
                        # Lane cut by the buffer edge: refill re-bases
                        # the access to offset 0 of a longer buffer (and
                        # keeps growing it for pathological chains).
                        while True:
                            pointer = vm_stream.refill(pointer)
                            encoded = vm_stream.encoded
                            word = encoded[0]
                            if word >= 0:
                                break
                    category = word & 7
                    initiator = guest_initiator
                    if category == 7:  # private hot
                        skip = (word >> 4) & 511
                        if skip:
                            draw = word >> 13
                            vm_stream.pointer = pointer + skip
                        else:  # saturated lane: scalar chain walk
                            draw, _over, new_pointer = vm_stream.slow(
                                pointer,
                                vm_stream.private_bits,
                                vm_stream.private_pool,
                                None,
                            )
                            vm_stream.pointer = new_pointer
                        is_write = (word & 8) != 0
                        guest_page = private_bases[index] + (draw >> 6)
                        block_index = draw & 63
                    elif category == 6:  # private stream
                        is_write = (word & 8) != 0
                        vm_stream.pointer = pointer + 4
                        cursor = private_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                    elif category == 5:  # shared hot
                        skip = (word >> 4) & 511
                        if skip:
                            draw = word >> 13
                            is_write = (word & 8) != 0
                            vm_stream.pointer = pointer + skip
                        else:
                            draw, is_write, new_pointer = vm_stream.slow(
                                pointer,
                                vm_stream.shared_bits,
                                vm_stream.shared_pool,
                                vm_stream.shared_write_fraction,
                            )
                            vm_stream.pointer = new_pointer
                        guest_page = shared_hot_base + (draw >> 6)
                        block_index = draw & 63
                    elif category == 4:  # shared stream
                        is_write = (word & 8) != 0
                        vm_stream.pointer = pointer + 6
                        cursor = shared_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                    elif category == 0:  # content stream
                        is_write = (word & 8) != 0
                        vm_stream.pointer = pointer + 6
                        cursor = content_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                    elif category == 1:  # content hot
                        skip = (word >> 4) & 511
                        if skip:
                            draw = word >> 13
                            is_write = (word & 8) != 0
                            vm_stream.pointer = pointer + skip
                        else:
                            draw, is_write, new_pointer = vm_stream.slow(
                                pointer,
                                vm_stream.content_bits,
                                vm_stream.content_pool,
                                vm_stream.content_write_fraction,
                            )
                            vm_stream.pointer = new_pointer
                        guest_page = content_hot_base + (draw >> 6)
                        block_index = draw & 63
                    elif category == 2:  # hypervisor
                        is_write = (word & 8) != 0
                        vm_stream.pointer = pointer + 6
                        cursor = hyp_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                        initiator = hyp_initiator
                    else:  # dom0
                        is_write = (word & 8) != 0
                        vm_stream.pointer = pointer + 6
                        cursor = dom0_cursors[index]
                        guest_page = cursor.base + cursor.page
                        block_index = cursor.block
                        nxt = block_index + 1
                        if nxt == 64:
                            cursor.block = 0
                            cursor.page = (cursor.page + 1) % cursor.pages
                        else:
                            cursor.block = nxt
                        initiator = dom0_initiator
                else:
                    buffer = chunk_buffers[index]
                    if buffer is not None:
                        position = chunk_positions[index]
                        if position >= len(buffer):
                            # Clamp to the remaining phase budget so the
                            # workload's positions end the phase exactly
                            # where the reference loop leaves them (the
                            # max(1, ...) covers the budget-0 edge where
                            # the reference still generates one access).
                            buffer = chunk_workloads[index].stream_chunk(
                                vcpu_indices[index],
                                max(1, min(_CHUNK_ACCESSES, count)),
                            )
                            if not buffer:
                                raise StopIteration(
                                    f"vCPU {vcpu_indices[index]} trace exhausted"
                                )
                            chunk_buffers[index] = buffer
                            position = 0
                        initiator, guest_page, block_index, is_write = buffer[
                            position
                        ]
                        chunk_positions[index] = position + 1
                    else:
                        (
                            initiator,
                            guest_page,
                            block_index,
                            is_write,
                        ) = steppers[index]()
                # ---- translation (reference order, call-free memo) ---
                vm_id = vm_ids[index]
                if initiator is guest_initiator:
                    vm_tag = vm_id
                    vm_memo = vm_memos[index]
                    if guest_page in vm_memo:
                        host_page, page_type = vm_memo[guest_page]
                        if is_write and page_type is ro_shared:
                            self.now = local_time
                            host_page, page_type = write_to_page(
                                vm_id, guest_page
                            )
                    else:
                        self.now = local_time
                        if is_write:
                            entry = write_to_page(vm_id, guest_page)
                        else:
                            entry = mem_translate(vm_id, guest_page)
                        vm_memo[guest_page] = entry
                        host_page, page_type = entry
                else:
                    vm_tag = untracked
                    if initiator is hyp_initiator:
                        if guest_page in hyp_memo:
                            host_page, page_type = hyp_memo[guest_page]
                        else:
                            self.now = local_time
                            host_page, page_type = rw_shared_translate(
                                HYPERVISOR_SPACE, guest_page
                            )
                    else:
                        if guest_page in dom0_memo:
                            host_page, page_type = dom0_memo[guest_page]
                        else:
                            self.now = local_time
                            host_page, page_type = rw_shared_translate(
                                DOM0_VM_ID, guest_page
                            )
                block = (host_page << page_shift) | block_index
                core = cores[index]

                l1_by_page_type[page_type] += 1

                # ---- cache probe (reference order, call-free LRU) ----
                l1_set = l1_sets_by_core[core][block & l1_mask]
                if block in l1_set:
                    l1_line = l1_set[block]
                    del l1_set[block]
                    l1_set[block] = l1_line
                    hierarchies[core].l1_hits += 1
                    latency = l1_latency
                    if is_write:
                        l1_line.dirty = True
                        l2_sets_by_core[core][block & l2_mask][block].dirty = True
                        if block in reg_blocks:
                            state = reg_blocks[block]
                            if state.owner == core and state.sharers == {core}:
                                state.dirty = True
                            else:
                                self.now = local_time
                                latency += transact(
                                    core, vm_id, block, True, page_type,
                                    initiator, vm_tag, hierarchies[core], True,
                                )
                        else:
                            self.now = local_time
                            latency += transact(
                                core, vm_id, block, True, page_type,
                                initiator, vm_tag, hierarchies[core], True,
                            )
                else:
                    l2_set = l2_sets_by_core[core][block & l2_mask]
                    if block in l2_set:
                        l2_line = l2_set[block]
                        del l2_set[block]
                        l2_set[block] = l2_line
                        hierarchy = hierarchies[core]
                        hierarchy.l2_hits += 1
                        if is_write:
                            l2_line.dirty = True
                        if len(l1_set) >= l1_ways:
                            del l1_set[next(iter(l1_set))]
                        l1_set[block] = CacheLine(block, vm_tag, is_write)
                        latency = l12_latency
                        if is_write:
                            if block in reg_blocks:
                                state = reg_blocks[block]
                                if (
                                    state.owner == core
                                    and state.sharers == {core}
                                ):
                                    state.dirty = True
                                else:
                                    self.now = local_time
                                    latency += transact(
                                        core, vm_id, block, True, page_type,
                                        initiator, vm_tag, hierarchy, True,
                                    )
                            else:
                                self.now = local_time
                                latency += transact(
                                    core, vm_id, block, True, page_type,
                                    initiator, vm_tag, hierarchy, True,
                                )
                    else:
                        hierarchy = hierarchies[core]
                        hierarchy.misses += 1
                        self.now = local_time
                        latency = l12_latency + transact(
                            core, vm_id, block, is_write, page_type,
                            initiator, vm_tag, hierarchy, False,
                        )

                # ---- schedule (provably the reference pop order) -----
                next_time = local_time + think + latency
                count -= 1
                if count > 0:
                    sequence += 1
                    # push-then-pop == (pop current min, insert new) ==
                    # (new itself when it is <= the heap minimum). Keys
                    # are unique, so `<` fully orders them.
                    fresh = (next_time, sequence, index, count)
                    if heap and heap[0] < fresh:
                        item = heapreplace(heap, fresh)
                    else:
                        item = fresh
                else:
                    final[index] = next_time
                    item = heappop(heap) if heap else None
        finally:
            # Settle every word stream back into its Random — also on a
            # StopIteration/bail so callers observe a live generator.
            for vm_stream in vm_streams.values():
                vm_stream.finish(vm_stream.pointer)
        self.now = local_time
        stats.l1_accesses += budget * len(vcpus)
        self._next_sample = next_sample
        if os.environ.get(_VALIDATE_ENV):
            # Structural self-check of every cache through the packed
            # mirror (repro.cache.setassoc) — differential CI runs with
            # this on to catch any LRU-order drift the call-free dict
            # spellings could introduce.
            for hierarchy in hierarchies:
                hierarchy.l1.validate_packed()
                hierarchy.l2.validate_packed()
        return final
