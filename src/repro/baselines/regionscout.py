"""RegionScout (Moshovos, ISCA 2005) — a region-based snoop filter.

The closest prior art the paper compares against conceptually: instead
of VM boundaries, RegionScout filters on coarse-grained *regions* of
memory (here one 4 KiB page = 64 blocks by default). Two per-core
structures do the work:

* **CRH** (Cached Region Hash) — a small counting hash summarising which
  regions the core caches. No false negatives: if the CRH says "absent",
  the core provably holds no block of the region, so it need not be
  snooped. Hash collisions cause false positives (extra snoops), which
  is the capacity/energy trade-off of the original design.
* **NSRT** (Not-Shared Region Table) — regions a previous miss found to
  be globally un-shared. A hit lets the requester skip snooping entirely
  and go straight to memory.

An NSRT entry is conservatively validated against the global region
sharer map at use time — modelling the snoop-driven invalidation the
real design performs when another node requests the region.

Unlike virtual snooping, RegionScout needs per-core hardware tables but
is oblivious to VM migration — the comparison experiment
(:mod:`repro.experiments.baseline_comparison`) shows exactly that
trade-off.

Hot-path structure
------------------

``plan`` and ``observe_outcome`` run once per coherence transaction, and
the original formulation walked every core's tracker on each call —
O(num_cores) dictionary probes per transaction, which made this baseline
an order of magnitude slower than the virtual-snooping filter. The
rewrite keeps two *derived* maps on the filter, maintained incrementally
by the trackers on exact-count and CRH-bucket transitions:

* ``_region_sharers``: region -> set of cores whose exact count is
  non-zero (the ground truth ``caches_region`` answers), and
* ``_bucket_cores``: per CRH bucket, the set of cores whose counting
  hash is non-zero there (the ``crh_possibly_present`` answers — all
  cores hash a region to the same bucket, so one shared table serves
  every requester).

Both plans and the filter's counters fall out of set sizes in O(1), and
plans are additionally memoised per (core, bucket, page_type) with a
per-bucket epoch bumped on membership changes — the same
memoise-with-epoch scheme :class:`repro.core.filter.VirtualSnoopFilter`
uses against the snoop-domain version. Region-to-bucket hashes are
memoised in a shared table so the multiply-mod runs once per region.
Every counter update keeps exactly the values the per-core walk would
have produced (see the inline derivations), which is what makes the
rewrite invisible to the golden corpus.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.cache.line import CacheLine
from repro.cache.setassoc import CacheObserver
from repro.coherence.plan import RequestPlan
from repro.hypervisor.hypervisor import PlacementListener
from repro.mem.pagetype import PageType

DEFAULT_REGION_BLOCKS = 64  # one 4 KiB page of 64 B blocks
DEFAULT_CRH_BUCKETS = 256
DEFAULT_NSRT_ENTRIES = 32

_HASH_MULTIPLIER = 2654435761


class RegionTracker(CacheObserver):
    """Per-core region occupancy: exact counts plus the CRH summary.

    Standalone trackers (no ``owner``) behave exactly as before; trackers
    created by :class:`RegionScoutFilter` additionally maintain the
    filter's shared region-sharer and bucket-membership maps on count
    transitions, which is what makes the filter's plan path O(1).
    """

    def __init__(
        self,
        region_bits: int,
        crh_buckets: int,
        core: int = -1,
        owner: Optional["RegionScoutFilter"] = None,
    ) -> None:
        self.region_bits = region_bits
        self.crh_buckets = crh_buckets
        self.core = core
        self._owner = owner
        self._region_counts: Dict[int, int] = {}
        self._crh = [0] * crh_buckets

    def _region_of(self, block: int) -> int:
        return block >> self.region_bits

    def _bucket(self, region: int) -> int:
        # Multiplicative hashing spreads sequential regions across buckets.
        return (region * _HASH_MULTIPLIER) % self.crh_buckets

    def on_insert(self, line: CacheLine) -> None:
        # Inlined _region_of/_bucket: this observer fires on every L2
        # insert, and the helper-call overhead is measurable there.
        region = line.block >> self.region_bits
        counts = self._region_counts
        count = counts.get(region, 0)
        counts[region] = count + 1
        if count == 0:
            owner = self._owner
            if owner is None:
                bucket = (region * _HASH_MULTIPLIER) % self.crh_buckets
            else:
                bucket = owner.bucket_of(region)
                sharers = owner._region_sharers.get(region)
                if sharers is None:
                    owner._region_sharers[region] = {self.core}
                else:
                    sharers.add(self.core)
            crh = self._crh
            crh[bucket] += 1
            if owner is not None and crh[bucket] == 1:
                owner._bucket_cores[bucket].add(self.core)
                owner._bucket_epochs[bucket] += 1

    def on_evict(self, line: CacheLine) -> None:
        self._remove(line)

    def on_invalidate(self, line: CacheLine) -> None:
        self._remove(line)

    def _remove(self, line: CacheLine) -> None:
        region = line.block >> self.region_bits
        counts = self._region_counts
        count = counts.get(region, 0)
        if count <= 0:
            raise RuntimeError(f"region counter underflow for region {region:#x}")
        if count == 1:
            del counts[region]
            owner = self._owner
            if owner is None:
                bucket = (region * _HASH_MULTIPLIER) % self.crh_buckets
            else:
                bucket = owner.bucket_of(region)
                sharers = owner._region_sharers.get(region)
                if sharers is not None:
                    sharers.discard(self.core)
                    if not sharers:
                        del owner._region_sharers[region]
            crh = self._crh
            crh[bucket] -= 1
            if owner is not None and crh[bucket] == 0:
                owner._bucket_cores[bucket].discard(self.core)
                owner._bucket_epochs[bucket] += 1
        else:
            counts[region] = count - 1

    def caches_region(self, region: int) -> bool:
        """Exact occupancy (ground truth, used for NSRT validation)."""
        return region in self._region_counts

    def crh_possibly_present(self, region: int) -> bool:
        """CRH answer: may return true for absent regions (collisions),
        never false for present ones."""
        return self._crh[self._bucket(region)] > 0


class RegionScoutFilter(PlacementListener):
    """Drop-in alternative to :class:`VirtualSnoopFilter`.

    Produces a :class:`RequestPlan` per transaction from the CRH/NSRT
    state. Filtering is safe by construction: a core excluded from the
    destination set provably caches no block of the region, so it can
    hold no tokens for the requested block.
    """

    def __init__(
        self,
        num_cores: int,
        region_blocks: int = DEFAULT_REGION_BLOCKS,
        crh_buckets: int = DEFAULT_CRH_BUCKETS,
        nsrt_entries: int = DEFAULT_NSRT_ENTRIES,
    ) -> None:
        if region_blocks <= 0 or (region_blocks & (region_blocks - 1)) != 0:
            raise ValueError(f"region_blocks must be a power of two, got {region_blocks}")
        self.num_cores = num_cores
        self.region_bits = region_blocks.bit_length() - 1
        self.crh_buckets = crh_buckets
        self.all_cores: FrozenSet[int] = frozenset(range(num_cores))
        # Derived maps (see module docstring): region -> exact sharer
        # cores, and per-bucket CRH membership with change epochs. The
        # trackers keep them incrementally consistent with their counts.
        self._region_sharers: Dict[int, Set[int]] = {}
        self._bucket_cores: List[Set[int]] = [set() for _ in range(crh_buckets)]
        self._bucket_epochs: List[int] = [0] * crh_buckets
        # region -> CRH bucket, shared across all trackers (identical
        # hash everywhere), so the multiply-mod runs once per region.
        self._bucket_memo: Dict[int, int] = {}
        self.trackers: Dict[int, RegionTracker] = {
            core: RegionTracker(self.region_bits, crh_buckets, core=core, owner=self)
            for core in range(num_cores)
        }
        self.nsrt_entries = nsrt_entries
        self._nsrt: Dict[int, "OrderedDict[int, None]"] = {
            core: OrderedDict() for core in range(num_cores)
        }
        # Memoised plans: NSRT hits keyed (core, page_type) — the
        # own-core singleton never changes — and CRH plans keyed
        # (core, bucket, page_type), valid while the bucket's membership
        # epoch is unchanged (destinations depend only on membership).
        self._self_plans: Dict[Tuple[int, PageType], RequestPlan] = {}
        self._plan_cache: Dict[Tuple[int, int, PageType], Tuple[int, RequestPlan]] = {}
        # Statistics about the filter's own behaviour.
        self.nsrt_hits = 0
        self.crh_filtered_cores = 0
        self.false_positive_cores = 0

    def bucket_of(self, region: int) -> int:
        """The (memoised) CRH bucket every core hashes ``region`` into."""
        # The region->bucket mapping is a pure function of (region,
        # crh_buckets), so this memo has no epoch to consult — unlike
        # _plan_cache, whose entries go stale when bucket membership
        # changes and are therefore (epoch, plan) pairs.
        bucket = self._bucket_memo.get(region)  # repro-lint: disable=RPL120; pure hash memo, never invalidated
        if bucket is None:
            bucket = self._bucket_memo[region] = (
                region * _HASH_MULTIPLIER
            ) % self.crh_buckets
        return bucket

    # ------------------------------------------------------------------
    # Plan construction (same contract as VirtualSnoopFilter.plan).
    # ------------------------------------------------------------------

    def plan(
        self,
        core: int,
        vm_id: int,
        page_type: PageType,
        block: Optional[int] = None,
    ) -> RequestPlan:
        if block is None:
            return RequestPlan.broadcast(self.all_cores, page_type)
        region = block >> self.region_bits
        sharers = self._region_sharers.get(region)
        nsrt = self._nsrt[core]
        if region in nsrt:
            # Valid iff no *other* core caches the region (the sharer map
            # never keeps empty sets, so None means globally uncached).
            if sharers is None or (len(sharers) == 1 and core in sharers):
                self.nsrt_hits += 1
                key = (core, page_type)
                plan = self._self_plans.get(key)
                if plan is None:
                    plan = self._self_plans[key] = RequestPlan(
                        attempts=(frozenset((core,)),), page_type=page_type
                    )
                return plan
            # Snoop-driven invalidation: another node acquired the region.
            del nsrt[region]
        bucket = self._bucket_memo.get(region)
        if bucket is None:
            bucket = self._bucket_memo[region] = (
                region * _HASH_MULTIPLIER
            ) % self.crh_buckets
        bucket_cores = self._bucket_cores[bucket]
        # Counter bookkeeping, O(1) from set sizes. With B = bucket
        # members besides the requester and S = exact sharers besides the
        # requester, the per-core walk counted: every non-requester core
        # outside the bucket as CRH-filtered (num_cores - 1 - |B|), and
        # every bucket member not actually caching the region as a false
        # positive (|B| - |S|; caching a region implies a non-zero CRH
        # bucket, so S is always a subset of B).
        others_in_bucket = len(bucket_cores) - (core in bucket_cores)
        if sharers is None:
            sharers_elsewhere = 0
        else:
            sharers_elsewhere = len(sharers) - (core in sharers)
        self.false_positive_cores += others_in_bucket - sharers_elsewhere
        self.crh_filtered_cores += self.num_cores - 1 - others_in_bucket
        epoch = self._bucket_epochs[bucket]
        key2 = (core, bucket, page_type)
        cached = self._plan_cache.get(key2)
        if cached is not None and cached[0] == epoch:
            return cached[1]
        destinations = frozenset(bucket_cores) | {core}
        plan = RequestPlan(attempts=(destinations,), page_type=page_type)
        self._plan_cache[key2] = (epoch, plan)
        return plan

    def observe_outcome(self, core: int, block: int) -> None:
        """Post-transaction NSRT learning: if no other core holds the
        region, remember it as not-shared."""
        region = block >> self.region_bits
        sharers = self._region_sharers.get(region)
        if sharers is not None and not (len(sharers) == 1 and core in sharers):
            return
        nsrt = self._nsrt[core]
        nsrt[region] = None
        nsrt.move_to_end(region)
        while len(nsrt) > self.nsrt_entries:
            nsrt.popitem(last=False)

    def _region_shared_elsewhere(self, core: int, region: int) -> bool:
        sharers = self._region_sharers.get(region)
        return sharers is not None and not (len(sharers) == 1 and core in sharers)

    def _nsrt_valid(self, core: int, region: int) -> bool:
        if region not in self._nsrt[core]:
            return False
        # Snoop-driven invalidation: another node acquired the region.
        if self._region_shared_elsewhere(core, region):
            del self._nsrt[core][region]
            return False
        return True

    # ------------------------------------------------------------------
    # Snapshot support (warm-state reuse; see repro.sim.system).
    # ------------------------------------------------------------------

    def snapshot_state(self) -> dict:
        """Plain-data capture of all mutable filter state."""
        return {
            "counts": {
                core: dict(tracker._region_counts)
                for core, tracker in self.trackers.items()
            },
            "crh": {core: list(tracker._crh) for core, tracker in self.trackers.items()},
            "nsrt": {core: list(entries) for core, entries in self._nsrt.items()},
            "nsrt_hits": self.nsrt_hits,
            "crh_filtered_cores": self.crh_filtered_cores,
            "false_positive_cores": self.false_positive_cores,
        }

    def restore_state(self, state: dict) -> None:
        """Transplant a :meth:`snapshot_state` capture into this filter.

        Mutates the existing trackers in place (the caches hold them as
        observers) and rebuilds the derived sharer/bucket maps from the
        restored counts; plan caches are dropped, epochs restart at zero.
        """
        self._region_sharers.clear()
        for bucket_set in self._bucket_cores:
            bucket_set.clear()
        self._bucket_epochs = [0] * self.crh_buckets
        self._plan_cache.clear()
        self._self_plans.clear()
        for core, tracker in self.trackers.items():
            tracker._region_counts = dict(state["counts"][core])
            tracker._crh = list(state["crh"][core])
            for region in tracker._region_counts:
                sharers = self._region_sharers.get(region)
                if sharers is None:
                    self._region_sharers[region] = {core}
                else:
                    sharers.add(core)
            for bucket, value in enumerate(tracker._crh):
                if value > 0:
                    self._bucket_cores[bucket].add(core)
        for core, regions in state["nsrt"].items():
            nsrt = self._nsrt[core]
            nsrt.clear()
            for region in regions:
                nsrt[region] = None
        self.nsrt_hits = state["nsrt_hits"]
        self.crh_filtered_cores = state["crh_filtered_cores"]
        self.false_positive_cores = state["false_positive_cores"]

    # ------------------------------------------------------------------
    # PlacementListener interface — RegionScout ignores VM events.
    # ------------------------------------------------------------------

    def on_vcpu_placed(self, vm_id: int, core: int) -> None:
        pass

    def on_vcpu_displaced(self, vm_id: int, core: int) -> None:
        pass
