"""RegionScout (Moshovos, ISCA 2005) — a region-based snoop filter.

The closest prior art the paper compares against conceptually: instead
of VM boundaries, RegionScout filters on coarse-grained *regions* of
memory (here one 4 KiB page = 64 blocks by default). Two per-core
structures do the work:

* **CRH** (Cached Region Hash) — a small counting hash summarising which
  regions the core caches. No false negatives: if the CRH says "absent",
  the core provably holds no block of the region, so it need not be
  snooped. Hash collisions cause false positives (extra snoops), which
  is the capacity/energy trade-off of the original design.
* **NSRT** (Not-Shared Region Table) — regions a previous miss found to
  be globally un-shared. A hit lets the requester skip snooping entirely
  and go straight to memory.

An NSRT entry is conservatively validated against the global region
sharer map at use time — modelling the snoop-driven invalidation the
real design performs when another node requests the region.

Unlike virtual snooping, RegionScout needs per-core hardware tables but
is oblivious to VM migration — the comparison experiment
(:mod:`repro.experiments.baseline_comparison`) shows exactly that
trade-off.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, FrozenSet, Optional, Set

from repro.cache.line import CacheLine
from repro.cache.setassoc import CacheObserver
from repro.coherence.plan import RequestPlan
from repro.hypervisor.hypervisor import PlacementListener
from repro.mem.pagetype import PageType

DEFAULT_REGION_BLOCKS = 64  # one 4 KiB page of 64 B blocks
DEFAULT_CRH_BUCKETS = 256
DEFAULT_NSRT_ENTRIES = 32


class RegionTracker(CacheObserver):
    """Per-core region occupancy: exact counts plus the CRH summary."""

    def __init__(self, region_bits: int, crh_buckets: int) -> None:
        self.region_bits = region_bits
        self.crh_buckets = crh_buckets
        self._region_counts: Dict[int, int] = {}
        self._crh = [0] * crh_buckets

    def _region_of(self, block: int) -> int:
        return block >> self.region_bits

    def _bucket(self, region: int) -> int:
        # Multiplicative hashing spreads sequential regions across buckets.
        return (region * 2654435761) % self.crh_buckets

    def on_insert(self, line: CacheLine) -> None:
        region = self._region_of(line.block)
        count = self._region_counts.get(region, 0)
        if count == 0:
            self._crh[self._bucket(region)] += 1
        self._region_counts[region] = count + 1

    def on_evict(self, line: CacheLine) -> None:
        self._remove(line)

    def on_invalidate(self, line: CacheLine) -> None:
        self._remove(line)

    def _remove(self, line: CacheLine) -> None:
        region = self._region_of(line.block)
        count = self._region_counts.get(region, 0)
        if count <= 0:
            raise RuntimeError(f"region counter underflow for region {region:#x}")
        if count == 1:
            del self._region_counts[region]
            self._crh[self._bucket(region)] -= 1
        else:
            self._region_counts[region] = count - 1

    def caches_region(self, region: int) -> bool:
        """Exact occupancy (ground truth, used for NSRT validation)."""
        return region in self._region_counts

    def crh_possibly_present(self, region: int) -> bool:
        """CRH answer: may return true for absent regions (collisions),
        never false for present ones."""
        return self._crh[self._bucket(region)] > 0


class RegionScoutFilter(PlacementListener):
    """Drop-in alternative to :class:`VirtualSnoopFilter`.

    Produces a :class:`RequestPlan` per transaction from the CRH/NSRT
    state. Filtering is safe by construction: a core excluded from the
    destination set provably caches no block of the region, so it can
    hold no tokens for the requested block.
    """

    def __init__(
        self,
        num_cores: int,
        region_blocks: int = DEFAULT_REGION_BLOCKS,
        crh_buckets: int = DEFAULT_CRH_BUCKETS,
        nsrt_entries: int = DEFAULT_NSRT_ENTRIES,
    ) -> None:
        if region_blocks <= 0 or (region_blocks & (region_blocks - 1)) != 0:
            raise ValueError(f"region_blocks must be a power of two, got {region_blocks}")
        self.num_cores = num_cores
        self.region_bits = region_blocks.bit_length() - 1
        self.all_cores: FrozenSet[int] = frozenset(range(num_cores))
        self.trackers: Dict[int, RegionTracker] = {
            core: RegionTracker(self.region_bits, crh_buckets)
            for core in range(num_cores)
        }
        self.nsrt_entries = nsrt_entries
        self._nsrt: Dict[int, "OrderedDict[int, None]"] = {
            core: OrderedDict() for core in range(num_cores)
        }
        # Statistics about the filter's own behaviour.
        self.nsrt_hits = 0
        self.crh_filtered_cores = 0
        self.false_positive_cores = 0

    # ------------------------------------------------------------------
    # Plan construction (same contract as VirtualSnoopFilter.plan).
    # ------------------------------------------------------------------

    def plan(
        self,
        core: int,
        vm_id: int,
        page_type: PageType,
        block: Optional[int] = None,
    ) -> RequestPlan:
        if block is None:
            return RequestPlan.broadcast(self.all_cores, page_type)
        region = block >> self.region_bits
        if self._nsrt_valid(core, region):
            self.nsrt_hits += 1
            return RequestPlan(attempts=(frozenset((core,)),), page_type=page_type)
        destinations: Set[int] = {core}
        for other in range(self.num_cores):
            if other == core:
                continue
            tracker = self.trackers[other]
            if tracker.crh_possibly_present(region):
                destinations.add(other)
                if not tracker.caches_region(region):
                    self.false_positive_cores += 1
            else:
                self.crh_filtered_cores += 1
        return RequestPlan(attempts=(frozenset(destinations),), page_type=page_type)

    def observe_outcome(self, core: int, block: int) -> None:
        """Post-transaction NSRT learning: if no other core holds the
        region, remember it as not-shared."""
        region = block >> self.region_bits
        if self._region_shared_elsewhere(core, region):
            return
        nsrt = self._nsrt[core]
        nsrt[region] = None
        nsrt.move_to_end(region)
        while len(nsrt) > self.nsrt_entries:
            nsrt.popitem(last=False)

    def _region_shared_elsewhere(self, core: int, region: int) -> bool:
        return any(
            other != core and tracker.caches_region(region)
            for other, tracker in self.trackers.items()
        )

    def _nsrt_valid(self, core: int, region: int) -> bool:
        if region not in self._nsrt[core]:
            return False
        # Snoop-driven invalidation: another node acquired the region.
        if self._region_shared_elsewhere(core, region):
            del self._nsrt[core][region]
            return False
        return True

    # ------------------------------------------------------------------
    # PlacementListener interface — RegionScout ignores VM events.
    # ------------------------------------------------------------------

    def on_vcpu_placed(self, vm_id: int, core: int) -> None:
        pass

    def on_vcpu_displaced(self, vm_id: int, core: int) -> None:
        pass
