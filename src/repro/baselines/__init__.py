"""Comparison baselines: alternative snoop-filtering schemes.

Virtual snooping's related work filters snoops with per-core hardware
tables over coarse memory regions instead of VM boundaries. This package
implements the closest such scheme, RegionScout, so the trade-off the
paper argues (no tables, but migration sensitivity) can be measured.
"""

from repro.baselines.regionscout import RegionScoutFilter, RegionTracker

__all__ = ["RegionScoutFilter", "RegionTracker"]
