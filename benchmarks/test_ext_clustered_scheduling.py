"""Benchmark (extension): clustered scheduling — the paper's future work.

Not a paper figure: quantifies the middle ground between pinning and
full migration that Section III proposes exploring.
"""

from conftest import emit
from repro.experiments import ext_clustered


def test_ext_clustered_scheduling(benchmark):
    results = benchmark.pedantic(
        lambda: ext_clustered.run(), rounds=1, iterations=1
    )
    emit(ext_clustered.format_result(results))
    for app, by_policy in results.items():
        pinned = by_policy["pinned"]["wall_ms"]
        clustered = by_policy["clustered"]["wall_ms"]
        credit = by_policy["credit"]["wall_ms"]
        # Clustered recovers most of full migration's throughput...
        assert clustered <= pinned * 1.02, app
        assert clustered <= credit * 1.15, app
        # ...while bounding the snoop domain below the full machine.
        assert (
            by_policy["clustered"]["domain_bound_cores"]
            < by_policy["credit"]["domain_bound_cores"]
        )
