"""Benchmark (extension): virtual snooping vs the RegionScout baseline.

Not a paper figure. Quantifies the related-work trade-off Section VII
discusses: region-based filters need per-core tables (CRH + NSRT) but
filter at address granularity and are oblivious to vCPU migration;
virtual snooping is table-free but its vCPU maps dilate under migration
until the residence counters recover.
"""

from conftest import emit
from repro.experiments import baseline_comparison


def test_baseline_regionscout(benchmark):
    results = benchmark.pedantic(baseline_comparison.run, rounds=1, iterations=1)
    emit(baseline_comparison.format_result(results))
    for app, row in results.items():
        # Pinned virtual snooping sits at the ideal 25% (4 of 16 cores).
        assert abs(row["vsnoop_pinned"] - 25.0) < 3.0, app
        # Migration hurts virtual snooping...
        assert row["vsnoop_migrating"] > row["vsnoop_pinned"], app
        # ...much more than it hurts the address-keyed baseline.
        vsnoop_hit = row["vsnoop_migrating"] - row["vsnoop_pinned"]
        region_hit = row["regionscout_migrating"] - row["regionscout_pinned"]
        assert region_hit < vsnoop_hit, app
