"""Benchmark (infrastructure): the miss-heavy cell for the bulk-miss seam.

Not a paper figure. The miss-heavy benchmark cell — a 16 KiB L2 / 4 KiB
L1 under the read-heavy ``web-farm`` zipfian suite — is where the
batched kernel's bulk-miss seam earns its keep: nearly every access
misses, nearly every miss is a same-VM private miss with a clean
VM-local victim, so the seam applies the vast majority of coherence
transactions inline. The write-heavy ``backup-window`` counterpart is
reported alongside as the honest contrast: its ~95%-store backup VMs
keep L2 victims dirty, which by design stays on the reference transact
path.

The kernel differential suite (``tests/sim/test_kernel.py``,
``tests/sim/test_kernel_bulk.py``) owns the correctness claim; this
file owns the performance claim: the batched kernel's measured phase
must not be slower than the reference loop's on the miss-heavy cell,
and at least half of the seam-visible transactions must commit inline.
"""

import os
import time

from conftest import emit

from repro.sim.config import SimConfig
from repro.sim.kernel import engine_for
from repro.sim.system import build_system
from repro.workloads.profiles import PROFILES

_FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")

_MEASURE = 8_000 if _FAST else 60_000
_WARMUP = 1_000 if _FAST else 5_000


def _cell(suite: str, kernel: str) -> SimConfig:
    return SimConfig(
        l1_size=4 * 1024,
        l2_size=16 * 1024,
        suite=suite,
        accesses_per_vcpu=_MEASURE,
        warmup_accesses_per_vcpu=_WARMUP,
        kernel=kernel,
    )


def _measure(suite: str, kernel: str):
    """(measured-phase seconds, accesses, bulk summary) for one arm.

    Builds and warms outside the timed region — the claim under test is
    the per-access rate of the measured phase, unprofiled.
    """
    system = build_system(_cell(suite, kernel), PROFILES["fft"])
    engine = engine_for(system)
    clocks = engine.warm()
    start = time.perf_counter()
    engine.measure(clocks)
    elapsed = time.perf_counter() - start
    summary_fn = getattr(engine, "bulk_summary", None)
    summary = summary_fn() if summary_fn is not None else None
    return elapsed, system.stats.l1_accesses, summary


def test_missheavy_bulk_seam(benchmark):
    rows = []
    results = {}
    for suite in ("web-farm", "backup-window"):
        for kernel in ("reference", "batched"):
            if suite == "web-farm" and kernel == "batched":
                elapsed, accesses, summary = benchmark.pedantic(
                    _measure, args=(suite, kernel), rounds=1, iterations=1
                )
            else:
                elapsed, accesses, summary = _measure(suite, kernel)
            results[(suite, kernel)] = (elapsed, summary)
            rate = 1e6 * elapsed / accesses
            row = f"  {suite:14s} {kernel:10s} {elapsed:7.2f}s  {rate:6.2f} us/access"
            if summary is not None:
                bulk = summary["bulk_transacts"]
                bailed = sum(summary["bailouts"].values())
                seen = bulk + bailed
                if seen:
                    row += f"  inline {bulk}/{seen} ({100 * bulk / seen:.1f}%)"
            rows.append(row)
    emit(
        "miss-heavy kernel cell (16K L2 / 4K L1, "
        f"measure {_MEASURE}/vcpu):\n" + "\n".join(rows)
    )

    # Seam coverage: on the miss-heavy cell, at least half of the
    # seam-visible transactions commit inline (>90% in practice).
    _, summary = results[("web-farm", "batched")]
    bulk = summary["bulk_transacts"]
    bailed = sum(summary["bailouts"].values())
    assert bulk > 0
    assert bulk / (bulk + bailed) >= 0.5, summary

    # Wall-time floor: batched must not lose to the reference loop on
    # the cell it was built for. The margin absorbs CI timer jitter;
    # the measured gap is ~1.6x.
    reference_s, _ = results[("web-farm", "reference")]
    batched_s, _ = results[("web-farm", "batched")]
    assert batched_s <= reference_s * 1.05, (
        f"batched {batched_s:.2f}s vs reference {reference_s:.2f}s"
    )

    # The write-heavy contrast keeps dirty victims on the reference
    # path — the histogram must say so.
    _, backup_summary = results[("backup-window", "batched")]
    assert backup_summary["bailouts"].get("victim-dirty", 0) > 0
