"""Benchmark: regenerate Table V (accesses/misses on content-shared pages)."""

import pytest

from conftest import emit
from _shared import content_sharing_results
from repro.experiments import content_study
from repro.experiments.common import fast_mode
from repro.workloads import get_profile


def test_tab05_content_shared(benchmark):
    results = benchmark.pedantic(content_sharing_results, rounds=1, iterations=1)
    emit(content_study.format_table5(results))
    for app, row in results.items():
        profile = get_profile(app)
        # L1 access shares are calibrated against the paper's Table V
        # and must land tightly.
        assert row["l1_access_pct"] == pytest.approx(
            100.0 * profile.content_access_fraction, abs=1.5
        ), app
    if not fast_mode():
        # Paper: only fft / blackscholes / canneal / specjbb exceed 30%
        # content-shared L2 misses.
        heavy = {a for a, r in results.items() if r["l2_miss_pct"] > 30.0}
        assert {"fft", "blackscholes", "canneal", "specjbb"} == heavy
        light = {"ocean", "cholesky", "ferret"}
        for app in light:
            assert results[app]["l2_miss_pct"] < 12.0, app
