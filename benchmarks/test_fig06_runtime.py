"""Benchmark: regenerate Figure 6 (execution time vs TokenB, pinned)."""

from conftest import emit
from _shared import pinned_results
from repro.experiments import pinned_study


def test_fig06_runtime(benchmark):
    results = benchmark.pedantic(pinned_results, rounds=1, iterations=1)
    emit(pinned_study.format_figure6(results))
    norms = [r["runtime_norm_pct"] for r in results.values()]
    average = sum(norms) / len(norms)
    # Paper: 0.2-9.1% faster per app, 3.8% on average — modest gains
    # because this configuration does not saturate the network.
    assert 90.0 <= average <= 100.5
    for app, norm in zip(results, norms):
        assert 85.0 <= norm <= 104.0, app
