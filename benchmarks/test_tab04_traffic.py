"""Benchmark: regenerate Table IV (network traffic reduction, pinned)."""

from conftest import emit
from _shared import pinned_results
from repro.experiments import pinned_study


def test_tab04_traffic(benchmark):
    results = benchmark.pedantic(pinned_results, rounds=1, iterations=1)
    emit(pinned_study.format_table4(results))
    reductions = [r["traffic_reduction_pct"] for r in results.values()]
    average = sum(reductions) / len(reductions)
    # Paper: 62-65% for every app, average 63.7%. Allow a modest band.
    assert 58.0 <= average <= 70.0
    for app, row in results.items():
        assert 52.0 <= row["traffic_reduction_pct"] <= 78.0, app
        # Snoops land on the ideal 75% reduction (4 of 16 cores).
        assert abs(row["snoop_reduction_pct"] - 75.0) < 5.0, app
