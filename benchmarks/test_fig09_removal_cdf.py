"""Benchmark: regenerate Figure 9 (CDF of old-core removal periods)."""

from conftest import emit
from _shared import migration_results_slow
from repro.experiments import migration_study
from repro.experiments.common import fast_mode


def test_fig09_removal_cdf(benchmark):
    results = benchmark.pedantic(migration_results_slow, rounds=1, iterations=1)
    cdf = migration_study.removal_cdf(results, period_ms=5.0)
    emit(migration_study.format_figure9(cdf))
    # Paper: for most relocations the old core leaves the vCPU map
    # within ~10ms of (scaled) time. Fast-mode traces are too short for
    # a meaningful CDF, so the shape is only asserted on full runs.
    if not fast_mode():
        all_periods = [p for periods in cdf.values() for p in periods]
        assert all_periods, "no removals recorded at the 5ms migration period"
        within_10ms = sum(1 for p in all_periods if p <= 10.0) / len(all_periods)
        assert within_10ms > 0.6
        # blackscholes' counters never reach zero (tiny working set).
        assert len(cdf.get("blackscholes", [])) == 0
