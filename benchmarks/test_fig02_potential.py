"""Benchmark: regenerate Figure 2 (potential snoop reductions)."""

import pytest

from conftest import emit
from repro.experiments import fig02_potential


def test_fig02_potential(benchmark):
    series = benchmark.pedantic(fig02_potential.run, rounds=1, iterations=1)
    emit(fig02_potential.format_result(series))
    # Paper: ideal 16-VM config reduces >93%; 5-10% hypervisor ratios
    # still reduce 84-89%.
    assert series[0.0][-1] == pytest.approx(93.75)
    assert 84.0 <= series[0.10][-1] <= 89.1
    assert 84.0 <= series[0.05][-1] <= 89.1
    # Monotone in VM count for every ratio.
    for values in series.values():
        assert values == sorted(values)
