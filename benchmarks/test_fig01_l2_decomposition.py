"""Benchmark: regenerate Figure 1 (L2 miss decomposition under Xen)."""

from conftest import emit
from _shared import fig1_results
from repro.experiments import fig01_l2_decomposition
from repro.experiments.common import fast_mode


def test_fig01_l2_decomposition(benchmark):
    results = benchmark.pedantic(fig1_results, rounds=1, iterations=1)
    emit(fig01_l2_decomposition.format_result(results))
    for app, row in results.items():
        # Paper: hypervisor + dom0 always below 20% of L2 misses.
        assert row["dom0"] + row["xen"] < 20.0, app
        assert row["guest"] > 80.0, app
    if not fast_mode():
        # I/O-heavy server workloads sit clearly above compute-bound apps.
        assert results["oltp"]["dom0"] + results["oltp"]["xen"] > 8.0
        assert results["specweb"]["dom0"] + results["specweb"]["xen"] > 10.0
        assert results["blackscholes"]["dom0"] + results["blackscholes"]["xen"] < 5.0
