"""Shared cached experiment runs for the benchmark harness.

Several paper artefacts come from the same simulation campaign (Table IV
and Figure 6; Figures 7, 8 and 9; Tables V and VI). Each campaign runs
once per benchmark session and is cached here so the harness regenerates
every table/figure without repeating multi-minute sweeps.

Two cache layers stack here:

* the ``lru_cache`` below — in-process, one entry per campaign, so two
  benchmarks sharing a campaign within a session never re-run it;
* the cross-run result store (``repro.store``) — on disk, one entry per
  (config, app) cell. Every campaign funnels through
  ``run_simulation_task``, so a second benchmark *session* against a
  warm store replays from disk instead of simulating. ``REPRO_STORE``
  points it elsewhere or disables it (``REPRO_STORE=off``) for honest
  cold timings; warm-state snapshot reuse rides along via
  ``REPRO_SNAPSHOTS``.

Set ``REPRO_FAST=1`` for a reduced-size smoke run of the whole suite.
Fast-mode campaigns scale both the measured and warm-up budgets, so
their store keys and warm-up fingerprints are distinct from full runs —
the two never serve each other's entries.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments import (
    content_study,
    fig01_l2_decomposition,
    migration_study,
    pinned_study,
    sched_study,
)


@lru_cache(maxsize=None)
def sched_results():
    return sched_study.run()


@lru_cache(maxsize=None)
def pinned_results():
    return pinned_study.run()


@lru_cache(maxsize=None)
def migration_results_slow():
    """Figure 7 periods (5 / 2.5 ms); also feeds Figure 9."""
    return migration_study.run(periods_ms=migration_study.FIG7_PERIODS_MS)


@lru_cache(maxsize=None)
def migration_results_fast():
    """Figure 8 periods (0.5 / 0.1 ms)."""
    return migration_study.run(periods_ms=migration_study.FIG8_PERIODS_MS)


@lru_cache(maxsize=None)
def content_sharing_results():
    return content_study.run_sharing_stats()


@lru_cache(maxsize=None)
def content_policy_results():
    return content_study.run_policy_comparison()


@lru_cache(maxsize=None)
def fig1_results():
    return fig01_l2_decomposition.run()


def headline_metrics() -> dict:
    """Headline numbers for the ``BENCH_<rev>.json`` regression guard.

    Only campaigns that already ran this session (their ``lru_cache`` is
    populated) are summarised — asking for headlines never triggers a
    multi-minute sweep on its own.
    """
    metrics: dict = {}
    if pinned_results.cache_info().currsize:
        rows = pinned_results()
        traffic = [r["traffic_reduction_pct"] for r in rows.values()]
        runtime = [r["runtime_norm_pct"] for r in rows.values()]
        if traffic:
            metrics["pinned_avg_traffic_reduction_pct"] = sum(traffic) / len(traffic)
            metrics["pinned_avg_runtime_norm_pct"] = sum(runtime) / len(runtime)
    if migration_results_slow.cache_info().currsize:
        rows = migration_results_slow()
        snoops = [
            cell["snoops_norm_pct"]
            for by_period in rows.values()
            for period, by_policy in by_period.items()
            for name, cell in by_policy.items()
            if name == "counter" and period == 2.5
        ]
        if snoops:
            metrics["migration_counter_2p5ms_avg_snoops_pct"] = sum(snoops) / len(snoops)
    if content_policy_results.cache_info().currsize:
        rows = content_policy_results()
        memdir = [r["memory-direct"] for r in rows.values() if "memory-direct" in r]
        if memdir:
            metrics["content_memory_direct_avg_snoops_pct"] = sum(memdir) / len(memdir)
    if fig1_results.cache_info().currsize:
        rows = fig1_results()
        overhead = [r["dom0"] + r["xen"] for r in rows.values()]
        if overhead:
            metrics["fig1_avg_dom0_xen_pct"] = sum(overhead) / len(overhead)
    return metrics
