"""Shared cached experiment runs for the benchmark harness.

Several paper artefacts come from the same simulation campaign (Table IV
and Figure 6; Figures 7, 8 and 9; Tables V and VI). Each campaign runs
once per benchmark session and is cached here so the harness regenerates
every table/figure without repeating multi-minute sweeps.

Set ``REPRO_FAST=1`` for a reduced-size smoke run of the whole suite.
"""

from __future__ import annotations

from functools import lru_cache

from repro.experiments import (
    content_study,
    fig01_l2_decomposition,
    migration_study,
    pinned_study,
    sched_study,
)


@lru_cache(maxsize=None)
def sched_results():
    return sched_study.run()


@lru_cache(maxsize=None)
def pinned_results():
    return pinned_study.run()


@lru_cache(maxsize=None)
def migration_results_slow():
    """Figure 7 periods (5 / 2.5 ms); also feeds Figure 9."""
    return migration_study.run(periods_ms=migration_study.FIG7_PERIODS_MS)


@lru_cache(maxsize=None)
def migration_results_fast():
    """Figure 8 periods (0.5 / 0.1 ms)."""
    return migration_study.run(periods_ms=migration_study.FIG8_PERIODS_MS)


@lru_cache(maxsize=None)
def content_sharing_results():
    return content_study.run_sharing_stats()


@lru_cache(maxsize=None)
def content_policy_results():
    return content_study.run_policy_comparison()


@lru_cache(maxsize=None)
def fig1_results():
    return fig01_l2_decomposition.run()
