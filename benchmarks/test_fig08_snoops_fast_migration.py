"""Benchmark: regenerate Figure 8 (snoops, 0.5 / 0.1 ms migrations)."""

from conftest import emit
from _shared import migration_results_fast
from repro.core.filter import SnoopPolicy
from repro.experiments import migration_study

BASE = SnoopPolicy.VSNOOP_BASE.value
COUNTER = SnoopPolicy.VSNOOP_COUNTER.value
THRESHOLD = SnoopPolicy.VSNOOP_COUNTER_THRESHOLD.value


def test_fig08_snoops_fast_migration(benchmark):
    results = benchmark.pedantic(migration_results_fast, rounds=1, iterations=1)
    emit(
        migration_study.format_figures(
            results, migration_study.FIG8_PERIODS_MS, "Figure 8: 0.5/0.1ms migrations"
        )
    )
    base_01 = [results[app][0.1][BASE]["snoops_norm_pct"] for app in results]
    counter_01 = [results[app][0.1][COUNTER]["snoops_norm_pct"] for app in results]
    # Paper: at 0.1ms the base policy loses nearly all filtering (it
    # reduced only ~4% on average) while counter still filters ~45%.
    from repro.experiments.common import fast_mode

    if not fast_mode():
        assert sum(base_01) / len(base_01) > 70.0
        assert sum(counter_01) / len(counter_01) < sum(base_01) / len(base_01) - 8.0
    # counter-threshold is at most a small improvement over counter
    # (the paper concludes its benefit is too small for the complexity).
    for app in results:
        for period in migration_study.FIG8_PERIODS_MS:
            row = results[app][period]
            assert (
                row[THRESHOLD]["snoops_norm_pct"]
                <= row[COUNTER]["snoops_norm_pct"] + 6.0
            ), (app, period)
