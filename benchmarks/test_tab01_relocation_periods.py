"""Benchmark: regenerate Table I (average VM relocation periods)."""

from conftest import emit
from _shared import sched_results
from repro.experiments import sched_study
from repro.experiments.common import fast_mode


def _finite(values):
    return [v for v in values if v != float("inf")]


def test_tab01_relocation_periods(benchmark):
    results = benchmark.pedantic(sched_results, rounds=1, iterations=1)
    emit(sched_study.format_table1(results))
    under = _finite(r["under"]["relocation_period_ms"] for r in results.values())
    over = _finite(r["over"]["relocation_period_ms"] for r in results.values())
    assert under and over
    if not fast_mode():
        # Paper shape: relocation is much more frequent when overcommitted
        # (their averages: 629 ms under vs 178 ms over).
        assert sum(over) / len(over) < sum(under) / len(under)
        # Pipeline apps migrate every few ms; compute-bound apps rarely.
        assert results["dedup"]["under"]["relocation_period_ms"] < 30.0
        assert results["blackscholes"]["under"]["relocation_period_ms"] > 100.0
        assert results["swaptions"]["under"]["relocation_period_ms"] > 100.0
