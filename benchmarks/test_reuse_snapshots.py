"""Benchmark (infrastructure): warm-state snapshot reuse on a period sweep.

Not a paper figure. A migration-period sweep is the reuse layer's
headline case: ``migration_period_ms`` is warmup-inert, so every period
shares one warm-up fingerprint — the first cell warms and publishes a
snapshot, the rest restore and go straight to measurement. This
benchmark times the same sweep with snapshots off and on (fresh store
directories both times, so neither arm replays stored *results*) and
asserts the advertised speed-up.

The differential suite (``tests/store/test_snapshot_differential.py``)
owns the correctness claim; this file owns the performance claim.
"""

import os
import tempfile
import time

from conftest import emit

from repro.core.filter import SnoopPolicy
from repro.sim import SimConfig, SimTask
from repro.sim.runner import run_simulation_task
from repro.store import get_store

_FAST = os.environ.get("REPRO_FAST", "") not in ("", "0")

# Warm-up dominates each cell (6:1) so the sweep's cost is mostly the
# repeated warm-ups the snapshot path eliminates.
_WARMUP = 1_500 if _FAST else 6_000
_MEASURE = 250 if _FAST else 1_000
_PERIODS_MS = [5.0, 2.5, 0.5, 0.1]


def _sweep_tasks():
    return [
        SimTask(
            SimConfig.migration_study(
                snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
                migration_period_ms=period,
                accesses_per_vcpu=_MEASURE,
                warmup_accesses_per_vcpu=_WARMUP,
            ),
            "fft",
        )
        for period in _PERIODS_MS
    ]


def _run_sweep(snapshots: str) -> float:
    """Wall time of the sweep in a fresh store with snapshots on/off."""
    with tempfile.TemporaryDirectory(prefix="repro-bench-store-") as root:
        saved = {
            var: os.environ.get(var) for var in ("REPRO_STORE", "REPRO_SNAPSHOTS")
        }
        os.environ["REPRO_STORE"] = root
        os.environ["REPRO_SNAPSHOTS"] = snapshots
        try:
            start = time.perf_counter()
            stats = [run_simulation_task(task) for task in _sweep_tasks()]
            elapsed = time.perf_counter() - start
            counters = get_store().counters()
        finally:
            for var, value in saved.items():
                if value is None:
                    os.environ.pop(var, None)
                else:
                    os.environ[var] = value
    assert counters["hits"] == 0, "fresh store must not serve results"
    if snapshots == "on":
        # First period warms cold, the other three restore.
        assert counters["snapshot_hits"] == len(_PERIODS_MS) - 1, counters
    else:
        assert counters["snapshot_hits"] == 0, counters
    assert all(s.execution_cycles > 0 for s in stats)
    return elapsed


def test_period_sweep_snapshot_speedup(benchmark):
    cold = _run_sweep("off")
    warm = benchmark.pedantic(_run_sweep, args=("on",), rounds=1, iterations=1)
    speedup = cold / warm
    emit(
        f"period sweep x{len(_PERIODS_MS)} (warmup {_WARMUP}/vcpu, "
        f"measure {_MEASURE}/vcpu): snapshots off {cold:.2f}s, "
        f"on {warm:.2f}s -> {speedup:.2f}x"
    )
    # Acceptance floor from ISSUE 5; the 6:1 warm-up ratio gives ~3x in
    # practice, so 1.5x leaves headroom for slow CI machines.
    assert speedup >= 1.5, f"snapshot reuse only {speedup:.2f}x"
