"""Benchmark: regenerate Table VI (data holders for content-shared misses)."""

import pytest

from conftest import emit
from _shared import content_sharing_results
from repro.experiments import content_study
from repro.experiments.common import fast_mode

PAPER_APPS = ("fft", "blackscholes", "canneal", "specjbb")


def test_tab06_data_holders(benchmark):
    results = benchmark.pedantic(content_sharing_results, rounds=1, iterations=1)
    emit(content_study.format_table6(results))
    for app, row in results.items():
        # Decomposition is exhaustive: cache + memory == 100%.
        assert row["holder_cache_pct"] + row["holder_memory_pct"] == pytest.approx(
            100.0, abs=0.5
        ), app
        # intra + friend are sub-classes of "cache".
        assert (
            row["holder_intra_pct"] + row["holder_friend_pct"]
            <= row["holder_cache_pct"] + 0.5
        ), app
    if not fast_mode():
        for app in PAPER_APPS:
            row = results[app]
            # Paper: memory holds 37-53% for these apps; a cache holds
            # the rest, and including the friend VM makes a large share
            # of those copies reachable.
            assert 30.0 <= row["holder_memory_pct"] <= 85.0, app
            reachable = row["holder_intra_pct"] + row["holder_friend_pct"]
            assert reachable > 15.0, app
