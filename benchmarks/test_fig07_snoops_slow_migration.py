"""Benchmark: regenerate Figure 7 (snoops, 5 / 2.5 ms migrations)."""

from conftest import emit
from _shared import migration_results_slow
from repro.core.filter import SnoopPolicy
from repro.experiments import migration_study

BASE = SnoopPolicy.VSNOOP_BASE.value
COUNTER = SnoopPolicy.VSNOOP_COUNTER.value
THRESHOLD = SnoopPolicy.VSNOOP_COUNTER_THRESHOLD.value


def test_fig07_snoops_slow_migration(benchmark):
    results = benchmark.pedantic(migration_results_slow, rounds=1, iterations=1)
    emit(
        migration_study.format_figures(
            results, migration_study.FIG7_PERIODS_MS, "Figure 7: 5/2.5ms migrations"
        )
    )
    counter_norms = [
        results[app][period][COUNTER]["snoops_norm_pct"]
        for app in results
        for period in migration_study.FIG7_PERIODS_MS
    ]
    average = sum(counter_norms) / len(counter_norms)
    # Paper: with slow migrations the counter mechanism stays close to
    # the ideal 25% of TokenB snoops.
    assert average < 36.0
    # base never beats counter (it keeps every old core in the map).
    for app in results:
        for period in migration_study.FIG7_PERIODS_MS:
            row = results[app][period]
            assert (
                row[COUNTER]["snoops_norm_pct"]
                <= row[BASE]["snoops_norm_pct"] + 1.0
            ), (app, period)
