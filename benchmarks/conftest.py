"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures, prints
it, and asserts the shape claims the paper makes. Benchmarks run once
(``rounds=1``) — they measure full experiment campaigns, not
microseconds.
"""

import sys
from pathlib import Path

# Make the sibling `_shared` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))


def emit(text: str) -> None:
    """Print a regenerated table/figure so `pytest -s` shows it."""
    print()
    print(text)
