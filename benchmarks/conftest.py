"""Benchmark harness configuration.

Each benchmark regenerates one of the paper's tables or figures, prints
it, and asserts the shape claims the paper makes. Benchmarks run once
(``rounds=1``) — they measure full experiment campaigns, not
microseconds.

At session end the harness writes ``benchmarks/results/BENCH_<rev>.json``
with per-test wall-clock durations, the campaigns' headline metrics and
the result-store traffic — a regression guard: diff two revisions' files
to see whether a change moved runtimes or, worse, results. If a previous
revision's file exists, the total-duration ratio is printed as a quick
signal and any individual test that slowed past
``_WALL_TIME_RATIO_FLAG`` is named. Wall-time comparisons only run
between files recorded in the same mode (fast vs full) and only against
cold-store runs — a warm store makes every campaign replay from disk,
which would flag the *next* cold run as a regression.
"""

import json
import subprocess
import sys
import time
from pathlib import Path

# Make the sibling `_shared` module importable regardless of rootdir.
sys.path.insert(0, str(Path(__file__).parent))

RESULTS_DIR = Path(__file__).parent / "results"

# A test this much slower than the previous same-mode revision is named
# in the bench-guard line. Generous: shared CI machines jitter, and a
# benchmark here is a whole campaign, not a microbenchmark.
_WALL_TIME_RATIO_FLAG = 1.5
# Ignore sub-second tests: their ratios are all noise.
_WALL_TIME_MIN_SECONDS = 1.0

_durations = {}


def emit(text: str) -> None:
    """Print a regenerated table/figure so `pytest -s` shows it."""
    print()
    print(text)


def _current_rev() -> str:
    try:
        return subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            check=True,
        ).stdout.strip()
    except Exception:
        return "unknown"


def pytest_runtest_logreport(report):
    if report.when == "call":
        _durations[report.nodeid] = round(report.duration, 3)


def pytest_sessionfinish(session, exitstatus):
    if not _durations:
        return
    import os

    import _shared
    from repro.sim import default_jobs
    from repro.store import get_store, store_root

    rev = _current_rev()
    store = get_store()
    # Which simulation kernel the campaigns ran under. Results are
    # bit-identical either way (the differential CI lane proves it), so
    # the kernel only matters for wall-time bookkeeping: runs are
    # compared like-for-like and forced-kernel runs get their own file.
    kernel = os.environ.get("REPRO_KERNEL") or "auto"
    payload = {
        "rev": rev,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "fast_mode": os.environ.get("REPRO_FAST", "") not in ("", "0"),
        "kernel": kernel,
        "jobs": default_jobs(),
        "total_duration_s": round(sum(_durations.values()), 3),
        "durations_s": dict(sorted(_durations.items())),
        "headlines": _shared.headline_metrics(),
        # Parent-process traffic only: parallel campaigns hit the store
        # inside worker processes, whose counters die with the workers.
        "store": {
            "root": str(store_root()) if store is not None else None,
            **(store.counters() if store is not None else {}),
        },
    }
    # When the campaigns checkpoint (REPRO_CAMPAIGN_DIR, e.g. in CI),
    # record where and what so the bench guard links to the manifests.
    campaign_dir = os.environ.get("REPRO_CAMPAIGN_DIR")
    if campaign_dir and Path(campaign_dir).is_dir():
        files = list(Path(campaign_dir).glob("*.json"))
        payload["campaign"] = {
            "dir": campaign_dir,
            "manifests": sorted(p.name for p in files if p.name.startswith("manifest")),
            "cells": sum(1 for p in files if not p.name.startswith("manifest")),
        }
    RESULTS_DIR.mkdir(exist_ok=True)
    suffix = "" if kernel == "auto" else f"-{kernel}"
    out_path = RESULTS_DIR / f"BENCH_{rev}{suffix}.json"
    out_path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    previous = [
        p for p in sorted(RESULTS_DIR.glob("BENCH_*.json"), key=lambda p: p.stat().st_mtime)
        if p != out_path
    ]
    line = f"bench guard: wrote {out_path}"
    slow = []
    # Compare against the most recent file recorded like-for-like: same
    # mode and same kernel (a batched run against a reference run would
    # report the kernels' speed difference as a "regression").
    for prior_path in reversed(previous):
        try:
            prior = json.loads(prior_path.read_text())
        except (ValueError, OSError):
            continue
        if (
            prior.get("fast_mode") != payload["fast_mode"]
            or prior.get("kernel", "auto") != kernel
        ):
            continue
        prior_total = prior.get("total_duration_s") or 0.0
        if prior_total:
            ratio = payload["total_duration_s"] / prior_total
            line += (
                f" (total {payload['total_duration_s']}s, "
                f"{ratio:.2f}x of {prior.get('rev')})"
            )
            slow = _wall_time_regressions(prior, payload)
        break
    print()
    print(line)
    for nodeid, before, after in slow:
        print(
            f"bench guard: WALL-TIME REGRESSION {nodeid}: "
            f"{before}s -> {after}s ({after / before:.2f}x)"
        )


def _is_cold(payload) -> bool:
    """Whether the run recomputed its campaigns rather than replaying
    them from a warm result store (older files predate the counter)."""
    store = payload.get("store")
    return not (isinstance(store, dict) and store.get("hits"))


def _wall_time_regressions(prior, payload):
    """Per-test slowdowns beyond the flag ratio, cold runs only."""
    if not (_is_cold(prior) and _is_cold(payload)):
        return []
    flagged = []
    before_all = prior.get("durations_s") or {}
    for nodeid, after in payload["durations_s"].items():
        before = before_all.get(nodeid)
        if (
            before
            and before >= _WALL_TIME_MIN_SECONDS
            and after / before > _WALL_TIME_RATIO_FLAG
        ):
            flagged.append((nodeid, before, after))
    flagged.sort(key=lambda item: item[2] / item[1], reverse=True)
    return flagged
