"""Benchmark: regenerate Figure 10 (content-shared snoop policies)."""

from conftest import emit
from _shared import content_policy_results
from repro.experiments import content_study
from repro.experiments.common import fast_mode


def test_fig10_content_policies(benchmark):
    results = benchmark.pedantic(content_policy_results, rounds=1, iterations=1)
    emit(content_study.format_figure10(results))
    for app, row in results.items():
        # Paper ordering: memory-direct snoops least (often below the
        # ideal 25%), intra-VM next, friend-VM adds the friend's domain,
        # and all three beat broadcasting content-shared requests.
        assert row["memory-direct"] < row["intra-vm"] + 0.5, app
        assert row["intra-vm"] <= row["friend-vm"] + 0.5, app
        assert row["friend-vm"] <= row["vsnoop-broadcast"] + 0.5, app
    if not fast_mode():
        affected = ("fft", "blackscholes", "canneal", "specjbb")
        for app in affected:
            row = results[app]
            assert row["memory-direct"] < 25.0, app
            assert row["vsnoop-broadcast"] > 40.0, app
