"""Benchmark (ablation): sensitivity to the counter-threshold value.

The paper fixes the speculative removal threshold at 10 lines "set to be
low, not to remove cores from the vCPU maps prematurely" and observes
only marginal gains over the plain counter. This ablation sweeps the
threshold under fast migrations to show the trade-off the choice makes:
higher thresholds remove cores earlier (fewer snoops) but mispredict
more often, paying TokenB retries and persistent-request escalations.
"""

import pytest

from conftest import emit
from repro.analysis import render_table
from repro.core.filter import SnoopPolicy
from repro.experiments.common import fast_mode, normalized_snoops_percent, run_app, scaled
from repro.sim import SimConfig

THRESHOLDS = (1, 5, 10, 25, 50)
APP = "fft"
PERIOD_MS = 0.1


def sweep():
    rows = {}
    for threshold in THRESHOLDS:
        config = SimConfig.migration_study(
            snoop_policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
            migration_period_ms=PERIOD_MS,
            counter_threshold=threshold,
            accesses_per_vcpu=scaled(40_000),
        )
        stats = run_app(config, APP)
        rows[threshold] = {
            "snoops_norm_pct": normalized_snoops_percent(stats, config.num_cores),
            "retries": stats.coherence.retries,
            "persistent": stats.coherence.persistent_requests,
        }
    return rows


def test_ablation_counter_threshold(benchmark):
    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(render_table(
        ["threshold", "snoops (% TokenB)", "retries", "persistent reqs"],
        [
            (t, f"{r['snoops_norm_pct']:.1f}", r["retries"], r["persistent"])
            for t, r in rows.items()
        ],
        title=f"Ablation: counter-threshold sweep ({APP}, {PERIOD_MS}ms migrations)",
    ))
    # Threshold 1 degenerates to the plain counter: zero speculation, so
    # (nearly) zero retries.
    assert rows[1]["retries"] <= rows[50]["retries"]
    if not fast_mode():
        # Aggressive thresholds must actually speculate.
        assert rows[50]["retries"] > 0
