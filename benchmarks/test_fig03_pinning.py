"""Benchmark: regenerate Figure 3 (pinning vs migration execution time)."""

from conftest import emit
from _shared import sched_results
from repro.experiments import sched_study
from repro.experiments.common import fast_mode


def test_fig03_pinning(benchmark):
    results = benchmark.pedantic(sched_results, rounds=1, iterations=1)
    emit(sched_study.format_figure3(results))
    over_norms = [r["over"]["pinned_norm_pct"] for r in results.values()]
    under_norms = [r["under"]["pinned_norm_pct"] for r in results.values()]
    # Paper shape (b): overcommitted, migration wins clearly on average.
    assert sum(over_norms) / len(over_norms) > 108.0
    # Paper shape (a): undercommitted, pinning is as good or better.
    assert sum(under_norms) / len(under_norms) < 103.0
    if not fast_mode():
        # Every app prefers migration when overcommitted.
        assert min(over_norms) > 100.0
