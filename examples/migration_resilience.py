#!/usr/bin/env python3
"""Migration resilience: residence counters under vCPU churn.

The hypervisor's load balancer moves vCPUs between cores; each move
leaves the VM's cached data on the old core, which therefore cannot be
dropped from the VM's snoop domain until that data is gone. This example
sweeps migration periods (5 -> 0.1 ms) and compares:

* vsnoop-base         — old cores stay in the vCPU map forever,
* counter             — per-VM residence counters clear drained cores,
* counter-threshold   — speculative early removal with TokenB retries.

It also prints the distribution of "old-core removal periods" — how long
after a relocation the counter mechanism cleared the old core (Figure 9).

Run:  python examples/migration_resilience.py [app]
"""

import statistics
import sys

from repro.analysis import render_table
from repro.core import SnoopPolicy
from repro.sim import SimConfig, build_system, run_simulation
from repro.workloads import COHERENCE_APPS, get_profile

PERIODS_MS = (5.0, 2.5, 0.5, 0.1)
POLICIES = (
    SnoopPolicy.VSNOOP_BASE,
    SnoopPolicy.VSNOOP_COUNTER,
    SnoopPolicy.VSNOOP_COUNTER_THRESHOLD,
)


def run_one(app: str, policy: SnoopPolicy, period_ms: float):
    config = SimConfig.migration_study(
        snoop_policy=policy,
        migration_period_ms=period_ms,
        accesses_per_vcpu=30_000,
    )
    system = build_system(config, get_profile(app))
    run_simulation(system)
    norm = 100.0 * system.stats.total_snoops / (
        config.num_cores * system.stats.total_transactions
    )
    removals = [
        cycles / config.cycles_per_ms
        for cycles in system.stats.removal_periods_cycles
    ]
    return norm, removals, system.stats.migrations


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "fft"
    if app not in COHERENCE_APPS:
        raise SystemExit(f"pick one of: {', '.join(COHERENCE_APPS)}")
    print(f"Sweeping migration periods for {app!r} (ideal snoops = 25%)...\n")
    rows = []
    counter_removals = []
    for period in PERIODS_MS:
        row = [f"{period} ms"]
        for policy in POLICIES:
            norm, removals, migrations = run_one(app, policy, period)
            row.append(f"{norm:.1f}%")
            if policy is SnoopPolicy.VSNOOP_COUNTER:
                counter_removals.extend(removals)
        row.append(str(migrations))
        rows.append(row)
    print(render_table(
        ["period", "vsnoop-base", "counter", "counter-threshold", "migrations"],
        rows,
        title="Snoops, % of broadcasting TokenB",
    ))
    if counter_removals:
        print(
            f"\nold-core removal periods (counter): "
            f"n={len(counter_removals)}, "
            f"median={statistics.median(counter_removals):.2f} ms, "
            f"p90={sorted(counter_removals)[int(0.9 * len(counter_removals))]:.2f} ms"
        )
    else:
        print(
            "\nno old-core removals: this app's working set never drains "
            "(the paper sees the same for blackscholes)"
        )


if __name__ == "__main__":
    main()
