#!/usr/bin/env python3
"""Consolidation scenario: content-based page sharing vs snoop filtering.

Four VMs run the same application image, so the hypervisor's
content-based page-sharing scanner (VMware ESX-style, Section VI of the
paper) merges their identical pages into read-only shared host pages.
Those RO-shared pages break VM isolation: requests for them cannot be
filtered to one VM's snoop domain without help.

This example measures how much of the workload lands on content-shared
pages (Table V), where copies could have been found (Table VI), and how
the three read-only optimisations trade snoops for cache-to-cache
transfers (Figure 10):

* memory-direct — snoop nobody, always fetch from memory,
* intra-VM      — snoop only the requesting VM (+ memory fallback),
* friend-VM     — also snoop the VM sharing the most content pages.

Run:  python examples/consolidation_study.py [app]
"""

import sys

from repro.analysis import render_bars, render_table
from repro.core import ContentPolicy, SnoopPolicy
from repro.mem.pagetype import PageType
from repro.sim import SimConfig, build_system, run_simulation
from repro.workloads import CONTENT_APPS, get_profile


def run_with_policy(app: str, content_policy: ContentPolicy):
    config = SimConfig(
        snoop_policy=SnoopPolicy.VSNOOP_BASE,
        content_policy=content_policy,
        content_sharing_enabled=True,
        accesses_per_vcpu=10_000,
        warmup_accesses_per_vcpu=6_000,
    )
    system = build_system(config, get_profile(app))
    run_simulation(system)
    return system


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "canneal"
    if app not in CONTENT_APPS:
        raise SystemExit(f"pick one of: {', '.join(CONTENT_APPS)}")
    print(f"Consolidating 4 VMs running {app!r} with ideal page dedup...\n")

    baseline = run_with_policy(app, ContentPolicy.BROADCAST)
    stats = baseline.stats
    shared_pages = len(list(baseline.hypervisor.memory.iter_shared_pages()))
    print(f"content-shared host pages after the scan: {shared_pages}")
    print(f"L1 accesses on content-shared pages: "
          f"{100 * stats.l1_access_share(PageType.RO_SHARED):.1f}%")
    print(f"L2 misses  on content-shared pages: "
          f"{100 * stats.l2_miss_share(PageType.RO_SHARED):.1f}%\n")

    ro = stats.coherence
    total = max(ro.ro_misses, 1)
    print(render_table(
        ["potential data holder", "share of content-shared misses"],
        [
            ("some on-chip cache", f"{100 * ro.ro_holder_any_cache / total:.1f}%"),
            ("  - within the requesting VM", f"{100 * ro.ro_holder_intra_vm / total:.1f}%"),
            ("  - within the friend VM", f"{100 * ro.ro_holder_friend_vm / total:.1f}%"),
            ("memory only", f"{100 * ro.ro_holder_memory_only / total:.1f}%"),
        ],
    ))

    print("\nSnoops per policy (normalised to broadcasting TokenB = 100%):")
    labels, values = [], []
    for policy in (ContentPolicy.BROADCAST, ContentPolicy.MEMORY_DIRECT,
                   ContentPolicy.INTRA_VM, ContentPolicy.FRIEND_VM):
        system = run_with_policy(app, policy)
        norm = 100.0 * system.stats.total_snoops / (
            16 * system.stats.total_transactions
        )
        labels.append(policy.value)
        values.append(norm)
    print(render_bars(labels, values, max_value=100.0))
    print(
        "\nmemory-direct snoops least but forgoes cache-to-cache transfers;"
        "\nfriend-VM recovers most of them at a modest snoop cost."
    )


if __name__ == "__main__":
    main()
