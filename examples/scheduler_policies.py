#!/usr/bin/env python3
"""Scheduler policies: why the hypervisor migrates vCPUs at all.

Virtual snooping would be trivial if vCPUs were pinned one-to-one — but
pinning wastes cores when VMs are overcommitted. This example runs the
Xen-style credit scheduler model (Section III of the paper) on an 8-core
host and compares 'no migration' (pinned) against 'full migration'
(credit with global load balancing), undercommitted (2 VMs x 4 vCPUs)
and overcommitted (4 VMs x 4 vCPUs).

Run:  python examples/scheduler_policies.py [app]
"""

import sys

from repro.analysis import render_table
from repro.hypervisor.scheduler import CreditSchedulerSim, SchedulerConfig
from repro.workloads import PARSEC_APPS, get_profile


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "dedup"
    if app not in PARSEC_APPS:
        raise SystemExit(f"pick one of: {', '.join(PARSEC_APPS)}")
    profile = get_profile(app)
    print(f"Scheduling 4-vCPU VMs running {app!r} on an 8-core host...\n")
    rows = []
    for label, num_vms in (("undercommitted (2 VMs)", 2), ("overcommitted (4 VMs)", 4)):
        results = {}
        for policy in ("pinned", "credit"):
            sim = CreditSchedulerSim(
                SchedulerConfig(policy=policy, seed=7), profile, num_vms=num_vms
            )
            results[policy] = sim.run()
        pinned, credit = results["pinned"], results["credit"]
        period = credit.relocation_period_ms
        rows.append((
            label,
            f"{pinned.wall_ms:.0f}",
            f"{credit.wall_ms:.0f}",
            f"{100 * pinned.wall_ms / credit.wall_ms:.0f}%",
            "-" if period == float("inf") else f"{period:.1f}",
            str(credit.guest_migrations),
        ))
    print(render_table(
        ["host state", "pinned (ms)", "credit (ms)", "pinned vs credit",
         "relocation period (ms)", "migrations"],
        rows,
    ))
    print(
        "\nPinning wins (or ties) undercommitted — migrated vCPUs pay a"
        "\ncold-cache penalty — but loses overcommitted, where idle-core"
        "\nstealing keeps the host busy. Virtual snooping must therefore"
        "\ntolerate the migration churn the credit scheduler produces."
    )


if __name__ == "__main__":
    main()
