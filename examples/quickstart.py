#!/usr/bin/env python3
"""Quickstart: how much snooping does virtual snooping remove?

Builds the paper's simulated system (16 in-order cores, private 32 KB L1
+ 256 KB L2, token coherence over a 4x4 mesh; four VMs of four vCPUs,
each running the same application), runs it once under broadcasting
TokenB and once under virtual snooping, and reports snoops, network
traffic and execution time.

Run:  python examples/quickstart.py [app]
"""

import sys

from repro.analysis import render_table
from repro.core import SnoopPolicy
from repro.sim import SimConfig, build_system, run_simulation
from repro.workloads import COHERENCE_APPS, get_profile


def run_policy(app: str, policy: SnoopPolicy):
    config = SimConfig(
        snoop_policy=policy,
        accesses_per_vcpu=10_000,
        warmup_accesses_per_vcpu=6_000,
    )
    system = build_system(config, get_profile(app))
    run_simulation(system)
    return system.stats


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "fft"
    if app not in COHERENCE_APPS:
        raise SystemExit(f"pick one of: {', '.join(COHERENCE_APPS)}")
    print(f"Simulating {app!r} in 4 VMs x 4 vCPUs on 16 cores...\n")
    base = run_policy(app, SnoopPolicy.BROADCAST)
    vsnoop = run_policy(app, SnoopPolicy.VSNOOP_BASE)

    rows = [
        ("snoop tag lookups", base.total_snoops, vsnoop.total_snoops,
         f"{100 * (1 - vsnoop.total_snoops / base.total_snoops):.1f}%"),
        ("network bytes", base.network_bytes, vsnoop.network_bytes,
         f"{100 * (1 - vsnoop.network_bytes / base.network_bytes):.1f}%"),
        ("execution cycles", base.execution_cycles, vsnoop.execution_cycles,
         f"{100 * (1 - vsnoop.execution_cycles / base.execution_cycles):.1f}%"),
        ("coherence transactions", base.total_transactions,
         vsnoop.total_transactions, "-"),
    ]
    print(render_table(
        ["metric", "TokenB (broadcast)", "virtual snooping", "reduction"],
        rows,
    ))
    print(
        "\nWith 4 VMs pinned to 4 cores each, a VM-private request snoops"
        "\n4 of 16 cores: the ideal 75% snoop reduction the paper reports."
    )


if __name__ == "__main__":
    main()
