"""Tests for page sharing types."""

from repro.mem.pagetype import PageType


class TestPageType:
    def test_three_types(self):
        assert len(PageType) == 3

    def test_only_rw_shared_requires_broadcast(self):
        assert PageType.RW_SHARED.broadcast_required
        assert not PageType.VM_PRIVATE.broadcast_required
        # RO-shared is eligible for the Section VI optimisations, so base
        # virtual snooping may broadcast it but is not *required* to by
        # the enum (the filter decides).
        assert not PageType.RO_SHARED.broadcast_required

    def test_values_stable(self):
        # Serialised in experiment outputs; renaming breaks comparisons.
        assert PageType.VM_PRIVATE.value == "vm_private"
        assert PageType.RW_SHARED.value == "rw_shared"
        assert PageType.RO_SHARED.value == "ro_shared"
