"""Tests for the host page allocator."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.physical import HostMemory, OutOfMemoryError


class TestHostMemory:
    def test_allocates_distinct_pages(self):
        mem = HostMemory(8)
        pages = [mem.allocate() for _ in range(8)]
        assert len(set(pages)) == 8
        assert mem.allocated_count == 8
        assert mem.free_count == 0

    def test_exhaustion_raises(self):
        mem = HostMemory(2)
        mem.allocate()
        mem.allocate()
        with pytest.raises(OutOfMemoryError):
            mem.allocate()

    def test_free_and_reuse(self):
        mem = HostMemory(2)
        a = mem.allocate()
        mem.allocate()
        mem.free(a)
        assert mem.allocate() == a

    def test_double_free_rejected(self):
        mem = HostMemory(2)
        page = mem.allocate()
        mem.free(page)
        with pytest.raises(ValueError):
            mem.free(page)

    def test_allocate_many_all_or_nothing(self):
        mem = HostMemory(4)
        mem.allocate()
        with pytest.raises(OutOfMemoryError):
            mem.allocate_many(4)
        # Failed bulk allocation must not leak pages.
        assert mem.free_count == 3
        assert len(mem.allocate_many(3)) == 3

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            HostMemory(0)

    def test_is_allocated(self):
        mem = HostMemory(2)
        page = mem.allocate()
        assert mem.is_allocated(page)
        mem.free(page)
        assert not mem.is_allocated(page)


@given(st.lists(st.booleans(), max_size=60))
def test_property_alloc_free_conservation(ops):
    """allocated + free == total after any alloc/free sequence."""
    mem = HostMemory(16)
    held = []
    for do_alloc in ops:
        if do_alloc and mem.free_count > 0:
            held.append(mem.allocate())
        elif held:
            mem.free(held.pop())
        assert mem.allocated_count + mem.free_count == 16
        assert mem.allocated_count == len(held)
