"""Tests for the memory controller model."""

from repro.mem.controller import MemoryController


class TestMemoryController:
    def test_read_returns_latency(self):
        controller = MemoryController(latency=80)
        assert controller.read() == 80
        assert controller.data_reads == 1

    def test_counters_accumulate(self):
        controller = MemoryController()
        controller.read()
        controller.writeback()
        controller.writeback()
        controller.return_tokens()
        assert controller.data_reads == 1
        assert controller.writebacks == 2
        assert controller.token_returns == 1
        assert controller.total_accesses == 4

    def test_reset(self):
        controller = MemoryController()
        controller.read()
        controller.writeback()
        controller.reset()
        assert controller.total_accesses == 0

    def test_node_attachment(self):
        controller = MemoryController(node=5)
        assert controller.node == 5
