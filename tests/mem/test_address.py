"""Tests for address arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.address import DEFAULT_LAYOUT, AddressLayout


class TestLayoutValidation:
    def test_default_geometry(self):
        assert DEFAULT_LAYOUT.block_size == 64
        assert DEFAULT_LAYOUT.page_size == 4096
        assert DEFAULT_LAYOUT.blocks_per_page == 64
        assert DEFAULT_LAYOUT.block_bits == 6
        assert DEFAULT_LAYOUT.page_bits == 12

    def test_rejects_non_power_of_two_block(self):
        with pytest.raises(ValueError):
            AddressLayout(block_size=48)

    def test_rejects_non_power_of_two_page(self):
        with pytest.raises(ValueError):
            AddressLayout(page_size=5000)

    def test_rejects_page_smaller_than_block(self):
        with pytest.raises(ValueError):
            AddressLayout(block_size=128, page_size=64)


class TestConversions:
    def test_block_of_addr(self):
        assert DEFAULT_LAYOUT.block_of(0) == 0
        assert DEFAULT_LAYOUT.block_of(63) == 0
        assert DEFAULT_LAYOUT.block_of(64) == 1
        assert DEFAULT_LAYOUT.block_of(4095) == 63

    def test_page_of_addr(self):
        assert DEFAULT_LAYOUT.page_of(4095) == 0
        assert DEFAULT_LAYOUT.page_of(4096) == 1

    def test_page_of_block(self):
        assert DEFAULT_LAYOUT.page_of_block(63) == 0
        assert DEFAULT_LAYOUT.page_of_block(64) == 1

    def test_block_in_page_roundtrip(self):
        block = DEFAULT_LAYOUT.block_in_page(7, 13)
        assert DEFAULT_LAYOUT.page_of_block(block) == 7
        assert DEFAULT_LAYOUT.block_index_in_page(block) == 13

    def test_block_in_page_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.block_in_page(0, 64)
        with pytest.raises(ValueError):
            DEFAULT_LAYOUT.block_in_page(0, -1)

    def test_addr_of_block_and_page(self):
        assert DEFAULT_LAYOUT.addr_of_block(2) == 128
        assert DEFAULT_LAYOUT.addr_of_page(3) == 12288


@given(page=st.integers(min_value=0, max_value=2**40), index=st.integers(0, 63))
def test_property_page_block_roundtrip(page, index):
    block = DEFAULT_LAYOUT.block_in_page(page, index)
    assert DEFAULT_LAYOUT.page_of_block(block) == page
    assert DEFAULT_LAYOUT.block_index_in_page(block) == index


@given(addr=st.integers(min_value=0, max_value=2**48))
def test_property_block_page_consistent(addr):
    block = DEFAULT_LAYOUT.block_of(addr)
    assert DEFAULT_LAYOUT.page_of_block(block) == DEFAULT_LAYOUT.page_of(addr)
