"""Property-based tests: protocol invariants under random operation mixes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.plan import RequestPlan
from repro.coherence.protocol import TokenProtocol
from repro.coherence.registry import MEMORY, TokenRegistry
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology
from repro.mem.controller import MemoryController

NUM_CORES = 4
ALL = frozenset(range(NUM_CORES))


def build():
    registry = TokenRegistry()
    caches = {
        core: PrivateHierarchy(
            core, l1_size=2 * 64, l1_ways=2, l2_size=8 * 64, l2_ways=2
        )
        for core in range(NUM_CORES)
    }
    protocol = TokenProtocol(
        registry,
        NetworkModel(MeshTopology(2, 2)),
        MemoryController(node=0),
        caches,
    )
    return protocol


operations = st.lists(
    st.tuples(
        st.integers(0, NUM_CORES - 1),  # core
        st.integers(0, 9),  # block
        st.booleans(),  # is_write
    ),
    min_size=1,
    max_size=60,
)


def check_invariants(protocol):
    registry = protocol.registry
    for block in range(10):
        state = registry.state_of(block)
        if state is None:
            continue
        # The owner is a sharer or memory.
        assert state.owner == MEMORY or state.owner in state.sharers
        # Every registry sharer holds the block in its L2 and vice versa.
        for core in range(NUM_CORES):
            cached = protocol.caches[core].l2.contains(block)
            assert cached == (core in state.sharers), (
                f"block {block}: cache[{core}]={cached} but sharers="
                f"{state.sharers}"
            )


@settings(max_examples=60, deadline=None)
@given(operations)
def test_property_registry_cache_coherent(ops):
    """Registry and cache contents stay mutually consistent."""
    protocol = build()
    plan = RequestPlan.broadcast(ALL, __import__("repro.mem.pagetype", fromlist=["PageType"]).PageType.VM_PRIVATE)
    for core, block, is_write in ops:
        hierarchy = protocol.caches[core]
        if hierarchy.l2.contains(block):
            if is_write and not protocol.registry.write_hit(core, block):
                protocol.execute(core, 1, block, True, plan)
            continue
        result = protocol.execute(core, 1, block, is_write, plan)
        victim = hierarchy.fill(block, vm_id=1, dirty=is_write or result.fill_dirty)
        if victim is not None:
            protocol.handle_eviction(core, victim)
        check_invariants(protocol)


@settings(max_examples=60, deadline=None)
@given(operations)
def test_property_single_writer(ops):
    """After a write, exactly one cache may hold the block."""
    protocol = build()
    from repro.mem.pagetype import PageType

    plan = RequestPlan.broadcast(ALL, PageType.VM_PRIVATE)
    for core, block, is_write in ops:
        hierarchy = protocol.caches[core]
        if not hierarchy.l2.contains(block):
            result = protocol.execute(core, 1, block, is_write, plan)
            victim = hierarchy.fill(block, 1, dirty=is_write or result.fill_dirty)
            if victim is not None:
                protocol.handle_eviction(core, victim)
        elif is_write and not protocol.registry.write_hit(core, block):
            protocol.execute(core, 1, block, True, plan)
        if is_write:
            assert protocol.registry.has_exclusive(core, block)
            holders = [
                c for c in range(NUM_CORES)
                if protocol.caches[c].l2.contains(block)
            ]
            assert holders == [core]
