"""Tests for protocol statistics."""

from repro.coherence.stats import CoherenceStats
from repro.mem.pagetype import PageType


class TestRecording:
    def test_transaction_classification(self):
        stats = CoherenceStats()
        stats.record_transaction(PageType.VM_PRIVATE, is_write=False)
        stats.record_transaction(PageType.RO_SHARED, is_write=True)
        assert stats.transactions == 2
        assert stats.gets_count == 1
        assert stats.getm_count == 1
        assert stats.transactions_by_page_type[PageType.RO_SHARED] == 1

    def test_snoop_recording(self):
        stats = CoherenceStats()
        stats.record_snoops(16, PageType.RW_SHARED)
        stats.record_snoops(4, PageType.VM_PRIVATE)
        assert stats.snoops == 20
        assert stats.snoops_by_page_type[PageType.RW_SHARED] == 16


class TestMerge:
    def test_merge_accumulates_everything(self):
        a, b = CoherenceStats(), CoherenceStats()
        a.record_transaction(PageType.VM_PRIVATE, is_write=False)
        a.record_snoops(4, PageType.VM_PRIVATE)
        a.retries = 2
        a.ro_misses = 1
        b.record_transaction(PageType.RO_SHARED, is_write=True)
        b.record_snoops(16, PageType.RO_SHARED)
        b.cache_to_cache = 3
        b.ro_holder_friend_vm = 1
        a.merge(b)
        assert a.transactions == 2
        assert a.snoops == 20
        assert a.retries == 2
        assert a.cache_to_cache == 3
        assert a.ro_holder_friend_vm == 1
        assert a.transactions_by_page_type[PageType.RO_SHARED] == 1
