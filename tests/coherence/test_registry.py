"""Tests for the token registry."""

from repro.coherence.registry import GLOBAL_PROVIDER, MEMORY, TokenRegistry


class TestGrants:
    def test_initially_memory_owned(self):
        reg = TokenRegistry()
        assert reg.owner_of(0x10) == MEMORY
        assert reg.sharers_of(0x10) == set()
        assert not reg.is_cached_anywhere(0x10)

    def test_grant_shared_adds_sharer_keeps_memory_owner(self):
        reg = TokenRegistry()
        reg.grant_shared(3, 0x10)
        assert reg.sharers_of(0x10) == {3}
        assert reg.owner_of(0x10) == MEMORY

    def test_grant_exclusive_takes_all_tokens(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10)
        reg.grant_shared(2, 0x10)
        victims = reg.grant_exclusive(3, 0x10)
        assert victims == {1, 2}
        assert reg.owner_of(0x10) == 3
        assert reg.sharers_of(0x10) == {3}
        assert reg.has_exclusive(3, 0x10)

    def test_upgrade_keeps_requester(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10)
        victims = reg.grant_exclusive(1, 0x10)
        assert victims == set()
        assert reg.has_exclusive(1, 0x10)


class TestEviction:
    def test_sharer_eviction_returns_tokens(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10)
        reg.grant_shared(2, 0x10)
        assert reg.evicted(1, 0x10, dirty=False) == "token_return"
        assert reg.sharers_of(0x10) == {2}

    def test_dirty_owner_eviction_writes_back(self):
        reg = TokenRegistry()
        reg.grant_exclusive(1, 0x10)
        assert reg.evicted(1, 0x10, dirty=True) == "writeback"
        assert reg.owner_of(0x10) == MEMORY
        assert not reg.is_cached_anywhere(0x10)

    def test_eviction_of_noncached_is_none(self):
        reg = TokenRegistry()
        assert reg.evicted(1, 0x10, dirty=False) == "none"

    def test_record_dropped_when_all_tokens_home(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10)
        reg.evicted(1, 0x10, dirty=False)
        assert len(reg) == 0

    def test_eviction_drops_provider_designation(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10, vm_id=7)
        assert reg.provider_for_vm(0x10, 7) == 1
        reg.grant_shared(2, 0x10, vm_id=8)
        reg.evicted(1, 0x10, dirty=False)
        assert reg.provider_for_vm(0x10, 7) is None
        assert reg.provider_for_vm(0x10, 8) == 2


class TestProviders:
    def test_first_copy_becomes_vm_provider(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10, vm_id=5)
        reg.grant_shared(2, 0x10, vm_id=5)
        assert reg.provider_for_vm(0x10, 5) == 1

    def test_global_provider_set_with_vm_provider(self):
        reg = TokenRegistry()
        reg.grant_shared(4, 0x10, vm_id=5)
        assert reg.provider_for_vm(0x10, GLOBAL_PROVIDER) == 4

    def test_grant_exclusive_clears_providers(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10, vm_id=5)
        reg.grant_exclusive(2, 0x10)
        assert reg.provider_for_vm(0x10, 5) is None


class TestFlush:
    def test_flush_returns_ownership_to_memory(self):
        reg = TokenRegistry()
        reg.grant_exclusive(1, 0x10)
        assert reg.flush_block_to_memory(0x10) is True
        assert reg.owner_of(0x10) == MEMORY
        assert reg.sharers_of(0x10) == {1}  # copy stays, now clean

    def test_flush_clean_block(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10)
        assert reg.flush_block_to_memory(0x10) is False

    def test_flush_unknown_block(self):
        reg = TokenRegistry()
        assert reg.flush_block_to_memory(0x99) is False

    def test_invalidated_removes_sharer(self):
        reg = TokenRegistry()
        reg.grant_shared(1, 0x10)
        reg.invalidated(1, 0x10)
        assert reg.sharers_of(0x10) == set()
