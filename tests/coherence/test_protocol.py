"""Tests for the token protocol engine."""

import pytest

from repro.cache.hierarchy import PrivateHierarchy
from repro.coherence.plan import RequestPlan
from repro.coherence.protocol import ProtocolError, TokenProtocol, TransactionResult
from repro.coherence.registry import GLOBAL_PROVIDER, TokenRegistry
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology
from repro.mem.controller import MemoryController
from repro.mem.pagetype import PageType

ALL = frozenset(range(16))


def make_protocol(num_cores=16):
    registry = TokenRegistry()
    network = NetworkModel(MeshTopology(4, 4))
    memory = MemoryController(latency=80, node=0)
    caches = {
        core: PrivateHierarchy(core, l1_size=4 * 64, l1_ways=2, l2_size=16 * 64, l2_ways=4)
        for core in range(num_cores)
    }
    protocol = TokenProtocol(registry, network, memory, caches)
    return protocol


def broadcast_plan(page_type=PageType.VM_PRIVATE):
    return RequestPlan.broadcast(ALL, page_type)


class TestGets:
    def test_cold_gets_served_by_memory(self):
        p = make_protocol()
        result = p.execute(5, 1, 0x100, is_write=False, plan=broadcast_plan())
        assert result.source == TransactionResult.SOURCE_MEMORY
        assert p.memory.data_reads == 1
        assert p.registry.sharers_of(0x100) == {5}
        assert result.latency >= 80

    def test_gets_from_cache_owner(self):
        p = make_protocol()
        # Core 2 writes the block, becoming owner.
        p.execute(2, 1, 0x100, is_write=True, plan=broadcast_plan())
        result = p.execute(5, 1, 0x100, is_write=False, plan=broadcast_plan())
        assert result.source == TransactionResult.SOURCE_CACHE
        assert p.stats.cache_to_cache == 1
        assert p.registry.sharers_of(0x100) == {2, 5}

    def test_gets_fails_when_owner_outside_destinations(self):
        p = make_protocol()
        p.execute(2, 1, 0x100, is_write=True, plan=broadcast_plan())
        narrow = RequestPlan(attempts=(frozenset({5, 6}),))
        with pytest.raises(ProtocolError):
            p.execute(5, 1, 0x100, is_write=False, plan=narrow)

    def test_gets_retry_then_broadcast_succeeds(self):
        p = make_protocol()
        p.execute(2, 1, 0x100, is_write=True, plan=broadcast_plan())
        fallback = RequestPlan(
            attempts=(frozenset({5, 6}), frozenset({5, 6}), ALL),
            last_is_persistent=True,
        )
        result = p.execute(5, 1, 0x100, is_write=False, plan=fallback)
        assert result.attempts_used == 3
        assert p.stats.retries == 2
        assert p.stats.persistent_requests == 1


class TestGetm:
    def test_getm_invalidates_sharers(self):
        p = make_protocol()
        for core in (1, 2, 3):
            p.execute(core, 1, 0x200, is_write=False, plan=broadcast_plan())
            p.caches[core].fill(0x200, vm_id=1)
        result = p.execute(4, 1, 0x200, is_write=True, plan=broadcast_plan())
        assert result.fill_dirty
        assert p.stats.invalidations == 3
        for core in (1, 2, 3):
            assert not p.caches[core].contains(0x200)
        assert p.registry.has_exclusive(4, 0x200)

    def test_getm_upgrade_no_data_transfer(self):
        p = make_protocol()
        p.execute(4, 1, 0x200, is_write=False, plan=broadcast_plan())
        result = p.execute(4, 1, 0x200, is_write=True, plan=broadcast_plan())
        assert result.source == TransactionResult.SOURCE_NONE
        assert p.stats.upgrades == 1

    def test_getm_fails_if_sharer_unreachable(self):
        p = make_protocol()
        p.execute(9, 1, 0x200, is_write=False, plan=broadcast_plan())
        narrow = RequestPlan(attempts=(frozenset({4, 5}),))
        with pytest.raises(ProtocolError):
            p.execute(4, 1, 0x200, is_write=True, plan=narrow)


class TestSnoopCounting:
    def test_broadcast_counts_all_cores(self):
        p = make_protocol()
        p.execute(5, 1, 0x300, is_write=False, plan=broadcast_plan())
        assert p.stats.snoops == 16

    def test_domain_multicast_counts_domain(self):
        p = make_protocol()
        plan = RequestPlan(attempts=(frozenset({4, 5, 6, 7}),))
        p.execute(5, 1, 0x300, is_write=False, plan=plan)
        assert p.stats.snoops == 4

    def test_memory_direct_counts_zero(self):
        p = make_protocol()
        plan = RequestPlan(
            attempts=(frozenset(),),
            page_type=PageType.RO_SHARED,
            provider_vms=(),
        )
        p.execute(5, 1, 0x300, is_write=False, plan=plan)
        assert p.stats.snoops == 0
        assert p.stats.ro_served_by_memory == 1


class TestRoShared:
    def ro_plan(self, attempts, provider_vms, intra=frozenset(), friend=frozenset()):
        return RequestPlan(
            attempts=attempts,
            page_type=PageType.RO_SHARED,
            provider_vms=provider_vms,
            stats_intra_domain=intra,
            stats_friend_domain=friend,
        )

    def test_first_reader_becomes_vm_provider(self):
        p = make_protocol()
        plan = self.ro_plan((frozenset({4, 5}),), (1,))
        p.execute(4, 1, 0x400, is_write=False, plan=plan)
        assert p.registry.provider_for_vm(0x400, 1) == 4

    def test_intra_vm_served_by_provider(self):
        p = make_protocol()
        plan = self.ro_plan((frozenset({4, 5}),), (1,))
        p.execute(4, 1, 0x400, is_write=False, plan=plan)
        result = p.execute(5, 1, 0x400, is_write=False, plan=plan)
        assert result.source == TransactionResult.SOURCE_CACHE
        assert p.stats.ro_served_by_cache == 1

    def test_ro_never_fails_falls_back_to_memory(self):
        p = make_protocol()
        # Another VM cached it, but our plan cannot reach that VM.
        other = self.ro_plan((frozenset({9}),), (2,))
        p.execute(9, 2, 0x400, is_write=False, plan=other)
        mine = self.ro_plan((frozenset({4, 5}),), (1,))
        result = p.execute(4, 1, 0x400, is_write=False, plan=mine)
        assert result.source == TransactionResult.SOURCE_MEMORY

    def test_friend_vm_provider_serves(self):
        p = make_protocol()
        friend_domain = frozenset({8, 9})
        p.execute(9, 2, 0x400, is_write=False, plan=self.ro_plan((friend_domain,), (2,)))
        merged = frozenset({4, 5}) | friend_domain
        plan = self.ro_plan((merged,), (1, 2))
        result = p.execute(4, 1, 0x400, is_write=False, plan=plan)
        assert result.source == TransactionResult.SOURCE_CACHE

    def test_holder_stats_decomposition(self):
        p = make_protocol()
        intra = frozenset({4, 5})
        friend = frozenset({8, 9})
        # Miss with no holder -> memory-only.
        p.execute(4, 1, 0x500, is_write=False, plan=self.ro_plan((intra,), (1,), intra, friend))
        # Second miss from friend domain: holder exists, in friend of VM2... use
        # a requester in VM 2 whose intra domain is {8,9} and friend {4,5}.
        p.execute(
            8, 2, 0x500, is_write=False,
            plan=self.ro_plan((frozenset({8, 9}),), (2,), frozenset({8, 9}), intra),
        )
        assert p.stats.ro_misses == 2
        assert p.stats.ro_holder_memory_only == 1
        assert p.stats.ro_holder_any_cache == 1
        assert p.stats.ro_holder_friend_vm == 1

    def test_global_provider_used_by_broadcast(self):
        p = make_protocol()
        plan1 = self.ro_plan((ALL,), (GLOBAL_PROVIDER,))
        p.execute(4, 1, 0x600, is_write=False, plan=plan1)
        result = p.execute(11, 2, 0x600, is_write=False, plan=plan1)
        assert result.source == TransactionResult.SOURCE_CACHE


class TestEvictionHandling:
    def test_dirty_eviction_writes_back(self):
        p = make_protocol()
        p.execute(2, 1, 0x700, is_write=True, plan=broadcast_plan())
        victim = p.caches[2].fill(0x700, vm_id=1, dirty=True)
        assert victim is None
        line = p.caches[2].invalidate(0x700)
        p.handle_eviction(2, line)
        assert p.memory.writebacks == 1
        assert not p.registry.is_cached_anywhere(0x700)

    def test_clean_eviction_returns_tokens(self):
        p = make_protocol()
        p.execute(2, 1, 0x700, is_write=False, plan=broadcast_plan())
        p.caches[2].fill(0x700, vm_id=1)
        line = p.caches[2].invalidate(0x700)
        p.handle_eviction(2, line)
        assert p.memory.token_returns == 1
