"""Tests for request plans."""

import pytest

from repro.coherence.plan import RequestPlan
from repro.mem.pagetype import PageType

ALL = frozenset(range(16))


class TestRequestPlan:
    def test_requires_attempts(self):
        with pytest.raises(ValueError):
            RequestPlan(attempts=())

    def test_broadcast_factory(self):
        plan = RequestPlan.broadcast(ALL, PageType.RW_SHARED)
        assert plan.attempts == (ALL,)
        assert plan.page_type is PageType.RW_SHARED
        assert not plan.last_is_persistent

    def test_ro_shared_flag(self):
        plan = RequestPlan(attempts=(ALL,), page_type=PageType.RO_SHARED)
        assert plan.ro_shared
        assert not RequestPlan(attempts=(ALL,)).ro_shared

    def test_plans_are_immutable(self):
        plan = RequestPlan(attempts=(ALL,))
        with pytest.raises(AttributeError):
            plan.page_type = PageType.RO_SHARED

    def test_defaults_empty_stats_domains(self):
        plan = RequestPlan(attempts=(ALL,))
        assert plan.stats_intra_domain == frozenset()
        assert plan.stats_friend_domain == frozenset()
        assert plan.provider_vms == ()
