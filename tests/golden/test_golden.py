"""Golden-run regression suite: byte-exact stats for six frozen configs.

Every case in :mod:`tests.golden.cases` is simulated and its
``SimStats.to_dict()`` JSON compared **byte for byte** against the
checked-in file under ``tests/golden/data/``. Any change to the
simulator's numeric behaviour — however small — shows up here as a
unified-looking JSON diff instead of a silent drift.

To bless an intentional change::

    PYTHONPATH=src python -m pytest tests/golden --update-golden
    git diff tests/golden/data/   # eyeball every changed number
"""

import json
from pathlib import Path

import pytest

from repro.sim.runner import run_simulation_task

from .cases import GOLDEN_CASES

DATA_DIR = Path(__file__).parent / "data"


def encode(stats) -> str:
    """The canonical on-disk form: sorted keys, indented, newline-final."""
    return json.dumps(stats.to_dict(), sort_keys=True, indent=2) + "\n"


@pytest.mark.parametrize("name", sorted(GOLDEN_CASES))
def test_golden_run(name, request):
    stats = run_simulation_task(GOLDEN_CASES[name])
    encoded = encode(stats)
    path = DATA_DIR / f"{name}.json"

    if request.config.getoption("--update-golden"):
        DATA_DIR.mkdir(exist_ok=True)
        path.write_text(encoded)
        pytest.skip(f"regenerated {path.name}")

    assert path.exists(), (
        f"missing golden file {path}; generate the corpus with "
        f"`pytest tests/golden --update-golden`"
    )
    assert encoded == path.read_text(), (
        f"simulator output drifted from golden run {name!r}; if the "
        f"change is intentional, rerun with --update-golden and commit "
        f"the data diff"
    )


def test_golden_corpus_has_no_strays():
    # A data file without a case is dead weight that would mask a rename.
    expected = {f"{name}.json" for name in GOLDEN_CASES}
    actual = {p.name for p in DATA_DIR.glob("*.json")}
    assert actual == expected


def test_cases_exercise_interesting_behaviour():
    # The corpus only locks down what it actually exercises: make sure
    # the migration-heavy case really migrates and shrinks maps.
    stats = run_simulation_task(GOLDEN_CASES["migration-heavy-ocean"])
    assert stats.migrations > 0
    assert stats.removal_periods_cycles
