"""The frozen mini-configs behind the golden-run regression corpus.

Each case is one :class:`SimTask` small enough to simulate in well under
a second yet rich enough to exercise a distinct slice of the simulator:
one case per snoop policy, one with Section VI content sharing enabled,
and one migration-heavy counter run that drains residence counters and
shrinks vCPU maps.

**These configs are frozen.** Changing a field silently changes every
downstream number, so the byte-exact comparison in ``test_golden.py``
would flag an intentional re-tune as a regression. If a case must
change, regenerate the corpus with ``pytest --update-golden`` and commit
the data diff alongside the reason (CHANGES.md conventions).
"""

from repro.core.filter import ContentPolicy, SnoopPolicy
from repro.sim import SimConfig, SimTask

# Shared scale: 16 vCPUs x 2,500 measured accesses keeps a case around
# half a second while still producing thousands of coherence
# transactions per run.
_ACCESSES = 2_500
_WARMUP = 500


def _case(**overrides) -> SimConfig:
    defaults = dict(
        accesses_per_vcpu=_ACCESSES,
        warmup_accesses_per_vcpu=_WARMUP,
    )
    defaults.update(overrides)
    return SimConfig(**defaults)


GOLDEN_CASES = {
    # One case per SnoopPolicy.
    "broadcast-fft": SimTask(
        _case(snoop_policy=SnoopPolicy.BROADCAST), "fft"
    ),
    "vsnoop-base-lu": SimTask(
        _case(snoop_policy=SnoopPolicy.VSNOOP_BASE), "lu"
    ),
    "counter-radix": SimTask(
        _case(snoop_policy=SnoopPolicy.VSNOOP_COUNTER), "radix"
    ),
    "counter-threshold-cholesky": SimTask(
        _case(snoop_policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD), "cholesky"
    ),
    # Section VI content sharing: RO_SHARED pages take the intra-VM path.
    "content-intra-vm-blackscholes": SimTask(
        _case(
            snoop_policy=SnoopPolicy.VSNOOP_BASE,
            content_policy=ContentPolicy.INTRA_VM,
            content_sharing_enabled=True,
        ),
        "blackscholes",
    ),
    # Migration-heavy counter run (the Figure 7-9 regime, scaled down):
    # relocations every 0.05 "ms" drain counters and shrink maps.
    "migration-heavy-ocean": SimTask(
        SimConfig.migration_study(
            snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            migration_period_ms=0.05,
            accesses_per_vcpu=6_000,
            warmup_accesses_per_vcpu=_WARMUP,
        ),
        "ocean",
    ),
    # The RegionScout baseline (repro.baselines.regionscout): CRH
    # filtering, NSRT learning and migration-obliviousness all exercised.
    # Its data file was generated before the filter's hot-path rewrite,
    # so this case proves the rewrite is byte-for-byte equivalent.
    "regionscout-fft": SimTask(
        _case(filter_kind="regionscout", migration_period_ms=0.5), "fft"
    ),
    # Non-default topologies (the consolidation-scale geometries), frozen
    # small: a 4x4 torus (wrap links halve average distance, changing
    # every latency downstream) and a 2-socket hierarchical host with
    # migrations crossing the socket boundary.
    "torus-counter-fft": SimTask(
        _case(
            topology="torus",
            snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            migration_period_ms=0.5,
        ),
        "fft",
    ),
    "hierarchical-counter-lu": SimTask(
        _case(
            topology="hierarchical",
            num_cores=32,
            num_sockets=2,
            num_vms=8,
            snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            migration_period_ms=0.5,
        ),
        "lu",
    ),
    # Pattern-library workloads (PatternWorkload instead of VmWorkload):
    # a single-knob Zipfian mix under the counter policy with
    # migrations, and the phase-shift suite's DynamicMix services with
    # content sharing — freezing the pattern RNG/draw-order contract.
    "zipfian-counter": SimTask(
        _case(
            pattern="zipfian(alpha=1.2)",
            snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
            migration_period_ms=0.5,
        ),
        "fft",
    ),
    "dynamicmix-vsnoop": SimTask(
        _case(
            suite="phase-shift",
            snoop_policy=SnoopPolicy.VSNOOP_BASE,
            content_sharing_enabled=True,
        ),
        "fft",
    ),
}
