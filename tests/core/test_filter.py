"""Tests for the virtual-snooping filter policies."""

import pytest

from repro.cache.line import CacheLine
from repro.coherence.registry import GLOBAL_PROVIDER
from repro.core.filter import ContentPolicy, SnoopPolicy, VirtualSnoopFilter
from repro.mem.pagetype import PageType

ALL = frozenset(range(16))


def make_filter(policy=SnoopPolicy.VSNOOP_COUNTER, content=ContentPolicy.BROADCAST, **kw):
    f = VirtualSnoopFilter(16, policy=policy, content_policy=content, **kw)
    # VM 1 on cores 4-7, VM 2 on cores 8-11.
    for core in (4, 5, 6, 7):
        f.on_vcpu_placed(1, core)
    for core in (8, 9, 10, 11):
        f.on_vcpu_placed(2, core)
    return f


class TestPrivatePlans:
    def test_broadcast_policy_always_broadcasts(self):
        f = make_filter(policy=SnoopPolicy.BROADCAST)
        plan = f.plan(4, 1, PageType.VM_PRIVATE)
        assert plan.attempts == (ALL,)

    def test_vsnoop_multicasts_to_domain(self):
        f = make_filter()
        plan = f.plan(4, 1, PageType.VM_PRIVATE)
        assert plan.attempts == (frozenset({4, 5, 6, 7}),)

    def test_counter_threshold_has_retry_ladder(self):
        f = make_filter(policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD)
        plan = f.plan(4, 1, PageType.VM_PRIVATE)
        domain = frozenset({4, 5, 6, 7})
        assert plan.attempts == (domain, domain, ALL)
        assert plan.last_is_persistent

    def test_rw_shared_always_broadcast(self):
        f = make_filter()
        plan = f.plan(4, 1, PageType.RW_SHARED)
        assert plan.attempts == (ALL,)

    def test_full_domain_collapses_to_single_broadcast(self):
        f = VirtualSnoopFilter(4, policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD)
        for core in range(4):
            f.on_vcpu_placed(1, core)
        plan = f.plan(0, 1, PageType.VM_PRIVATE)
        assert plan.attempts == (frozenset(range(4)),)

    def test_unscheduled_vm_falls_back_to_requester(self):
        f = VirtualSnoopFilter(16)
        plan = f.plan(3, 9, PageType.VM_PRIVATE)
        assert plan.attempts == (frozenset({3}),)


class TestContentPlans:
    def test_default_broadcasts_with_global_provider(self):
        f = make_filter()
        plan = f.plan(4, 1, PageType.RO_SHARED)
        assert plan.attempts == (ALL,)
        assert plan.provider_vms == (GLOBAL_PROVIDER,)

    def test_memory_direct_snoops_nothing(self):
        f = make_filter(content=ContentPolicy.MEMORY_DIRECT)
        plan = f.plan(4, 1, PageType.RO_SHARED)
        assert plan.attempts == (frozenset(),)
        assert plan.provider_vms == ()

    def test_intra_vm_uses_own_domain(self):
        f = make_filter(content=ContentPolicy.INTRA_VM)
        plan = f.plan(4, 1, PageType.RO_SHARED)
        assert plan.attempts == (frozenset({4, 5, 6, 7}),)
        assert plan.provider_vms == (1,)

    def test_friend_vm_merges_domains(self):
        f = make_filter(content=ContentPolicy.FRIEND_VM)
        f.set_friend(1, 2)
        plan = f.plan(4, 1, PageType.RO_SHARED)
        assert plan.attempts == (frozenset({4, 5, 6, 7, 8, 9, 10, 11}),)
        assert plan.provider_vms == (1, 2)

    def test_friend_vm_without_friend_degrades_to_intra(self):
        f = make_filter(content=ContentPolicy.FRIEND_VM)
        plan = f.plan(4, 1, PageType.RO_SHARED)
        assert plan.provider_vms == (1,)

    def test_stats_domains_attached(self):
        f = make_filter(content=ContentPolicy.MEMORY_DIRECT)
        f.set_friend(1, 2)
        plan = f.plan(4, 1, PageType.RO_SHARED)
        assert plan.stats_intra_domain == frozenset({4, 5, 6, 7})
        assert plan.stats_friend_domain == frozenset({8, 9, 10, 11})

    def test_cannot_befriend_self(self):
        f = make_filter()
        with pytest.raises(ValueError):
            f.set_friend(1, 1)


class TestDomainMaintenance:
    def _fill_and_drain(self, f, core, vm, blocks=3):
        tracker = f.trackers[core]
        lines = [CacheLine(i, vm) for i in range(blocks)]
        for line in lines:
            tracker.on_insert(line)
        return lines

    def test_counter_removes_core_after_drain(self):
        f = make_filter(policy=SnoopPolicy.VSNOOP_COUNTER)
        lines = self._fill_and_drain(f, 7, 1)
        f.on_vcpu_displaced(1, 7)
        assert 7 in f.domains.domain(1)  # data still cached
        for line in lines:
            f.trackers[7].on_evict(line)
        assert 7 not in f.domains.domain(1)

    def test_base_policy_never_removes(self):
        f = make_filter(policy=SnoopPolicy.VSNOOP_BASE)
        lines = self._fill_and_drain(f, 7, 1)
        f.on_vcpu_displaced(1, 7)
        for line in lines:
            f.trackers[7].on_evict(line)
        assert 7 in f.domains.domain(1)

    def test_counter_does_not_remove_running_core(self):
        f = make_filter(policy=SnoopPolicy.VSNOOP_COUNTER)
        lines = self._fill_and_drain(f, 7, 1)
        for line in lines:
            f.trackers[7].on_evict(line)
        assert 7 in f.domains.domain(1)  # VM still running there

    def test_displacement_with_empty_counter_removes_immediately(self):
        f = make_filter(policy=SnoopPolicy.VSNOOP_COUNTER)
        f.on_vcpu_displaced(1, 7)  # never cached anything on core 7
        assert 7 not in f.domains.domain(1)

    def test_threshold_removes_early(self):
        f = make_filter(policy=SnoopPolicy.VSNOOP_COUNTER_THRESHOLD, counter_threshold=10)
        tracker = f.trackers[7]
        lines = [CacheLine(i, 1) for i in range(12)]
        for line in lines:
            tracker.on_insert(line)
        f.on_vcpu_displaced(1, 7)
        tracker.on_evict(lines[0])  # 11 left
        assert 7 in f.domains.domain(1)
        tracker.on_evict(lines[1])  # 10 left: still not under threshold
        assert 7 in f.domains.domain(1)
        tracker.on_evict(lines[2])  # 9 left: under threshold -> removed
        assert 7 not in f.domains.domain(1)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            VirtualSnoopFilter(16, counter_threshold=0)


class TestPlanCache:
    """Plans are memoised per (core, vm_id, page_type) and must be
    invalidated by every event that can change a destination set."""

    def test_repeated_plans_are_cached(self):
        f = make_filter()
        first = f.plan(4, 1, PageType.VM_PRIVATE)
        assert f.plan(4, 1, PageType.VM_PRIVATE) is first
        # Distinct keys get distinct entries, cached independently.
        other = f.plan(8, 2, PageType.VM_PRIVATE)
        assert other is not first
        assert f.plan(8, 2, PageType.VM_PRIVATE) is other

    def test_placement_invalidates(self):
        f = make_filter()
        before = f.plan(4, 1, PageType.VM_PRIVATE)
        assert before.attempts == (frozenset({4, 5, 6, 7}),)
        f.on_vcpu_placed(1, 12)  # domain grows -> version bump
        after = f.plan(4, 1, PageType.VM_PRIVATE)
        assert after is not before
        assert after.attempts == (frozenset({4, 5, 6, 7, 12}),)

    def test_residence_removal_invalidates(self):
        f = make_filter(policy=SnoopPolicy.VSNOOP_COUNTER)
        tracker = f.trackers[7]
        lines = [CacheLine(i, 1) for i in range(3)]
        for line in lines:
            tracker.on_insert(line)
        f.on_vcpu_displaced(1, 7)  # counter non-empty: core 7 stays
        before = f.plan(4, 1, PageType.VM_PRIVATE)
        assert 7 in before.attempts[0]
        for line in lines:  # drain to the watermark -> try_remove fires
            tracker.on_evict(line)
        assert 7 not in f.domains.domain(1)
        after = f.plan(4, 1, PageType.VM_PRIVATE)
        assert after is not before
        assert after.attempts == (frozenset({4, 5, 6}),)

    def test_set_friend_invalidates(self):
        f = make_filter(content=ContentPolicy.FRIEND_VM)
        before = f.plan(4, 1, PageType.RO_SHARED)
        f.set_friend(1, 2)
        after = f.plan(4, 1, PageType.RO_SHARED)
        assert after is not before
        # The friend VM's domain joins the first attempt.
        assert frozenset({8, 9, 10, 11}) <= after.attempts[0]

    def test_swap_vcpus_invalidates(self):
        from repro.sim import SimConfig, build_system
        from repro.workloads import get_profile

        config = SimConfig(snoop_policy=SnoopPolicy.VSNOOP_BASE)
        system = build_system(config, get_profile("fft"))
        f = system.snoop_filter
        vm_a, vm_b = system.vms[0], system.vms[1]
        a, b = vm_a.vcpus[0], vm_b.vcpus[0]
        core_a, core_b = a.core, b.core
        before = f.plan(core_a, vm_a.vm_id, PageType.VM_PRIVATE)
        assert core_b not in before.attempts[0]
        system.hypervisor.swap_vcpus(a, b)
        after = f.plan(core_a, vm_a.vm_id, PageType.VM_PRIVATE)
        assert after is not before
        # vsnoop-base never removes: the domain grew to cover both cores.
        assert core_b in after.attempts[0]
        assert core_a in after.attempts[0]
