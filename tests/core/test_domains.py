"""Tests for the snoop-domain (vCPU map) table."""

from repro.core.domains import SnoopDomainTable


class TestPlacement:
    def test_place_adds_to_domain(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4)
        table.vcpu_placed(1, 5)
        assert table.domain(1) == frozenset({4, 5})
        assert table.is_running_on(1, 4)

    def test_displacement_keeps_core_in_domain(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4)
        table.vcpu_displaced(1, 4)
        assert not table.is_running_on(1, 4)
        assert 4 in table.domain(1)

    def test_two_vcpus_same_core_refcounted(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4)
        table.vcpu_placed(1, 4)
        table.vcpu_displaced(1, 4)
        assert table.is_running_on(1, 4)
        table.vcpu_displaced(1, 4)
        assert not table.is_running_on(1, 4)

    def test_unknown_vm_empty_domain(self):
        table = SnoopDomainTable(16)
        assert table.domain(9) == frozenset()


class TestRemoval:
    def test_cannot_remove_running_core(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4)
        assert not table.try_remove(1, 4)
        assert 4 in table.domain(1)

    def test_remove_after_displacement(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4)
        table.vcpu_displaced(1, 4)
        assert table.try_remove(1, 4)
        assert table.domain(1) == frozenset()

    def test_remove_not_in_domain_is_noop(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4)
        assert not table.try_remove(1, 9)

    def test_removal_log_records_period(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4, cycle=0)
        table.vcpu_displaced(1, 4, cycle=100)
        table.try_remove(1, 4, cycle=350)
        (record,) = table.removal_log
        assert record.period == 250
        assert record.vm_id == 1
        assert record.core == 4

    def test_replacement_cancels_pending_removal(self):
        table = SnoopDomainTable(16)
        table.vcpu_placed(1, 4, cycle=0)
        table.vcpu_displaced(1, 4, cycle=10)
        table.vcpu_placed(1, 4, cycle=20)  # VM comes back before removal
        table.vcpu_displaced(1, 4, cycle=30)
        table.try_remove(1, 4, cycle=40)
        (record,) = table.removal_log
        assert record.displaced_cycle == 30


class TestSyncHook:
    def test_hook_called_on_changes(self):
        calls = []
        table = SnoopDomainTable(16, sync_hook=lambda vm, dom: calls.append((vm, dom)))
        table.vcpu_placed(1, 4)
        table.vcpu_placed(1, 4)  # same core again: no map change
        table.vcpu_displaced(1, 4)
        table.vcpu_displaced(1, 4)
        table.try_remove(1, 4)
        assert calls == [(1, frozenset({4})), (1, frozenset())]
        assert table.map_updates == 2


class TestRemovalLogCap:
    """The in-memory removal log is bounded so soak runs cannot OOM."""

    def _churn(self, table, removals):
        # Each round: place on a fresh slot, displace, remove.
        for i in range(removals):
            core = 4 + (i % 8)
            table.vcpu_placed(1, core, cycle=i * 10)
            table.vcpu_displaced(1, core, cycle=i * 10 + 3)
            assert table.try_remove(1, core, cycle=i * 10 + 7)

    def test_log_stops_growing_at_the_cap(self):
        table = SnoopDomainTable(16, max_removal_log=5)
        self._churn(table, 12)
        assert len(table.removal_log) == 5
        assert table.removal_log_dropped == 7
        # The retained records are the earliest ones, unchanged.
        assert [r.removed_cycle for r in table.removal_log] == [
            7, 17, 27, 37, 47,
        ]

    def test_map_hook_sees_dropped_removals_too(self):
        table = SnoopDomainTable(16, max_removal_log=3)
        shrinks = []
        table.map_hook = (
            lambda vm, core, grew, size, cycle, period:
            shrinks.append(period) if not grew else None
        )
        self._churn(table, 9)
        assert len(table.removal_log) == 3
        assert table.removal_log_dropped == 6
        # The hook streamed every removal, capped log or not.
        assert len(shrinks) == 9
        assert all(period == 4 for period in shrinks)

    def test_default_cap_is_roomy(self):
        from repro.core.domains import DEFAULT_MAX_REMOVAL_LOG

        table = SnoopDomainTable(16)
        assert table.max_removal_log == DEFAULT_MAX_REMOVAL_LOG
        assert DEFAULT_MAX_REMOVAL_LOG >= 100_000
