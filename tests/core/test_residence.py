"""Tests for per-VM cache residence counters."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache.line import CacheLine
from repro.cache.setassoc import SetAssociativeCache
from repro.core.residence import UNTRACKED_VM, ResidenceTracker


class TestCounting:
    def test_insert_increments(self):
        tracker = ResidenceTracker(0)
        tracker.on_insert(CacheLine(1, vm_id=3))
        tracker.on_insert(CacheLine(2, vm_id=3))
        assert tracker.count(3) == 2

    def test_evict_and_invalidate_decrement(self):
        tracker = ResidenceTracker(0)
        line_a, line_b = CacheLine(1, 3), CacheLine(2, 3)
        tracker.on_insert(line_a)
        tracker.on_insert(line_b)
        tracker.on_evict(line_a)
        tracker.on_invalidate(line_b)
        assert tracker.count(3) == 0
        assert tracker.is_empty_for(3)

    def test_untracked_vm_ignored(self):
        tracker = ResidenceTracker(0)
        tracker.on_insert(CacheLine(1, UNTRACKED_VM))
        assert tracker.counts() == {}
        tracker.on_evict(CacheLine(1, UNTRACKED_VM))  # no underflow

    def test_underflow_raises(self):
        tracker = ResidenceTracker(0)
        with pytest.raises(RuntimeError):
            tracker.on_evict(CacheLine(1, 3))

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            ResidenceTracker(0, threshold=-1)


class TestLowWatermark:
    def test_fires_exactly_at_zero(self):
        events = []
        tracker = ResidenceTracker(7, threshold=0, on_low=lambda c, v, n: events.append((c, v, n)))
        line = CacheLine(1, 3)
        tracker.on_insert(line)
        tracker.on_insert(CacheLine(2, 3))
        tracker.on_evict(line)  # count 1: no event
        assert events == []
        tracker.on_evict(CacheLine(2, 3))
        assert events == [(7, 3, 0)]

    def test_threshold_fires_below_watermark(self):
        events = []
        tracker = ResidenceTracker(0, threshold=9, on_low=lambda c, v, n: events.append(n))
        lines = [CacheLine(i, 5) for i in range(12)]
        for line in lines:
            tracker.on_insert(line)
        for line in lines[:3]:
            tracker.on_evict(line)
        # counts went 11, 10, 9 -> only 9 fires.
        assert events == [9]
        assert tracker.below_threshold(5)


class TestWithCache:
    def test_tracker_follows_cache_contents(self):
        tracker = ResidenceTracker(0)
        cache = SetAssociativeCache(num_sets=2, ways=2, observer=tracker)
        for block in range(6):
            cache.insert(block, vm_id=block % 2)
        resident = {0: 0, 1: 0}
        for line in cache.lines():
            resident[line.vm_id] += 1
        assert tracker.count(0) == resident[0]
        assert tracker.count(1) == resident[1]


@settings(max_examples=40)
@given(st.lists(st.tuples(st.integers(0, 50), st.integers(0, 2)), max_size=150))
def test_property_counts_match_cache(ops):
    """Counter equals the number of resident lines per VM at all times."""
    tracker = ResidenceTracker(0)
    cache = SetAssociativeCache(num_sets=4, ways=2, observer=tracker)
    for block, vm in ops:
        cache.insert(block, vm_id=vm)
        actual = {}
        for line in cache.lines():
            actual[line.vm_id] = actual.get(line.vm_id, 0) + 1
        for vm_id in (0, 1, 2):
            assert tracker.count(vm_id) == actual.get(vm_id, 0)
