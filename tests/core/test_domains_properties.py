"""Property-based tests for vCPU-map invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.domains import SnoopDomainTable

NUM_CORES = 8

# (op, vm, core): 0 = place, 1 = displace, 2 = try_remove
operations = st.lists(
    st.tuples(st.integers(0, 2), st.integers(1, 3), st.integers(0, NUM_CORES - 1)),
    max_size=120,
)


@settings(max_examples=80)
@given(operations)
def test_property_running_cores_always_in_domain(ops):
    """A VM's snoop domain always covers every core it is running on —
    the correctness condition of virtual snooping."""
    table = SnoopDomainTable(NUM_CORES)
    placed = {}
    for op, vm, core in ops:
        if op == 0:
            table.vcpu_placed(vm, core)
            placed[(vm, core)] = placed.get((vm, core), 0) + 1
        elif op == 1:
            if placed.get((vm, core), 0) > 0:
                table.vcpu_displaced(vm, core)
                placed[(vm, core)] -= 1
        else:
            table.try_remove(vm, core)
        for (v, c), count in placed.items():
            if count > 0:
                assert c in table.domain(v), (
                    f"VM {v} runs on core {c} but domain is {table.domain(v)}"
                )


@settings(max_examples=80)
@given(operations)
def test_property_removal_log_consistent(ops):
    """Every logged removal has a non-negative period and refers to a
    core that was actually removed after a displacement."""
    table = SnoopDomainTable(NUM_CORES)
    placed = {}
    cycle = 0
    for op, vm, core in ops:
        cycle += 1
        if op == 0:
            table.vcpu_placed(vm, core, cycle)
            placed[(vm, core)] = placed.get((vm, core), 0) + 1
        elif op == 1 and placed.get((vm, core), 0) > 0:
            table.vcpu_displaced(vm, core, cycle)
            placed[(vm, core)] -= 1
        elif op == 2:
            table.try_remove(vm, core, cycle)
    for record in table.removal_log:
        assert record.period >= 0
        assert 0 <= record.core < NUM_CORES
