"""ResidenceTracker vs. sanitizer ground truth on every event path.

These tests drive L2 contents directly (fill / evict-by-conflict /
invalidate, guest and UNTRACKED_VM lines) on a sanitizer-attached system.
The shadow cache recomputes true per-VM residence independently and
``check_tracker`` raises on the first divergence, so merely completing an
operation sequence proves the tracker stayed consistent; the explicit
``counts()`` comparisons then pin the expected values.
"""

import pytest

from repro.core.residence import UNTRACKED_VM
from repro.sanitizer import SanitizerViolation
from repro.sim import SimConfig, build_system
from repro.workloads import get_profile

VM = 1  # first guest VM id in a built system
OTHER_VM = 2


@pytest.fixture
def system():
    config = SimConfig(
        num_cores=4,
        mesh_width=2,
        mesh_height=2,
        num_vms=2,
        vcpus_per_vm=2,
        l1_size=1024,
        l1_ways=2,
        l2_size=4096,
        l2_ways=4,
        sanitize=True,
    )
    return build_system(config, get_profile("fft"))


def parts(system, core=0):
    hierarchy = system.caches[core]
    tracker = system.snoop_filter.trackers[core]
    shadow = system.sanitizer.shadows[core]
    return hierarchy, tracker, shadow


def same_set_blocks(hierarchy, count):
    """Blocks that all map to L2 set 0, to force conflict evictions."""
    num_sets = hierarchy.l2.capacity_lines // hierarchy.l2.ways
    return [i * num_sets for i in range(count)]


def test_insert_paths_agree(system):
    hierarchy, tracker, shadow = parts(system)
    for block in (10, 20, 30):
        hierarchy.fill(block, VM)
    hierarchy.fill(40, OTHER_VM)
    assert tracker.counts() == shadow.counts() == {VM: 3, OTHER_VM: 1}


def test_conflict_eviction_decrements_consistently(system):
    hierarchy, tracker, shadow = parts(system)
    blocks = same_set_blocks(hierarchy, hierarchy.l2.ways + 2)
    for block in blocks:
        hierarchy.fill(block, VM)
    # Two LRU victims were evicted from the set; the tracker must have
    # followed (the shadow would have raised RESIDENCE otherwise).
    assert tracker.count(VM) == hierarchy.l2.ways
    assert tracker.counts() == shadow.counts()
    assert not hierarchy.l2.contains(blocks[0])


def test_invalidation_decrements_consistently(system):
    hierarchy, tracker, shadow = parts(system)
    hierarchy.fill(10, VM)
    hierarchy.fill(20, VM)
    hierarchy.invalidate(10)
    assert tracker.counts() == shadow.counts() == {VM: 1}
    hierarchy.invalidate(20)
    assert tracker.counts() == shadow.counts() == {}
    assert tracker.is_empty_for(VM)


def test_untracked_vm_lines_never_reach_counters(system):
    hierarchy, tracker, shadow = parts(system)
    hierarchy.fill(10, UNTRACKED_VM)
    hierarchy.fill(20, UNTRACKED_VM)
    assert tracker.counts() == {}
    # The shadow still tracks residence (they are real lines that snoops
    # must reach) — just not in the per-VM counts.
    assert shadow.counts() == {}
    assert shadow.resident_blocks() == {10, 20}
    hierarchy.invalidate(10)
    hierarchy.fill(30, VM)
    blocks = same_set_blocks(hierarchy, hierarchy.l2.ways)
    for block in blocks:  # evict the remaining untracked line by conflict
        hierarchy.fill(block, UNTRACKED_VM)
    assert tracker.counts() == shadow.counts()
    assert tracker.count(VM) == 1


def test_mixed_vm_set_contention_stays_consistent(system):
    hierarchy, tracker, shadow = parts(system)
    blocks = same_set_blocks(hierarchy, 3 * hierarchy.l2.ways)
    tags = [VM, OTHER_VM, UNTRACKED_VM]
    for index, block in enumerate(blocks):
        hierarchy.fill(block, tags[index % 3])
    assert tracker.counts() == shadow.counts()
    total_tracked = sum(shadow.counts().values())
    untracked = len(shadow.resident_blocks()) - total_tracked
    assert untracked >= 0


def test_tracker_divergence_is_caught_at_the_faulting_event(system):
    hierarchy, tracker, shadow = parts(system)
    hierarchy.fill(10, VM)
    tracker._counts[VM] += 1  # corrupt: counter claims one extra line
    with pytest.raises(SanitizerViolation) as exc:
        hierarchy.fill(20, VM)  # very next event cross-checks and fails
    assert "residence counter diverged" in str(exc.value)


def test_double_decrement_hits_tracker_underflow_guard(system):
    hierarchy, tracker, shadow = parts(system)
    line = hierarchy.fill(10, VM)
    hierarchy.invalidate(10)
    # The tracker's own underflow guard fires before the sanitizer could:
    # decrementing a VM with no lines is a hard bookkeeping bug.
    from repro.cache.line import CacheLine

    with pytest.raises(RuntimeError):
        tracker.on_evict(CacheLine(10, VM))
