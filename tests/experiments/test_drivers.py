"""Smoke + shape tests for the experiment drivers (reduced sizes)."""

import pytest

from repro.core.filter import SnoopPolicy
from repro.experiments import (
    consolidation,
    content_study,
    ext_clustered,
    fig01_l2_decomposition,
    fig02_potential,
    migration_study,
    pinned_study,
    sched_study,
)


@pytest.fixture(autouse=True)
def fast(monkeypatch):
    monkeypatch.setenv("REPRO_FAST", "1")


class TestFig1:
    def test_shares_sum_to_100(self):
        results = fig01_l2_decomposition.run(["dedup"])
        row = results["dedup"]
        assert row["guest"] + row["dom0"] + row["xen"] == pytest.approx(100.0)
        assert row["dom0"] + row["xen"] < 50.0

    def test_format(self):
        out = fig01_l2_decomposition.format_result(
            {"dedup": {"guest": 90.0, "dom0": 7.0, "xen": 3.0}}
        )
        assert "dedup" in out and "Figure 1" in out


class TestFig2:
    def test_paper_values(self):
        series = fig02_potential.run()
        assert series[0.0][-1] == pytest.approx(93.75)
        assert series[0.05][-1] == pytest.approx(89.0625)

    def test_format_contains_ideal(self):
        assert "ideal" in fig02_potential.format_result(fig02_potential.run())


class TestSchedStudy:
    def test_shapes(self):
        results = sched_study.run(["dedup"])
        row = results["dedup"]
        # Overcommitted: migration wins; relocation faster than 100ms.
        assert row["over"]["pinned_norm_pct"] > 100.0
        assert row["over"]["relocation_period_ms"] < 100.0

    def test_formatters(self):
        results = sched_study.run(["dedup"])
        assert "Figure 3" in sched_study.format_figure3(results)
        assert "Table I" in sched_study.format_table1(results)


class TestPinnedStudy:
    def test_traffic_and_snoop_reduction(self):
        results = pinned_study.run(["fft"])
        row = results["fft"]
        assert 40.0 < row["traffic_reduction_pct"] < 80.0
        assert row["snoop_reduction_pct"] == pytest.approx(75.0, abs=5.0)

    def test_formatters(self):
        results = pinned_study.run(["fft"])
        assert "Table IV" in pinned_study.format_table4(results)
        assert "Figure 6" in pinned_study.format_figure6(results)


class TestMigrationStudy:
    def test_counter_beats_base_at_fast_migration(self):
        results = migration_study.run(
            apps=["fft"],
            periods_ms=(0.1,),
        )
        row = results["fft"][0.1]
        assert (
            row[SnoopPolicy.VSNOOP_COUNTER.value]["snoops_norm_pct"]
            < row[SnoopPolicy.VSNOOP_BASE.value]["snoops_norm_pct"]
        )

    def test_removal_cdf_structure(self):
        results = migration_study.run(apps=["fft"], periods_ms=(0.5,))
        cdf = migration_study.removal_cdf(results, period_ms=0.5)
        assert "fft" in cdf
        assert cdf["fft"] == sorted(cdf["fft"])
        out = migration_study.format_figure9(cdf)
        assert "Figure 9" in out


class TestExtClustered:
    def test_clustered_bounds_domain(self):
        results = ext_clustered.run(["dedup"])
        row = results["dedup"]
        assert row["clustered"]["domain_bound_cores"] < row["credit"]["domain_bound_cores"]
        assert row["clustered"]["wall_ms"] <= row["pinned"]["wall_ms"] * 1.05
        assert "clustered" in ext_clustered.format_result(results)


class TestConsolidation:
    def test_filtered_fraction_rises_with_host_size(self):
        results = consolidation.run(
            apps=["fft"], hosts=[16, 64], accesses=1000, warmup=400,
        )
        by_host = results["fft"]
        for policy in (SnoopPolicy.VSNOOP_BASE, SnoopPolicy.VSNOOP_COUNTER):
            small = by_host[16][policy.value]
            large = by_host[64][policy.value]
            # Maps stay ~VM-sized while the host quadruples, so the
            # filtered fraction climbs (0.75 -> ~0.94).
            assert large["filtered_snoop_fraction"] > small["filtered_snoop_fraction"]
            assert small["snoop_map_avg_size"] <= 8.0
            assert large["snoop_map_avg_size"] <= 8.0
        # Broadcast filters nothing at any scale.
        assert by_host[16]["broadcast"]["filtered_snoop_fraction"] == 0.0
        assert by_host[64]["broadcast"]["filtered_snoop_fraction"] == 0.0
        # ... and its per-transaction traffic grows superlinearly.
        assert (
            by_host[64]["broadcast"]["traffic_bytes_per_transaction"]
            > 2 * by_host[16]["broadcast"]["traffic_bytes_per_transaction"]
        )

    def test_smoke_mode_shrinks_sweep(self, monkeypatch):
        monkeypatch.setenv("CONSOLIDATION_SMOKE", "1")
        assert consolidation.smoke_mode()
        config = consolidation.consolidation_config(
            64, SnoopPolicy.VSNOOP_COUNTER
        )
        assert config.sanitize
        assert config.accesses_per_vcpu == 1_500
        results = consolidation.run(apps=["fft"], policies=(SnoopPolicy.VSNOOP_BASE,))
        assert set(results["fft"]) == {64}

    def test_format_scaling_table(self):
        results = consolidation.run(
            apps=["fft"], hosts=[16], accesses=600, warmup=200,
        )
        out = consolidation.format_scaling(results)
        assert "Consolidation scaling" in out
        assert "filtered" in out and "16" in out


class TestContentStudy:
    def test_table5_shape(self):
        sharing = content_study.run_sharing_stats(["fft"])
        row = sharing["fft"]
        assert row["l2_miss_pct"] > row["l1_access_pct"]
        holders = (
            row["holder_cache_pct"] + row["holder_memory_pct"]
        )
        assert holders == pytest.approx(100.0, abs=0.5)

    def test_fig10_ordering(self):
        comparison = content_study.run_policy_comparison(["fft"])
        row = comparison["fft"]
        assert row["memory-direct"] < row["intra-vm"] <= row["friend-vm"]
        assert row["friend-vm"] < row["vsnoop-broadcast"]

    def test_formatters(self):
        sharing = content_study.run_sharing_stats(["fft"])
        assert "Table V" in content_study.format_table5(sharing)
        assert "Table VI" in content_study.format_table6(sharing)
