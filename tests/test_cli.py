"""Tests for the repro-sim command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "fft"
        assert args.policy == "vsnoop-base"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_every_experiment_maps_to_module(self):
        import importlib

        for name, (module_name, _) in EXPERIMENTS.items():
            module = importlib.import_module(module_name)
            assert hasattr(module, "main"), name


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "specweb" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--app", "fft", "--policy", "counter",
            "--accesses", "500", "--warmup", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snoops vs broadcast" in out

    def test_run_regionscout(self, capsys):
        code = main([
            "run", "--filter", "regionscout",
            "--accesses", "500", "--warmup", "200",
        ])
        assert code == 0
        assert "snoops" in capsys.readouterr().out

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "potential snoop reduction" in capsys.readouterr().out

    def test_record_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        code = main([
            "record-trace", "--app", "fft", "--out", str(out_file),
            "--accesses", "25",
        ])
        assert code == 0
        from repro.workloads.tracefile import load_trace

        assert len(load_trace(out_file)) == 100  # 25 x 4 vCPUs
