"""Tests for the repro-sim command-line interface."""

import json

import pytest

from repro.cli import EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "fft"
        assert args.policy == "vsnoop-base"

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_every_experiment_maps_to_module(self):
        import importlib

        for name, (module_name, _) in EXPERIMENTS.items():
            module = importlib.import_module(module_name)
            assert hasattr(module, "main"), name


class TestCommands:
    def test_list_apps(self, capsys):
        assert main(["list-apps"]) == 0
        out = capsys.readouterr().out
        assert "blackscholes" in out
        assert "specweb" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--app", "fft", "--policy", "counter",
            "--accesses", "500", "--warmup", "200",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "snoops vs broadcast" in out

    def test_run_regionscout(self, capsys):
        code = main([
            "run", "--filter", "regionscout",
            "--accesses", "500", "--warmup", "200",
        ])
        assert code == 0
        assert "snoops" in capsys.readouterr().out

    def test_experiment_fig2(self, capsys):
        assert main(["experiment", "fig2"]) == 0
        assert "potential snoop reduction" in capsys.readouterr().out

    def test_record_trace(self, tmp_path, capsys):
        out_file = tmp_path / "t.trace"
        code = main([
            "record-trace", "--app", "fft", "--out", str(out_file),
            "--accesses", "25",
        ])
        assert code == 0
        from repro.workloads.tracefile import load_trace

        assert len(load_trace(out_file)) == 100  # 25 x 4 vCPUs

    def test_profile_smoke(self, capsys):
        code = main([
            "profile", "--app", "fft", "--accesses", "300",
            "--warmup", "100", "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "us/access" in out

    def test_profile_zero_accesses_prints_na(self, capsys):
        code = main([
            "profile", "--app", "fft", "--accesses", "0",
            "--warmup", "0", "--top", "3",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "per-access rate n/a" in out
        assert "us/access" not in out

    def test_run_zero_accesses_prints_na(self, capsys):
        # A zero-length run must not dodge divisions into misleading
        # "0.0000" / "0.0%" rows.
        code = main(["run", "--app", "fft", "--accesses", "0", "--warmup", "0"])
        assert code == 0
        out = capsys.readouterr().out
        assert "n/a (no accesses)" in out


class TestJobsFlag:
    def test_garbage_jobs_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["--jobs", "1.5", "run"])
        with pytest.raises(SystemExit):
            main(["--jobs", "-2", "run"])

    def test_auto_accepted_case_insensitive(self):
        from repro.sim.runner import parse_jobs
        import os

        assert parse_jobs("AUTO") == (os.cpu_count() or 1)
        assert parse_jobs(" 0 ") == (os.cpu_count() or 1)


class TestExperimentCampaign:
    """The --out/--resume/--retries/--task-timeout wiring, end to end on
    a two-cell test experiment."""

    @pytest.fixture(autouse=True)
    def _register_tiny(self, monkeypatch):
        monkeypatch.setitem(
            EXPERIMENTS, "tinyexp", ("tests.sim.tiny_experiment", "Tiny test matrix")
        )
        # These tests pin down checkpoint/--resume semantics; a cell an
        # earlier test pushed into the session store would otherwise be
        # served as from_store and mask the behaviour under test.
        monkeypatch.setenv("REPRO_STORE", "off")

    def test_out_writes_checkpoints_and_manifest(self, tmp_path, capsys):
        out = tmp_path / "campaign"
        assert main(["experiment", "tinyexp", "--out", str(out)]) == 0
        assert "snoops" in capsys.readouterr().out
        manifest = json.loads((out / "manifest-tiny.json").read_text())
        assert manifest["totals"] == {
            "tasks": 2, "ok": 2, "failed": 0, "from_checkpoint": 0,
            "from_store": 0,
            "wall_seconds": manifest["totals"]["wall_seconds"],
        }
        cells = [p for p in out.glob("*.json") if not p.name.startswith("manifest")]
        assert len(cells) == 2

    def test_resume_reuses_checkpointed_cells(self, tmp_path, capsys):
        out = tmp_path / "campaign"
        assert main(["experiment", "tinyexp", "--out", str(out)]) == 0
        first = capsys.readouterr().out
        assert main(["experiment", "tinyexp", "--out", str(out), "--resume"]) == 0
        second = capsys.readouterr().out
        assert first == second  # bit-identical tables from resumed cells
        manifest = json.loads((out / "manifest-tiny.json").read_text())
        assert manifest["totals"]["from_checkpoint"] == 2

    def test_existing_campaign_requires_resume(self, tmp_path):
        out = tmp_path / "campaign"
        assert main(["experiment", "tinyexp", "--out", str(out)]) == 0
        with pytest.raises(SystemExit):
            main(["experiment", "tinyexp", "--out", str(out)])

    def test_resume_requires_out(self):
        with pytest.raises(SystemExit):
            main(["experiment", "tinyexp", "--resume"])

    def test_retries_and_timeout_validated(self):
        with pytest.raises(SystemExit):
            main(["experiment", "tinyexp", "--retries", "-1"])
        with pytest.raises(SystemExit):
            main(["experiment", "tinyexp", "--task-timeout", "0"])

    def test_campaign_settings_restored_after_run(self, tmp_path):
        from repro.sim import campaign_settings

        out = tmp_path / "campaign"
        assert main(["experiment", "tinyexp", "--out", str(out)]) == 0
        assert campaign_settings().checkpoint_dir is None
