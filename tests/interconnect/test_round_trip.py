"""Tests for the round-trip helper and latency composition."""

from repro.interconnect.messages import MessageKind
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology


class TestRoundTrip:
    def setup_method(self):
        self.net = NetworkModel(MeshTopology(4, 4))

    def test_request_plus_response(self):
        latency = self.net.round_trip(
            0, [1, 2, 3], MessageKind.REQUEST, MessageKind.DATA, responder=3
        )
        # Request to farthest (3 hops) + data back from 3 (3 hops).
        assert latency == 3 * 5 + 3 * 5
        assert self.net.messages == 4  # 3 requests + 1 data

    def test_no_responder_charges_requests_only(self):
        latency = self.net.round_trip(
            0, [1, 2], MessageKind.REQUEST, MessageKind.DATA, responder=None
        )
        assert latency == 2 * 5
        assert self.net.messages == 2

    def test_local_responder_is_free_response(self):
        latency = self.net.round_trip(
            0, [1], MessageKind.REQUEST, MessageKind.DATA, responder=0
        )
        assert latency == 5  # response from self adds nothing
