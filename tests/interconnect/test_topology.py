"""Tests for the mesh topology and XY routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.interconnect.topology import MeshTopology


class TestMesh4x4:
    def setup_method(self):
        self.mesh = MeshTopology(4, 4)

    def test_num_nodes(self):
        assert self.mesh.num_nodes == 16

    def test_coords_row_major(self):
        assert self.mesh.coords(0) == (0, 0)
        assert self.mesh.coords(3) == (3, 0)
        assert self.mesh.coords(4) == (0, 1)
        assert self.mesh.coords(15) == (3, 3)

    def test_hops_manhattan(self):
        assert self.mesh.hops(0, 15) == 6
        assert self.mesh.hops(0, 0) == 0
        assert self.mesh.hops(5, 6) == 1

    def test_xy_route_goes_x_first(self):
        route = self.mesh.xy_route(0, 15)
        assert route == [0, 1, 2, 3, 7, 11, 15]

    def test_xy_route_length_matches_hops(self):
        for src in range(16):
            for dst in range(16):
                route = self.mesh.xy_route(src, dst)
                assert len(route) - 1 == self.mesh.hops(src, dst)

    def test_neighbours_corner_and_centre(self):
        assert set(self.mesh.neighbours(0)) == {1, 4}
        assert set(self.mesh.neighbours(5)) == {4, 6, 1, 9}

    def test_node_bounds_checked(self):
        with pytest.raises(ValueError):
            self.mesh.coords(16)
        with pytest.raises(ValueError):
            self.mesh.node_at(4, 0)

    def test_average_distance(self):
        # Per-dimension mean |xi-xj| over all n^2 pairs is (n^2-1)/(3n);
        # excluding the n^2 self-pairs scales by n^4/(n^4-n^2):
        # 2 * 1.25 * 256/240 = 8/3 for a 4x4 mesh.
        assert self.mesh.average_distance() == pytest.approx(8 / 3, abs=1e-9)


def test_rejects_bad_dimensions():
    with pytest.raises(ValueError):
        MeshTopology(0, 4)


@given(
    src=st.integers(0, 15),
    dst=st.integers(0, 15),
)
def test_property_route_valid_steps(src, dst):
    mesh = MeshTopology(4, 4)
    route = mesh.xy_route(src, dst)
    assert route[0] == src and route[-1] == dst
    for a, b in zip(route, route[1:]):
        assert mesh.hops(a, b) == 1


@given(src=st.integers(0, 15), dst=st.integers(0, 15))
def test_property_hops_symmetric(src, dst):
    mesh = MeshTopology(4, 4)
    assert mesh.hops(src, dst) == mesh.hops(dst, src)
