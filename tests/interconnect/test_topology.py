"""Tests for the interconnect topologies and their routing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.interconnect.topology import (
    HierarchicalTopology,
    MeshTopology,
    Topology,
    TorusTopology,
)


class TestMesh4x4:
    def setup_method(self):
        self.mesh = MeshTopology(4, 4)

    def test_num_nodes(self):
        assert self.mesh.num_nodes == 16

    def test_coords_row_major(self):
        assert self.mesh.coords(0) == (0, 0)
        assert self.mesh.coords(3) == (3, 0)
        assert self.mesh.coords(4) == (0, 1)
        assert self.mesh.coords(15) == (3, 3)

    def test_hops_manhattan(self):
        assert self.mesh.hops(0, 15) == 6
        assert self.mesh.hops(0, 0) == 0
        assert self.mesh.hops(5, 6) == 1

    def test_xy_route_goes_x_first(self):
        route = self.mesh.xy_route(0, 15)
        assert route == [0, 1, 2, 3, 7, 11, 15]

    def test_xy_route_length_matches_hops(self):
        for src in range(16):
            for dst in range(16):
                route = self.mesh.xy_route(src, dst)
                assert len(route) - 1 == self.mesh.hops(src, dst)

    def test_neighbours_corner_and_centre(self):
        assert set(self.mesh.neighbours(0)) == {1, 4}
        assert set(self.mesh.neighbours(5)) == {4, 6, 1, 9}

    def test_node_bounds_checked(self):
        with pytest.raises(ValueError):
            self.mesh.coords(16)
        with pytest.raises(ValueError):
            self.mesh.node_at(4, 0)

    def test_average_distance(self):
        # Per-dimension mean |xi-xj| over all n^2 pairs is (n^2-1)/(3n);
        # excluding the n^2 self-pairs scales by n^4/(n^4-n^2):
        # 2 * 1.25 * 256/240 = 8/3 for a 4x4 mesh.
        assert self.mesh.average_distance() == pytest.approx(8 / 3, abs=1e-9)


def test_rejects_bad_dimensions():
    with pytest.raises(ValueError):
        MeshTopology(0, 4)


@given(
    src=st.integers(0, 15),
    dst=st.integers(0, 15),
)
def test_property_route_valid_steps(src, dst):
    mesh = MeshTopology(4, 4)
    route = mesh.xy_route(src, dst)
    assert route[0] == src and route[-1] == dst
    for a, b in zip(route, route[1:]):
        assert mesh.hops(a, b) == 1


@given(src=st.integers(0, 15), dst=st.integers(0, 15))
def test_property_hops_symmetric(src, dst):
    mesh = MeshTopology(4, 4)
    assert mesh.hops(src, dst) == mesh.hops(dst, src)


# ---------------------------------------------------------------------------
# Geometry invariants shared by every topology.
# ---------------------------------------------------------------------------

TOPOLOGIES = {
    "mesh-4x4": MeshTopology(4, 4),
    "mesh-1x5": MeshTopology(1, 5),
    "mesh-5x1": MeshTopology(5, 1),
    "torus-4x4": TorusTopology(4, 4),
    "torus-1x5": TorusTopology(1, 5),
    "torus-2x3": TorusTopology(2, 3),
    "hier-4s-4x4": HierarchicalTopology(4, 4, 4),
    "hier-2s-2x2-cost1": HierarchicalTopology(2, 2, 2, inter_socket_hop_cost=1),
}


def _crossing_correction(topo: Topology, src: int, dst: int) -> int:
    """Extra hops charged beyond the route's edge count.

    The hierarchical gateway-to-gateway crossing is one route edge but
    ``inter_socket_hop_cost`` hops; every other topology charges each
    route edge exactly one hop.
    """
    if isinstance(topo, HierarchicalTopology):
        if topo.socket_of(src) != topo.socket_of(dst):
            return topo.inter_socket_hop_cost - 1
    return 0


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_route_length_matches_hops(name):
    topo = TOPOLOGIES[name]
    for src in range(topo.num_nodes):
        for dst in range(topo.num_nodes):
            route = topo.route(src, dst)
            assert route[0] == src and route[-1] == dst
            expected = len(route) - 1 + _crossing_correction(topo, src, dst)
            assert topo.hops(src, dst) == expected, (src, dst, route)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_route_steps_are_neighbour_links(name):
    topo = TOPOLOGIES[name]
    for src in range(topo.num_nodes):
        for dst in range(topo.num_nodes):
            route = topo.route(src, dst)
            assert len(set(route)) == len(route), "route revisits a node"
            for a, b in zip(route, route[1:]):
                assert b in set(topo.neighbours(a)), (a, b)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_neighbour_relation_symmetric(name):
    topo = TOPOLOGIES[name]
    for node in range(topo.num_nodes):
        for other in topo.neighbours(node):
            assert node in set(topo.neighbours(other))
            assert topo.hops(node, other) in (
                1,
                getattr(topo, "inter_socket_hop_cost", 1),
            )


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
def test_num_links_matches_neighbour_edge_count(name):
    """num_links (the capacity denominator) agrees with the edge list.

    Hierarchical inter-socket links count ``inter_socket_hop_cost``
    capacity segments per directed gateway pair, so compare the
    neighbour-derived edge count against intra links plus one edge per
    gateway pair.
    """
    topo = TOPOLOGIES[name]
    directed_edges = sum(
        len(list(topo.neighbours(n))) for n in range(topo.num_nodes)
    )
    if isinstance(topo, HierarchicalTopology):
        s = topo.num_sockets
        assert directed_edges == topo.num_intra_links + s * (s - 1)
        assert topo.num_links == topo.num_intra_links + topo.num_inter_links
    else:
        assert directed_edges == topo.num_links


class TestDegenerateMeshes:
    """1xN / Nx1 meshes are chains; routing must stay well-formed."""

    @pytest.mark.parametrize("topo", [MeshTopology(1, 5), MeshTopology(5, 1)])
    def test_chain_geometry(self, topo):
        assert topo.num_nodes == 5
        assert topo.num_links == 2 * 4
        assert topo.hops(0, 4) == 4
        assert topo.route(0, 4) == [0, 1, 2, 3, 4]
        assert set(topo.neighbours(0)) == {1}
        assert set(topo.neighbours(2)) == {1, 3}

    def test_single_node_mesh(self):
        topo = MeshTopology(1, 1)
        assert topo.num_nodes == 1
        assert topo.num_links == 0
        assert topo.route(0, 0) == [0]
        assert list(topo.neighbours(0)) == []


class TestTorus:
    def test_wraparound_halves_distance(self):
        torus = TorusTopology(4, 4)
        mesh = MeshTopology(4, 4)
        assert torus.hops(0, 3) == 1  # wrap link vs 3 mesh hops
        assert torus.hops(0, 15) == 2
        assert torus.average_distance() < mesh.average_distance()

    def test_route_takes_shorter_ring_direction(self):
        torus = TorusTopology(4, 4)
        assert torus.route(0, 3) == [0, 3]
        assert torus.route(0, 12) == [0, 12]

    def test_size_two_dimension_has_single_link(self):
        # 2x3: wrap and mesh link coincide along X — counted once.
        torus = TorusTopology(2, 3)
        assert set(torus.neighbours(0)) == {1, 2, 4}
        assert torus.num_links == 3 * 2 * (2 - 1) + 2 * (2 * 3)

    def test_ring_degenerate_1xn(self):
        ring = TorusTopology(1, 5)
        assert ring.hops(0, 4) == 1
        assert ring.num_links == 2 * 5
        assert set(ring.neighbours(0)) == {1, 4}


class TestHierarchical:
    def setup_method(self):
        self.topo = HierarchicalTopology(4, 4, 4)

    def test_socket_major_numbering(self):
        assert self.topo.num_nodes == 64
        assert self.topo.socket_of(0) == 0
        assert self.topo.socket_of(17) == 1
        assert self.topo.gateway(2) == 32

    def test_same_socket_is_mesh_distance(self):
        mesh = MeshTopology(4, 4)
        for s in range(16):
            for d in range(16):
                assert self.topo.hops(16 + s, 16 + d) == mesh.hops(s, d)

    def test_cross_socket_charges_gateway_cost(self):
        # node 5 (socket 0) -> node 16+5 (socket 1): 2 hops to local
        # gateway, 4-hop crossing, 2 hops out to the destination.
        assert self.topo.hops(5, 21) == 2 + 4 + 2

    def test_route_crosses_exactly_one_gateway_pair(self):
        route = self.topo.route(5, 21)
        assert route[0] == 5 and route[-1] == 21
        gateways = [n for n in route if n % 16 == 0]
        assert gateways == [0, 16]

    def test_gateway_neighbours_include_remote_gateways(self):
        assert set(self.topo.neighbours(0)) >= {16, 32, 48}
        # Non-gateway nodes never link off-socket.
        assert all(
            self.topo.socket_of(n) == 1 for n in self.topo.neighbours(21)
        )

    def test_link_accounting(self):
        assert self.topo.num_intra_links == 4 * MeshTopology(4, 4).num_links
        assert self.topo.num_inter_links == 4 * 4 * 3
        assert self.topo.num_links == 240

    def test_validation(self):
        with pytest.raises(ValueError):
            HierarchicalTopology(0, 4, 4)
        with pytest.raises(ValueError):
            HierarchicalTopology(2, 4, 4, inter_socket_hop_cost=0)
        with pytest.raises(ValueError):
            self.topo.gateway(4)
