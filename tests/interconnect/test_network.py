"""Tests for traffic accounting and the latency model."""

import pytest

from repro.interconnect.messages import DEFAULT_SIZING, FlitSizing, MessageKind
from repro.interconnect.network import NetworkModel
from repro.interconnect.topology import MeshTopology


class TestFlitSizing:
    def test_control_is_one_flit(self):
        assert DEFAULT_SIZING.flits(MessageKind.REQUEST) == 1
        assert DEFAULT_SIZING.flits(MessageKind.ACK) == 1
        assert DEFAULT_SIZING.flits(MessageKind.TOKEN_RETURN) == 1

    def test_data_is_five_flits(self):
        # 8 B header + 64 B block over 16 B links.
        assert DEFAULT_SIZING.flits(MessageKind.DATA) == 5
        assert DEFAULT_SIZING.flits(MessageKind.WRITEBACK) == 5

    def test_bytes_of(self):
        assert DEFAULT_SIZING.bytes_of(MessageKind.REQUEST) == 16
        assert DEFAULT_SIZING.bytes_of(MessageKind.DATA) == 80

    def test_custom_link_width(self):
        wide = FlitSizing(link_bytes=32)
        assert wide.flits(MessageKind.DATA) == 3  # ceil(72/32)


class TestNetworkAccounting:
    def setup_method(self):
        self.net = NetworkModel(MeshTopology(4, 4))

    def test_self_send_free(self):
        assert self.net.send(3, 3, MessageKind.REQUEST) == 0
        assert self.net.messages == 0

    def test_unicast_latency_and_traffic(self):
        latency = self.net.send(0, 15, MessageKind.REQUEST)
        assert latency == 6 * (4 + 1)  # 6 hops, 4-cycle router + 1-cycle link
        assert self.net.messages == 1
        assert self.net.flit_hops == 6
        assert self.net.bytes_transferred == 6 * 16

    def test_data_message_traffic(self):
        self.net.send(0, 1, MessageKind.DATA)
        assert self.net.flit_hops == 5
        assert self.net.bytes_transferred == 5 * 16

    def test_multicast_charges_each_destination(self):
        latency = self.net.multicast(0, [1, 15, 0], MessageKind.REQUEST)
        # src itself is skipped; worst destination is 15 (6 hops).
        assert latency == 6 * 5
        assert self.net.messages == 2
        assert self.net.flit_hops == 1 + 6

    def test_empty_multicast_free(self):
        assert self.net.multicast(0, [0], MessageKind.REQUEST) == 0
        assert self.net.messages == 0

    def test_broadcast_traffic_exceeds_domain_multicast(self):
        broadcast = NetworkModel(MeshTopology(4, 4))
        domain = NetworkModel(MeshTopology(4, 4))
        broadcast.multicast(5, range(16), MessageKind.REQUEST)
        domain.multicast(5, [4, 5, 6, 7], MessageKind.REQUEST)
        assert broadcast.flit_hops > 3 * domain.flit_hops

    def test_link_count_4x4(self):
        assert self.net.num_links == 48  # 2*(2*16-4-4)

    def test_reset(self):
        self.net.send(0, 5, MessageKind.DATA)
        self.net.reset()
        assert self.net.messages == 0
        assert self.net.bytes_transferred == 0


class TestMulticastDestinations:
    """Traffic is charged once per *distinct* destination, however the
    destinations are passed (regression for duplicate / generator
    containers double-charging and polluting the plan cache)."""

    def setup_method(self):
        self.net = NetworkModel(MeshTopology(4, 4))

    def _fresh(self):
        return NetworkModel(MeshTopology(4, 4))

    def test_duplicates_charged_once(self):
        deduped = self._fresh()
        duplicated = self._fresh()
        latency_a = deduped.multicast(0, frozenset({1, 15}), MessageKind.REQUEST)
        latency_b = duplicated.multicast(0, [1, 1, 15, 15, 15], MessageKind.REQUEST)
        assert latency_a == latency_b
        assert duplicated.messages == deduped.messages == 2
        assert duplicated.flit_hops == deduped.flit_hops == 1 + 6
        assert duplicated.bytes_transferred == deduped.bytes_transferred

    def test_generator_destinations(self):
        net = self._fresh()
        net.multicast(0, (d for d in (1, 15)), MessageKind.REQUEST)
        assert net.messages == 2
        assert net.flit_hops == 1 + 6

    def test_generator_does_not_grow_cache(self):
        net = self._fresh()
        for _ in range(50):
            net.multicast(0, (d for d in (1, 15)), MessageKind.REQUEST)
        assert len(net._mc_cache) == 1

    def test_frozenset_callers_bit_identical_to_list_callers(self):
        plan = frozenset({1, 2, 3, 15})
        by_frozenset = self._fresh()
        by_list = self._fresh()
        for cycle in range(0, 100, 5):
            lat_a = by_frozenset.multicast(0, plan, MessageKind.REQUEST, cycle)
            lat_b = by_list.multicast(0, sorted(plan), MessageKind.REQUEST, cycle)
            assert lat_a == lat_b
        assert by_frozenset.messages == by_list.messages
        assert by_frozenset.flit_hops == by_list.flit_hops
        assert by_frozenset.bytes_transferred == by_list.bytes_transferred

    def test_cache_bounded(self):
        net = self._fresh()
        net._mc_cache_max = 8
        for dst in range(1, 16):
            for other in range(1, 16):
                net.multicast(0, [dst, other], MessageKind.REQUEST)
        assert len(net._mc_cache) <= 8

    def test_reset_clears_cache(self):
        net = self._fresh()
        net.multicast(0, [1, 15], MessageKind.REQUEST)
        assert net._mc_cache
        net.reset()
        assert not net._mc_cache


class TestWindowDecay:
    """Utilisation must decay across idle windows (regression: the window
    only rolled when a message arrived, so after a quiet gap the model
    reported the last busy window's utilisation and the closing window
    averaged its flit-hops over the whole idle gap)."""

    def _saturate(self, net, start, end):
        for cycle in range(start, end, 2):
            net.multicast(0, range(16), MessageKind.DATA, cycle=cycle)

    def test_single_idle_window_zeroes_utilisation(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=64)
        self._saturate(net, 0, 64)
        # First message of window [128, 192): window [64, 128) was empty,
        # so the busy window's value must not survive the gap.
        net.send(0, 1, MessageKind.REQUEST, cycle=130)
        assert net.utilisation() == 0.0
        assert net.contention_delay() == 0

    def test_long_quiet_gap_decays_to_zero(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=64)
        self._saturate(net, 0, 128)
        net.send(0, 1, MessageKind.REQUEST, cycle=100_000)
        assert net.utilisation() == 0.0

    def test_closing_window_divides_by_window_not_gap(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=64)
        for cycle in range(0, 16, 2):
            net.multicast(0, range(16), MessageKind.DATA, cycle=cycle)
        # 8 multicasts x 240 flit-hops land in window [0, 64); the first
        # roll happens 36 cycles into the next window. The busy window is
        # judged over its own 64 cycles (1920 / (64*48)), not the 100
        # cycles elapsed since its start (which diluted it to 0.4).
        net._advance_window(100)
        assert net.utilisation() == pytest.approx(1920 / (64 * 48))

    def test_continuous_traffic_keeps_utilisation(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=64)
        self._saturate(net, 0, 2048)
        assert net.utilisation() > 0.5


class TestResetEpoch:
    """reset(cycle) must restart the utilisation window at the given
    cycle (regression: rewinding _window_start to 0 made the next window
    span the entire prior run and dilute utilisation to ~0)."""

    def test_reset_sets_window_epoch(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=64)
        net.send(0, 5, MessageKind.DATA, cycle=10)
        net.reset(cycle=1_000_003)
        assert net._window_start == 1_000_003
        assert net.messages == 0
        assert net.utilisation() == 0.0

    def test_reset_default_epoch_is_zero(self):
        net = NetworkModel(MeshTopology(4, 4))
        net.send(0, 5, MessageKind.DATA, cycle=10)
        net.reset()
        assert net._window_start == 0

    def test_post_reset_window_not_diluted(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=64)
        base = 1_000_003
        net.reset(cycle=base)
        for cycle in range(base, base + 64, 2):
            net.multicast(0, range(16), MessageKind.DATA, cycle=cycle)
        net.send(0, 1, MessageKind.REQUEST, cycle=base + 70)
        assert net.utilisation() > 0.3


class TestContention:
    def test_idle_network_no_delay(self):
        net = NetworkModel(MeshTopology(4, 4))
        assert net.contention_delay() == 0

    def test_heavy_load_raises_delay(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=64)
        for cycle in range(0, 2000, 2):
            net.multicast(0, range(16), MessageKind.DATA, cycle=cycle)
        assert net.utilisation() > 0.1
        assert net.contention_delay() > 0

    def test_utilisation_capped(self):
        net = NetworkModel(MeshTopology(4, 4), window_cycles=16)
        for cycle in range(1000):
            net.multicast(0, range(16), MessageKind.DATA, cycle=cycle)
        assert net.utilisation() <= 0.95
