"""Tests for ASCII table/bar rendering."""

import pytest

from repro.analysis.tables import render_bars, render_table


class TestRenderTable:
    def test_basic(self):
        out = render_table(["a", "bb"], [(1, 2), (30, 4)], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_alignment(self):
        out = render_table(["name", "v"], [("x", 1), ("longer", 22)])
        lines = out.splitlines()
        assert len({len(l) for l in lines}) == 1  # all lines equal width

    def test_float_formatting(self):
        out = render_table(["v"], [(1.23456,)])
        assert "1.23" in out

    def test_mismatched_row_rejected(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [(1,)])


class TestRenderBars:
    def test_bar_length_proportional(self):
        out = render_bars(["x", "y"], [50.0, 100.0], max_value=100.0, width=10)
        x_line, y_line = out.splitlines()
        assert x_line.count("#") == 5
        assert y_line.count("#") == 10

    def test_clamps_overflow(self):
        out = render_bars(["x"], [500.0], max_value=100.0, width=10)
        assert out.count("#") == 10

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            render_bars(["a"], [1.0, 2.0])

    def test_zero_max_no_crash(self):
        assert "#" not in render_bars(["a"], [1.0], max_value=0.0)
