"""Tests for the Figure 2 closed-form model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.potential import figure2_series, potential_snoop_reduction


class TestPaperPoints:
    """Figure 2's quoted numbers must come out exactly."""

    def test_ideal_16_vms(self):
        assert potential_snoop_reduction(16, 4, 0.0) == pytest.approx(0.9375)

    def test_5_percent_hypervisor(self):
        assert potential_snoop_reduction(16, 4, 0.05) == pytest.approx(0.890625)

    def test_10_percent_hypervisor(self):
        assert potential_snoop_reduction(16, 4, 0.10) == pytest.approx(0.84375)

    def test_4_vms_ideal_is_75(self):
        assert potential_snoop_reduction(4, 4, 0.0) == pytest.approx(0.75)

    def test_single_vm_no_reduction(self):
        assert potential_snoop_reduction(1, 4, 0.0) == 0.0


class TestValidation:
    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            potential_snoop_reduction(4, 4, 1.5)

    def test_rejects_zero_vms(self):
        with pytest.raises(ValueError):
            potential_snoop_reduction(0, 4, 0.0)


class TestSeries:
    def test_shape(self):
        series = figure2_series()
        assert set(series) == {0.0, 0.05, 0.10, 0.20, 0.30, 0.40}
        assert all(len(v) == 4 for v in series.values())

    def test_monotone_in_vms(self):
        series = figure2_series()
        for values in series.values():
            assert values == sorted(values)

    def test_monotone_in_hypervisor_ratio(self):
        series = figure2_series()
        ratios = sorted(series)
        for i in range(4):
            column = [series[r][i] for r in ratios]
            assert column == sorted(column, reverse=True)


@given(
    vms=st.integers(1, 64),
    vcpus=st.integers(1, 16),
    ratio=st.floats(0, 1),
)
def test_property_reduction_bounded(vms, vcpus, ratio):
    reduction = potential_snoop_reduction(vms, vcpus, ratio)
    assert 0.0 <= reduction < 1.0
