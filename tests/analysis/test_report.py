"""Tests for paper constants and the Markdown report generator."""

import pytest

from repro.analysis import paper
from repro.analysis.report import (
    fig1_report,
    markdown_table,
    table1_report,
    table4_report,
    table5_report,
    table6_report,
)
from repro.workloads import get_profile


class TestPaperConstants:
    def test_profiles_encode_table5(self):
        """The workload calibration must match the transcribed Table V."""
        for app, (access_pct, miss_pct) in paper.TABLE5_CONTENT_SHARES_PCT.items():
            profile = get_profile(app)
            assert profile.content_access_fraction * 100 == pytest.approx(
                access_pct, abs=0.01
            ), app
            assert profile.content_miss_share * 100 == pytest.approx(
                miss_pct, abs=0.01
            ), app

    def test_table4_average(self):
        values = paper.TABLE4_TRAFFIC_REDUCTION_PCT.values()
        assert sum(values) / len(paper.TABLE4_TRAFFIC_REDUCTION_PCT) == pytest.approx(
            paper.TABLE4_AVERAGE_PCT, abs=0.05
        )

    def test_table1_has_all_parsec_apps(self):
        from repro.workloads import PARSEC_APPS

        assert set(paper.TABLE1_RELOCATION_MS) == set(PARSEC_APPS)

    def test_table6_holders_consistent(self):
        # The paper's own canneal row sums to 101.0 (rounding); allow it.
        for app, holders in paper.TABLE6_HOLDERS_PCT.items():
            assert holders["cache_all"] + holders["memory"] == pytest.approx(
                100.0, abs=1.1
            ), app


class TestMarkdownTable:
    def test_renders_pipes(self):
        out = markdown_table(["a", "b"], [(1, 2)])
        assert out.splitlines()[0] == "| a | b |"
        assert out.splitlines()[1] == "|---|---|"
        assert out.splitlines()[2] == "| 1 | 2 |"

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            markdown_table(["a"], [(1, 2)])


class TestReports:
    def test_fig1_report(self):
        out = fig1_report({"dedup": {"guest": 90.0, "dom0": 7.0, "xen": 3.0}})
        assert "dedup" in out and "11" in out and "10.0" in out

    def test_table1_report(self):
        out = table1_report(
            {"dedup": {"under": {"relocation_period_ms": 5.0},
                       "over": {"relocation_period_ms": 1.0}}}
        )
        assert "10.8 / 0.1" in out and "5.0 / 1.0" in out

    def test_table4_report(self):
        out = table4_report({"fft": {"traffic_reduction_pct": 64.5}})
        assert "63.20" in out and "64.50" in out

    def test_table5_report(self):
        out = table5_report({"fft": {"l1_access_pct": 5.4, "l2_miss_pct": 31.0}})
        assert "5.43 / 30.64" in out

    def test_table6_report_skips_unlisted_apps(self):
        out = table6_report({"ocean": {
            "holder_cache_pct": 1, "holder_memory_pct": 99,
            "holder_intra_pct": 0, "holder_friend_pct": 0,
        }})
        assert "ocean" not in out
