"""``repro-sim report`` reproduces the Figure 7/8 shape from a trace.

The paper's migration figures show snoops-per-transaction spiking at a
vCPU relocation (the grown map broadcasts wider) and decaying back as
residence counters drain the old cores out of the map. Here that shape
is observed *directly from the event stream* of one traced run.
"""

import pytest

from repro.cli import main
from repro.core.filter import SnoopPolicy
from repro.obs import migration_phase_profile, read_trace
from repro.obs.report import render_report
from repro.sim import SimConfig, SimTask
from repro.sim.runner import run_simulation_task

WINDOW = 10_000


@pytest.fixture(scope="module")
def traced_migration_run(tmp_path_factory):
    """One counter run with a 1 'ms' migration period, traced to binary."""
    path = str(tmp_path_factory.mktemp("trace") / "fig78.evt")
    config = SimConfig.migration_study(
        snoop_policy=SnoopPolicy.VSNOOP_COUNTER,
        migration_period_ms=1.0,
        accesses_per_vcpu=40_000,
        warmup_accesses_per_vcpu=2_000,
        trace=path,
    )
    stats = run_simulation_task(SimTask(config, "ocean"))
    return stats, path


def test_phase_profile_shows_spike_and_decay(traced_migration_run):
    stats, path = traced_migration_run
    assert stats.migrations >= 3, "need several relocations to average over"
    profile = migration_phase_profile(
        list(read_trace(path)), window=WINDOW, before=2, after=8
    )
    rate = {b.offset: b.snoops_per_transaction for b in profile}
    assert all(b.samples == stats.migrations for b in profile)

    # Spike: the migration window snoops markedly wider than steady state.
    pre = (rate[-2] + rate[-1]) / 2
    assert rate[0] > pre * 1.05
    # Decay: by the end of the horizon the rate has come most of the way
    # back down from the spike toward the pre-migration level.
    assert rate[7] < pre + 0.3 * (rate[0] - pre)
    # And the tail is below the immediate post-migration windows.
    assert rate[7] < rate[1]


def test_render_report_contains_both_tables(traced_migration_run):
    _, path = traced_migration_run
    text = render_report(path, window=WINDOW)
    assert "Windowed timeline" in text
    assert "Migration phase profile" in text
    assert "counter" in text  # policy from the header
    assert "ocean" in text


def test_report_without_migrations_says_so(tmp_path):
    path = str(tmp_path / "still.evt")
    config = SimConfig(
        accesses_per_vcpu=800, warmup_accesses_per_vcpu=200, trace=path
    )
    run_simulation_task(SimTask(config, "fft"))
    text = render_report(path, window=WINDOW)
    assert "no migrations" in text
    assert "Windowed timeline" in text


class TestReportCli:
    def test_report_subcommand(self, traced_migration_run, capsys):
        _, path = traced_migration_run
        assert main(["report", path, "--window", str(WINDOW)]) == 0
        out = capsys.readouterr().out
        assert "Migration phase profile" in out

    def test_report_missing_file_fails_cleanly(self, tmp_path, capsys):
        code = main(["report", str(tmp_path / "nope.evt")])
        assert code == 1
        assert "nope.evt" in capsys.readouterr().err

    def test_report_truncated_trace_fails_cleanly(
        self, traced_migration_run, tmp_path, capsys
    ):
        _, path = traced_migration_run
        clipped = tmp_path / "clipped.evt"
        # Drop the entire END record (1 tag + 16 payload bytes): a clean
        # record-boundary truncation, the "run died mid-way" case.
        clipped.write_bytes(open(path, "rb").read()[:-17])
        assert main(["report", str(clipped)]) == 1
        err = capsys.readouterr().err
        assert "clipped.evt" in err
        # --partial inspects the same file without the end marker.
        assert main(["report", str(clipped), "--partial"]) == 0

    def test_report_validates_window(self, traced_migration_run):
        _, path = traced_migration_run
        with pytest.raises(SystemExit):
            main(["report", path, "--window", "0"])
